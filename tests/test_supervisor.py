"""Process-level supervision: real PIDs, real signals, real respawns.

Every test spawns genuine subprocesses (tiny ``python -c`` bodies), so
what is asserted — exits reaped, non-clean slots respawned with
backoff, budgets enforced, fleets stoppable — is the behaviour
``repro grid fleet`` exhibits against real worker processes.
"""

import signal
import sys
import time

import pytest

from repro.grid.runtime.supervisor import (
    FleetReport,
    RespawnPolicy,
    SlotStatus,
    WorkerSupervisor,
)

PY = sys.executable


def py(body):
    return [PY, "-c", body]


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


FAST_POLICY = RespawnPolicy(backoff_base=0.01, backoff_cap=0.05)


def test_clean_exit_is_not_respawned():
    sup = WorkerSupervisor(
        lambda slot, inc: py("pass"), workers=2, policy=FAST_POLICY,
        poll_interval=0.01, quiet=True,
    )
    report = sup.run(deadline=10.0)
    assert report.all_clean
    assert report.respawns == 0
    assert [s.exit_codes for s in report.slots] == [[0], [0]]


def test_crashing_slot_respawns_until_budget():
    policy = RespawnPolicy(
        backoff_base=0.01, backoff_cap=0.05, max_respawns=2
    )
    sup = WorkerSupervisor(
        lambda slot, inc: py("raise SystemExit(7)"), workers=1,
        policy=policy, poll_interval=0.01, quiet=True,
    )
    report = sup.run(deadline=10.0)
    status = report.slots[0]
    assert status.outcome == "budget"
    assert status.incarnations == 3  # initial + 2 respawns
    assert status.exit_codes == [7, 7, 7]
    assert not report.all_clean


def test_command_factory_sees_incarnation_numbers():
    seen = []

    def command_for(slot, incarnation):
        seen.append((slot, incarnation))
        # First incarnation crashes, the respawn exits clean.
        return py("pass" if incarnation else "raise SystemExit(1)")

    sup = WorkerSupervisor(
        command_for, workers=1, policy=FAST_POLICY,
        poll_interval=0.01, quiet=True,
    )
    report = sup.run(deadline=10.0)
    assert report.all_clean
    assert report.respawns == 1
    assert seen == [(0, 0), (0, 1)]


def test_kill_delivers_a_real_signal_and_slot_respawns():
    def command_for(slot, incarnation):
        if incarnation == 0:
            return py("import time; time.sleep(60)")
        return py("pass")

    sup = WorkerSupervisor(
        command_for, workers=1, policy=FAST_POLICY,
        poll_interval=0.01, quiet=True,
    )
    sup.start()
    try:
        pid = sup.kill(0, signal.SIGKILL)
        assert pid is not None
        assert wait_until(
            lambda: (sup.poll() or sup.slots[0].done)
        )
    finally:
        sup.stop()
    status = sup.slots[0]
    assert status.outcome == "clean"
    assert status.exit_codes[0] == -signal.SIGKILL
    assert status.respawns == 1


def test_stop_terminates_live_children():
    sup = WorkerSupervisor(
        lambda slot, inc: py("import time; time.sleep(60)"),
        workers=2, policy=FAST_POLICY, poll_interval=0.01, quiet=True,
    )
    sup.start()
    pids = sup.pids()
    assert all(pid is not None for pid in pids.values())
    sup.stop()
    assert all(s.outcome == "stopped" for s in sup.slots)
    assert all(s.pid is None for s in sup.slots)


def test_deadline_times_out_and_stops_the_fleet():
    sup = WorkerSupervisor(
        lambda slot, inc: py("import time; time.sleep(60)"),
        workers=1, policy=FAST_POLICY, poll_interval=0.01, quiet=True,
    )
    report = sup.run(deadline=0.3)
    assert report.timed_out
    assert report.slots[0].outcome == "stopped"


def test_kill_on_a_finished_slot_returns_none():
    sup = WorkerSupervisor(
        lambda slot, inc: py("pass"), workers=1, policy=FAST_POLICY,
        poll_interval=0.01, quiet=True,
    )
    sup.run(deadline=10.0)
    assert sup.kill(0) is None


def test_respawn_backoff_is_scheduled_not_immediate():
    sup = WorkerSupervisor(
        lambda slot, inc: py("raise SystemExit(1)"), workers=1,
        policy=RespawnPolicy(backoff_base=30.0, backoff_cap=60.0),
        poll_interval=0.01, quiet=True,
    )
    sup.start()
    try:
        assert wait_until(lambda: sup._procs[0].poll() is not None)
        t0 = time.monotonic()
        sup.poll(now=t0)  # reaps the exit, schedules the respawn
        sup.poll(now=t0 + 1.0)  # well inside the 30s backoff window
        assert sup.slots[0].respawns == 0
        assert sup.pids()[0] is None
        sup.poll(now=t0 + 120.0)  # past any decorrelated-jitter draw
        assert sup.slots[0].respawns == 1
        assert sup.pids()[0] is not None
    finally:
        sup.stop()


def test_policy_validation():
    with pytest.raises(ValueError):
        RespawnPolicy(backoff_base=0.0)
    with pytest.raises(ValueError):
        RespawnPolicy(backoff_base=2.0, backoff_cap=1.0)
    with pytest.raises(ValueError):
        RespawnPolicy(max_respawns=-1)
    with pytest.raises(ValueError):
        WorkerSupervisor(lambda s, i: py("pass"), workers=0)


def test_fleet_report_properties():
    report = FleetReport(
        slots=[
            SlotStatus(0, respawns=2, done=True, outcome="clean"),
            SlotStatus(1, respawns=1, done=True, outcome="budget"),
        ],
        wall_seconds=1.0,
    )
    assert report.respawns == 3
    assert not report.all_clean

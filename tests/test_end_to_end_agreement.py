"""Capstone: every execution path proves the same optimum.

One instance, five resolutions — sequential, checkpoint-resumed,
real multiprocessing farmer–worker, simulated grid (real B&B under
churn), and peer-to-peer — all built on the same interval coding.
Any divergence anywhere in the stack fails here.
"""

import pytest

from repro.core import solve
from repro.core.resumable import ResumableSolver
from repro.grid.p2p import P2PConfig, P2PSimulation
from repro.grid.runtime import RuntimeConfig, flowshop_spec, solve_parallel
from repro.grid.simulator import (
    AvailabilityModel,
    FarmerConfig,
    GridSimulation,
    RealBBWorkload,
    SimulationConfig,
    WorkerConfig,
    small_platform,
)
from repro.problems.flowshop import FlowShopProblem, makespan, random_instance


@pytest.fixture(scope="module")
def instance():
    return random_instance(8, 4, seed=2026)


@pytest.fixture(scope="module")
def expected(instance):
    return solve(FlowShopProblem(instance)).cost


def test_all_execution_paths_agree(instance, expected, tmp_path_factory):
    problem = FlowShopProblem(instance)
    results = {}

    # 1. sequential (already the reference, re-derive via fresh solve)
    results["sequential"] = solve(problem).cost

    # 2. checkpoint/resume: interrupt twice, finish on the third life
    ckpt = tmp_path_factory.mktemp("ckpt")
    solver = ResumableSolver(problem, ckpt, checkpoint_nodes=300)
    solver.step()
    solver = ResumableSolver(problem, ckpt, checkpoint_nodes=300)
    solver.step()
    results["resumable"] = ResumableSolver(
        problem, ckpt, checkpoint_nodes=300
    ).run().cost

    # 3. real multiprocessing farmer-worker, with a crash
    parallel = solve_parallel(
        flowshop_spec(instance),
        RuntimeConfig(workers=3, update_nodes=300, deadline=120,
                      crash_workers={1: 2}),
    )
    assert parallel.optimal
    results["multiprocessing"] = parallel.cost

    # 4. simulated grid under churn
    sim = GridSimulation(SimulationConfig(
        platform=small_platform(workers=5, dedicated=False),
        workload=RealBBWorkload(problem, nodes_per_second=5.0),
        horizon=400 * 86400.0,
        seed=4,
        availability=AvailabilityModel(
            mean_up=600.0, mean_down=300.0, diurnal_amplitude=0.0
        ),
        farmer=FarmerConfig(duplication_threshold=300),
        worker=WorkerConfig(update_period=10.0),
    )).run()
    assert sim.finished
    results["simulated-grid"] = sim.best_cost

    # 5. peer-to-peer with Safra termination
    p2p = P2PSimulation(P2PConfig(
        platform=small_platform(workers=4),
        workload=RealBBWorkload(problem, nodes_per_second=50.0),
        horizon=60 * 86400.0,
        seed=5,
        update_period=2.0,
        steal_backoff=1.0,
    )).run()
    assert p2p.finished
    results["peer-to-peer"] = p2p.best_cost

    assert all(cost == expected for cost in results.values()), results


def test_solutions_are_valid_schedules(instance, expected):
    # the concrete schedules, not just the costs, must check out
    problem = FlowShopProblem(instance)
    result = solve(problem)
    assert makespan(instance, result.solution) == expected
    parallel = solve_parallel(
        flowshop_spec(instance), RuntimeConfig(workers=2, deadline=120)
    )
    assert makespan(instance, parallel.solution) == expected

"""Property-based tests of the runtime Coordinator under random traffic.

Hypothesis drives the coordinator with arbitrary interleavings of
requests, updates, pushes and worker deaths; the §4 invariants must
hold at every step: no work lost, sizes monotone modulo recovery
carving, SOLUTION monotone, termination exactly at size zero.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Interval
from repro.grid.runtime import Coordinator
from repro.grid.runtime.protocol import (
    GrantWork,
    Push,
    Reconciled,
    Request,
    Terminate,
    Update,
)

TOTAL = 10_000
WORKERS = [f"w{i}" for i in range(4)]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("request"), st.integers(0, 3)),
        st.tuples(
            st.just("advance"), st.integers(0, 3), st.floats(0.0, 1.0)
        ),
        st.tuples(st.just("push"), st.integers(0, 3), st.integers(1, 100)),
        st.tuples(st.just("die"), st.integers(0, 3)),
    ),
    max_size=50,
)


class _WorkerSim:
    """Tiny model of a worker: holds its view of its interval."""

    def __init__(self):
        self.view = None  # Interval or None


@given(operations)
@settings(max_examples=80, deadline=None)
def test_no_lost_work_and_monotone_solution(ops):
    coord = Coordinator(Interval(0, TOTAL), duplication_threshold=100)
    workers = {w: _WorkerSim() for w in WORKERS}
    best_seen = float("inf")

    for op in ops:
        name = op[0]
        worker = WORKERS[op[1]]
        sim = workers[worker]
        if name == "request":
            if sim.view is None:
                reply = coord.handle(Request(worker))
                if isinstance(reply, GrantWork):
                    sim.view = Interval.from_tuple(reply.interval)
                else:
                    assert isinstance(reply, Terminate)
                    assert coord.intervals.is_empty()
        elif name == "advance":
            if sim.view is not None and not sim.view.is_empty():
                step = int(sim.view.length * op[2])
                reported = Interval(sim.view.begin + step, sim.view.end)
                reply = coord.handle(
                    Update(worker, reported.as_tuple(), nodes=1, consumed=step)
                )
                assert isinstance(reply, (Reconciled, Terminate))
                if isinstance(reply, Reconciled):
                    merged = Interval.from_tuple(reply.interval)
                    sim.view = None if merged.is_empty() else merged
                else:
                    sim.view = None
        elif name == "push":
            cost = float(op[2])
            coord.handle(Push(worker, cost, (0,)))
            best_seen = min(best_seen, cost)
        elif name == "die":
            coord.release_worker(worker)
            sim.view = None

        # INVARIANTS after every operation
        # 1. SOLUTION is the min of everything pushed
        assert coord.solution.cost == best_seen or (
            coord.solution.cost == float("inf") and best_seen == float("inf")
        )
        # 2. the coordinator's intervals never extend beyond the root
        for iv in coord.intervals.intervals():
            assert 0 <= iv.begin < iv.end <= TOTAL
        # 3. union of coordinator intervals covers every number no
        #    worker has consumed AND no live view covers (conservative
        #    direction: coordinator may cover MORE, never less)
        # approximated by: termination only when truly empty
        if coord.terminated:
            assert coord.intervals.is_empty()


@given(st.integers(1, 5), st.integers(0, 300))
@settings(max_examples=40, deadline=None)
def test_round_robin_always_terminates(workers, threshold):
    coord = Coordinator(Interval(0, 2000), duplication_threshold=threshold)
    guard = 0
    done = False
    while not done:
        guard += 1
        assert guard < 500
        done = True
        for k in range(workers):
            reply = coord.handle(Request(f"w{k}"))
            if isinstance(reply, Terminate):
                continue
            done = False
            iv = Interval.from_tuple(reply.interval)
            coord.handle(
                Update(f"w{k}", (iv.end, iv.end), nodes=1, consumed=iv.length)
            )
    assert coord.intervals.is_empty()

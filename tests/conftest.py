"""Shared test configuration.

Registers the ``timeout`` marker and, when the ``pytest-timeout``
plugin is not installed (it is a dev extra, not a hard dependency),
emulates it with ``SIGALRM`` so a wedged recovery path in the chaos
suite fails fast instead of hanging the whole run.
"""

import signal

import pytest

try:
    import pytest_timeout  # noqa: F401

    _HAVE_TIMEOUT_PLUGIN = True
except ImportError:
    _HAVE_TIMEOUT_PLUGIN = False


def pytest_configure(config):
    if not _HAVE_TIMEOUT_PLUGIN:
        config.addinivalue_line(
            "markers",
            "timeout(seconds): fail the test if it runs longer than this "
            "(SIGALRM fallback; install pytest-timeout for the real thing)",
        )


if not _HAVE_TIMEOUT_PLUGIN and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        marker = item.get_closest_marker("timeout")
        if marker is None or not marker.args:
            yield
            return
        seconds = float(marker.args[0])

        def _on_alarm(signum, frame):
            raise TimeoutError(
                f"{item.nodeid} exceeded the {seconds}s timeout"
            )

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)

"""The multi-tenant solve service: store, scheduler, wire and e2e.

The tentpole claim of PR 9 is that N concurrent solves multiplexed
over one shared worker fleet are *exactly* the paper's farmer–worker
algorithm run N times: each job keeps its own INTERVALS/SOLUTION
ledger, workers stay dumb interval-explorers, and every job's proved
optimum is serial-identical under any scheduling policy.  These tests
pin that claim end to end on a loopback fleet, plus the unit surfaces
(admission control, fair share, the per-job durable store) and the
service wire messages.
"""

from __future__ import annotations

import math
import threading

import pytest

from repro.core import solve
from repro.core.checkpoint import MultiJobStore
from repro.exceptions import CheckpointError
from repro.grid.net.framing import decode_message, encode_frame
from repro.grid.net.serve import run_worker
from repro.grid.net.transport import TransportError
from repro.grid.runtime import flowshop_spec
from repro.grid.runtime.protocol import (
    CancelJob,
    Idle,
    JobAccepted,
    JobGrant,
    JobList,
    JobPush,
    JobRefused,
    JobStatus,
    JobStatusRequest,
    JobUpdate,
    ListJobs,
    SubmitJob,
    spec_to_wire,
)
from repro.grid.service import (
    CANCELLED,
    DONE,
    QUEUED,
    RUNNING,
    JobRecord,
    JobStore,
    Scheduler,
    SchedulerConfig,
)
from repro.grid.service.client import JobRefusedError, SyncServiceClient
from repro.grid.service.server import ServiceConfig, SolveService
from repro.problems.flowshop import FlowShopProblem, makespan, random_instance

instance_a = random_instance(7, 3, seed=71)
instance_b = random_instance(6, 4, seed=72)
serial_a = solve(FlowShopProblem(instance_a))
serial_b = solve(FlowShopProblem(instance_b))


# ----------------------------------------------------------------------
# MultiJobStore (the durable layout underneath the job store)


def test_multi_job_store_isolates_jobs_and_survives_reopen(tmp_path):
    store = MultiJobStore(tmp_path)
    store.save_meta("job-a", {"status": "queued", "owner": "alice"})
    store.save_meta("job-b", {"status": "running", "owner": "bob"})
    assert store.job_ids() == ["job-a", "job-b"]

    reopened = MultiJobStore(tmp_path)
    assert reopened.load_meta("job-a")["owner"] == "alice"
    assert reopened.load_meta("job-b")["status"] == "running"
    # Per-job checkpoint stores live in disjoint directories.
    assert (
        reopened.job_store("job-a").directory
        != reopened.job_store("job-b").directory
    )


def test_multi_job_store_rejects_path_like_ids(tmp_path):
    store = MultiJobStore(tmp_path)
    for bad in ("../escape", "a/b", "", ".hidden", "semi;colon"):
        with pytest.raises(CheckpointError):
            store.save_meta(bad, {})


def test_multi_job_store_epoch_bumps_across_reopen(tmp_path):
    store = MultiJobStore(tmp_path)
    assert store.bump_epoch() == 1
    assert MultiJobStore(tmp_path).bump_epoch() == 2
    assert MultiJobStore(tmp_path).read_epoch() == 2


# ----------------------------------------------------------------------
# JobStore


def test_job_store_assigns_opaque_ids_and_admission_order(tmp_path):
    jobs = JobStore(tmp_path)
    first = jobs.create({"kind": "x"}, owner="alice", priority=1)
    second = jobs.create({"kind": "y"}, owner="bob", priority=3)
    assert first.job_id != second.job_id
    assert first.order < second.order
    assert first.status == QUEUED
    assert jobs.in_status(QUEUED) == [first, second]


def test_job_store_recovers_records_and_order_counter(tmp_path):
    jobs = JobStore(tmp_path)
    record = jobs.create({"kind": "x"}, owner="alice", priority=2)
    record.status = DONE
    record.cost = 123
    record.solution = (1, 0)
    jobs.persist(record)

    recovered = JobStore(tmp_path)
    recovered.recover()
    back = recovered.get(record.job_id)
    assert back.status == DONE
    assert back.cost == 123
    assert tuple(back.solution) == (1, 0)
    assert back.owner == "alice" and back.priority == 2
    # New admissions keep strictly increasing order after recovery.
    assert recovered.create({}, owner="c", priority=1).order > back.order


def test_job_store_is_memory_only_without_a_directory():
    jobs = JobStore(None)
    record = jobs.create({}, owner="alice", priority=1)
    jobs.persist(record)  # must be a no-op, not an error
    assert jobs.get(record.job_id) is record


# ----------------------------------------------------------------------
# Scheduler


def record_with(order, owner="alice", priority=1, status=QUEUED):
    return JobRecord(
        job_id=f"id-{order}",
        spec_wire={},
        owner=owner,
        priority=priority,
        order=order,
        status=status,
    )


def test_admission_control_refuses_depth_and_bad_priority():
    scheduler = Scheduler(SchedulerConfig(max_queued_jobs=2))
    queued = [record_with(1), record_with(2)]
    assert scheduler.admission_error(queued, priority=1) is not None
    assert scheduler.admission_error(queued[:1], priority=1) is None
    assert scheduler.admission_error([], priority=0) is not None


def test_promotion_is_oldest_first_with_a_per_owner_cap():
    scheduler = Scheduler(
        SchedulerConfig(max_running_jobs=3, max_running_per_owner=1)
    )
    running = [record_with(1, owner="alice", status=RUNNING)]
    queued = [
        record_with(2, owner="alice"),
        record_with(3, owner="bob"),
    ]
    # alice already runs a job, so her older submission is skipped.
    promoted = scheduler.next_promotion(queued, running)
    assert promoted.owner == "bob"
    # With the cap lifted, strict admission order wins.
    relaxed = Scheduler(
        SchedulerConfig(max_running_jobs=3, max_running_per_owner=2)
    )
    assert relaxed.next_promotion(queued, running).order == 2


def test_promotion_respects_the_running_set_budget():
    scheduler = Scheduler(SchedulerConfig(max_running_jobs=1))
    running = [record_with(1, status=RUNNING)]
    assert scheduler.next_promotion([record_with(2)], running) is None


def test_fifo_grants_by_admission_order_fair_by_weighted_share():
    fifo = Scheduler(SchedulerConfig(policy="fifo"))
    fair = Scheduler(SchedulerConfig(policy="fair"))
    older = record_with(1, priority=1)
    newer = record_with(2, priority=1)
    # FIFO ignores how many workers each job already holds.
    assert fifo.pick_grant([(older, 5), (newer, 0)]) is older
    # Fair share steers the next worker to the starved job.
    assert fair.pick_grant([(older, 5), (newer, 0)]) is newer
    # Priority weights the share: priority 3 deserves 3x the workers.
    urgent = record_with(3, priority=3)
    assert fair.pick_grant([(older, 1), (urgent, 2)]) is urgent
    # Ties fall back to admission order, never to the job id.
    assert fair.pick_grant([(newer, 1), (older, 1)]) is older


# ----------------------------------------------------------------------
# Wire round-trips for the service messages


@pytest.mark.parametrize(
    "message",
    [
        SubmitJob("client-1", {"kind": "k"}, priority=2, owner="alice"),
        JobAccepted("job-1"),
        JobRefused("queue full"),
        JobGrant("job-1", (3, 17), 99, spec={"kind": "k"}),
        JobUpdate("w1", "job-1", (3, 9), 120, 6),
        JobPush("w1", "job-1", 41, (1, 0, 2)),
        Idle(retry_after=0.75),
        JobStatusRequest("client-1", "job-1"),
        JobStatus("job-1", "done", best_cost=41, solution=(1, 0, 2)),
        CancelJob("client-1", "job-1"),
        ListJobs("client-1", owner="alice"),
        JobList(jobs=[{"job": "job-1", "status": "done"}]),
    ],
)
def test_service_messages_round_trip_the_frame_codec(message):
    message.seq = 7
    decoded = decode_message(encode_frame(message)[4:])
    assert type(decoded) is type(message)
    assert decoded == message


def test_job_grant_intervals_survive_as_exact_int_tuples():
    big = math.factorial(50)
    grant = JobGrant("job-1", (big, big + 17), 10, spec={})
    decoded = decode_message(encode_frame(grant)[4:])
    assert decoded.interval == (big, big + 17)
    assert all(type(v) is int for v in decoded.interval)


# ----------------------------------------------------------------------
# End-to-end: concurrent jobs over one shared fleet


def service_config(tmp_path=None, **overrides):
    scheduler = overrides.pop("scheduler", SchedulerConfig())
    base = dict(
        port=0,
        checkpoint_dir=tmp_path,
        checkpoint_period=0.1,
        deadline=120.0,
        poll_interval=0.02,
        lease_seconds=10.0,
        linger_seconds=2.0,
        idle_retry_after=0.05,
        scheduler=scheduler,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def start_service(service):
    outcome = {}

    def serve():
        outcome["report"] = service.serve_forever()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread, outcome


def start_workers(host, port, count, prefix="w"):
    outcomes = {}

    def work(wid):
        try:
            outcomes[wid] = run_worker(
                host,
                port,
                wid,
                update_nodes=300,
                update_period=0.05,
                reply_timeout=2.0,
                max_retries=3,
                heartbeat_interval=0.5,
                max_reconnect_attempts=3,
                backoff_cap=0.2,
            )
        except TransportError:
            # The service may legitimately be gone already (drained, or
            # shut down by the test); a late worker is not a failure.
            outcomes[wid] = "unreachable"

    threads = [
        threading.Thread(target=work, args=(f"{prefix}{i}",), daemon=True)
        for i in range(count)
    ]
    for thread in threads:
        thread.start()
    return threads, outcomes


@pytest.mark.parametrize("policy", ["fifo", "fair"])
def test_two_jobs_share_a_fleet_and_stay_serial_identical(policy):
    service = SolveService(
        service_config(scheduler=SchedulerConfig(policy=policy))
    )
    host, port = service.address
    thread, outcome = start_service(service)
    try:
        client = SyncServiceClient(host, port, timeout=30.0)
        job_a = client.submit(
            flowshop_spec(instance_a), owner="alice", priority=1
        )
        job_b = client.submit(
            flowshop_spec(instance_b), owner="bob", priority=2
        )
        workers, _ = start_workers(host, port, 4)

        status_a = client.result(job_a, timeout=90.0)
        status_b = client.result(job_b, timeout=90.0)
        assert status_a.status == DONE
        assert status_b.status == DONE
        # Serial-identical optimum: same proved cost, and the returned
        # schedule actually achieves it (equal-cost optima may be
        # distinct permutations — exploration order differs).
        assert status_a.best_cost == serial_a.cost
        assert status_b.best_cost == serial_b.cost
        assert makespan(instance_a, tuple(status_a.solution)) == serial_a.cost
        assert makespan(instance_b, tuple(status_b.solution)) == serial_b.cost

        summaries = {s["job"]: s for s in client.list_jobs()}
        assert summaries[job_a]["cost"] == serial_a.cost
        assert summaries[job_b]["owner"] == "bob"
    finally:
        service.shutdown()
        thread.join(timeout=30)
    for worker in workers:
        worker.join(timeout=30)
    report = outcome["report"]
    assert report.jobs_completed == 2
    assert report.jobs[job_a]["cost"] == serial_a.cost
    assert report.jobs[job_b]["cost"] == serial_b.cost


def test_cancel_and_unknown_job_status():
    # No workers connected: the queued job is cancellable, and an
    # unknown id reports as such instead of failing the RPC.
    service = SolveService(service_config())
    host, port = service.address
    thread, outcome = start_service(service)
    try:
        client = SyncServiceClient(host, port, timeout=10.0)
        job = client.submit(flowshop_spec(instance_a), owner="alice")
        cancelled = client.cancel(job)
        assert cancelled.status == CANCELLED
        assert client.status(job).status == CANCELLED
        assert client.status("no-such-job").status == "unknown"
    finally:
        service.shutdown()
        thread.join(timeout=30)
    assert outcome["report"].jobs_cancelled == 1


def test_admission_control_refuses_over_the_wire():
    import time

    config = service_config(
        scheduler=SchedulerConfig(
            max_queued_jobs=1, max_running_jobs=1, max_running_per_owner=1
        )
    )
    service = SolveService(config)
    host, port = service.address
    thread, _ = start_service(service)
    try:
        client = SyncServiceClient(host, port, timeout=10.0)
        # First submit is promoted to the single running slot (no
        # workers needed for promotion), the second parks in the
        # depth-1 queue, so the third must bounce.
        client.submit(flowshop_spec(instance_a), owner="alice")
        time.sleep(0.3)
        client.submit(flowshop_spec(instance_b), owner="alice")
        with pytest.raises(JobRefusedError):
            client.submit(flowshop_spec(instance_a), owner="bob")
    finally:
        service.shutdown()
        thread.join(timeout=30)


def test_malformed_spec_is_refused_not_failed():
    service = SolveService(service_config())
    host, port = service.address
    thread, outcome = start_service(service)
    try:
        client = SyncServiceClient(host, port, timeout=10.0)
        with pytest.raises(JobRefusedError):
            client.submit({"builder": "nonsense", "payload": []})
        assert client.list_jobs() == []
    finally:
        service.shutdown()
        thread.join(timeout=30)
    assert len(outcome["report"].jobs) == 0


def test_owner_filter_on_list():
    service = SolveService(service_config())
    host, port = service.address
    thread, _ = start_service(service)
    try:
        client = SyncServiceClient(host, port, timeout=10.0)
        client.submit(flowshop_spec(instance_a), owner="alice")
        client.submit(flowshop_spec(instance_b), owner="bob")
        owners = {s["owner"] for s in client.list_jobs(owner="alice")}
        assert owners == {"alice"}
        assert len(client.list_jobs()) == 2
    finally:
        service.shutdown()
        thread.join(timeout=30)


def test_abort_then_resume_completes_both_jobs(tmp_path):
    """In-process kill -9: no final checkpoints, recover from disk."""
    config = service_config(tmp_path)
    service = SolveService(config)
    host, port = service.address
    thread, outcome = start_service(service)
    client = SyncServiceClient(host, port, timeout=10.0)
    job_a = client.submit(flowshop_spec(instance_a), owner="alice")
    job_b = client.submit(flowshop_spec(instance_b), owner="bob")
    workers, _ = start_workers(host, port, 2)
    # Let some interval updates reach the per-job journals, then die.
    import time

    time.sleep(0.5)
    service.abort()
    thread.join(timeout=30)
    for worker in workers:
        worker.join(timeout=30)
    assert outcome["report"].aborted

    successor = SolveService(
        service_config(
            tmp_path, resume=True, drain_when_idle=True, linger_seconds=2.0
        )
    )
    host2, port2 = successor.address
    thread2, outcome2 = start_service(successor)
    workers2, worker_outcomes = start_workers(host2, port2, 2, prefix="v")
    for worker in workers2:
        worker.join(timeout=90)
    thread2.join(timeout=90)
    report = outcome2["report"]
    assert report.epoch == 2
    assert report.jobs[job_a]["status"] == DONE
    assert report.jobs[job_b]["status"] == DONE
    assert report.jobs[job_a]["cost"] == serial_a.cost
    assert report.jobs[job_b]["cost"] == serial_b.cost
    # Workers either got told Terminate or arrived after the drain;
    # neither may be a hang or a protocol error.
    assert set(worker_outcomes.values()) <= {"terminate", "unreachable"}

"""Property suite: pool bound-kernel backends == scalar oracle, bitwise.

PR 7's pool-evaluation engine bounds whole frontier pools per backend
call.  Its correctness contract is the same as PR 2's, one level up:
every backend must be *bit-identical* to the per-node scalar path —
same optimum, same solution, byte-identical ``ExplorationStats`` —
for every pool size, because the engine's pruning decisions ride on
the returned bounds verbatim.  These tests quantify that contract
over random instances and exercise the registry and the
optional-dependency fallbacks, with and without numba installed.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import solve
from repro.core.kernels import (
    KERNEL_BACKEND_CHOICES,
    available_backends,
    backend_names,
    get_backend,
    pool_evaluator_for,
    pool_factory_for,
    register_pool_factory,
)
from repro.core.kernels.cupy_backend import CupyKernel
from repro.core.kernels.numba_backend import NumbaKernel
from repro.exceptions import EngineError
from repro.problems.flowshop import (
    BoundData,
    FlowShopProblem,
    kernels_numba,
    random_instance,
)
from repro.problems.flowshop.makespan import advance_front, advance_fronts_pool
from repro.problems.flowshop.pool import FlowShopNumbaPool, FlowShopNumpyPool
from repro.problems.tsp import TSPProblem, random_tsp
from repro.problems.tsp.pool import TSPNumpyPool

NUMBA_AVAILABLE = get_backend("numba").available()

# Backends whose end-to-end solve must equal the oracle on this
# machine.  "numpy" always; "numba" joins on the CI leg that installs
# it (elsewhere its *fallback* is tested instead, below).
EXACT_BACKENDS = ("numpy", "numba") if NUMBA_AVAILABLE else ("numpy",)

PAIR_STRATEGIES = ("adjacent", "adjacent+ends", "all")
BOUNDS = ("lb1", "lb2", "combined")


def _assert_same_resolution(reference, candidate):
    assert candidate.cost == reference.cost
    assert candidate.solution == reference.solution
    assert vars(candidate.stats) == vars(reference.stats)


# ----------------------------------------------------------------------
# End-to-end: solve() under every backend == the scalar per-node oracle.
# ----------------------------------------------------------------------


@st.composite
def flowshop_solve_case(draw):
    jobs = draw(st.integers(4, 7))
    machines = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    bound = draw(st.sampled_from(BOUNDS))
    strategy = draw(st.sampled_from(PAIR_STRATEGIES))
    pool_size = draw(st.sampled_from((1, 2, 5, 64)))
    return jobs, machines, seed, bound, strategy, pool_size


class TestBackendsMatchScalarOracle:
    @given(flowshop_solve_case())
    @settings(max_examples=20, deadline=None)
    def test_flowshop(self, case):
        jobs, machines, seed, bound, strategy, pool_size = case
        instance = random_instance(jobs, machines, seed=seed)

        def make():
            # Fresh problem per solve: the handoff caches must never be
            # the thing making two runs agree.
            return FlowShopProblem(instance, bound=bound, pair_strategy=strategy)

        oracle = solve(make(), batched_bounds=False)
        for backend in EXACT_BACKENDS:
            pooled = solve(
                make(), kernel_backend=backend, pool_size=pool_size
            )
            _assert_same_resolution(oracle, pooled)

    @given(
        st.integers(4, 7),
        st.integers(0, 10_000),
        st.sampled_from((1, 3, 64)),
    )
    @settings(max_examples=20, deadline=None)
    def test_tsp(self, cities, seed, pool_size):
        instance = random_tsp(cities, seed=seed)
        oracle = solve(TSPProblem(instance), batched_bounds=False)
        pooled = solve(
            TSPProblem(instance),
            kernel_backend="numpy",
            pool_size=pool_size,
        )
        _assert_same_resolution(oracle, pooled)

    def test_off_equals_auto(self):
        """``kernel_backend="off"`` is the PR 2 batched path, same stats."""
        instance = random_instance(7, 4, seed=3)
        auto = solve(FlowShopProblem(instance))
        off = solve(FlowShopProblem(instance), kernel_backend="off")
        _assert_same_resolution(auto, off)


# ----------------------------------------------------------------------
# Pool boundaries: size 1, an exact multiple of the frontier, a ragged
# tail — at the engine (pool_size sweep) and at the evaluator (pool
# width sweep, including the singleton fast path).
# ----------------------------------------------------------------------


def _pool_parents(instance, depth, count):
    """``count`` distinct same-depth (front, remaining) parents."""
    import itertools

    fronts, remainings = [], []
    for prefix in itertools.permutations(range(instance.jobs), depth):
        front = np.zeros(instance.machines, dtype=np.int64)
        for job in prefix:
            advance_front(front, instance.processing_times[job], out=front)
        fronts.append(front)
        remainings.append(
            np.array(
                sorted(set(range(instance.jobs)) - set(prefix)),
                dtype=np.intp,
            )
        )
        if len(fronts) == count:
            break
    assert len(fronts) == count
    return np.stack(fronts), np.stack(remainings)


class _FrontState:
    """Just enough state surface for the flowshop pool evaluators."""

    def __init__(self, front, remaining):
        self.front = front
        self.remaining = remaining


class TestPoolBoundaries:
    @pytest.mark.parametrize("pool_size", (1, 2, 3, 5, 64))
    def test_engine_pool_size_sweep(self, pool_size):
        # The measured frontier of this instance is a handful of
        # entries wide: 1 forces singleton pools, 2/3 split it into an
        # exact multiple or a ragged tail, 64 swallows it whole.
        instance = random_instance(7, 4, seed=11)
        oracle = solve(FlowShopProblem(instance), batched_bounds=False)
        pooled = solve(
            FlowShopProblem(instance),
            kernel_backend="numpy",
            pool_size=pool_size,
        )
        _assert_same_resolution(oracle, pooled)

    @pytest.mark.parametrize("n_pool", (1, 4, 7))
    @pytest.mark.parametrize("bound", BOUNDS)
    def test_flowshop_evaluator_widths(self, n_pool, bound):
        instance = random_instance(7, 3, seed=5)
        problem = FlowShopProblem(instance, bound=bound)
        parent_fronts, remainings = _pool_parents(instance, 2, n_pool)
        states = [
            _FrontState(parent_fronts[i], remainings[i])
            for i in range(n_pool)
        ]
        rows = FlowShopNumpyPool(problem)(states, depth=2)
        assert rows is not None and len(rows) == n_pool
        data = problem.bound_data
        for i, state in enumerate(states):
            p_rem = instance.processing_times[state.remaining]
            fronts = advance_fronts_pool(
                state.front[np.newaxis], p_rem[np.newaxis]
            )[0]
            expected = {
                "lb1": data.one_machine_children,
                "lb2": data.two_machine_children,
                "combined": data.combined_children,
            }[bound](fronts, state.remaining)
            np.testing.assert_array_equal(np.asarray(rows[i]), expected)

    @pytest.mark.parametrize("n_pool", (1, 3, 6))
    def test_tsp_evaluator_widths(self, n_pool):
        from repro.problems.tsp.bounds import outgoing_edge_bound_children

        instance = random_tsp(7, seed=9)
        problem = TSPProblem(instance)
        cities = instance.cities
        states = []
        for first in range(1, n_pool + 1):
            path = (0, first)
            remaining = tuple(
                c for c in range(1, cities) if c != first
            )
            cost = int(instance.distances[0, first])
            states.append(
                type(
                    "S",
                    (),
                    {"path": path, "cost": cost, "remaining": remaining},
                )()
            )
        rows = TSPNumpyPool(problem)(states, depth=1)
        assert rows is not None and len(rows) == n_pool
        for i, state in enumerate(states):
            expected = outgoing_edge_bound_children(
                instance, state.path, state.cost, state.remaining
            )
            np.testing.assert_array_equal(np.asarray(rows[i]), expected)


# ----------------------------------------------------------------------
# The plain-Python loop kernels (numba's source of truth) against the
# vectorised numpy pool kernels — runs even where numba is absent, so
# a broken loop cannot hide behind a missing dependency.
# ----------------------------------------------------------------------


@st.composite
def loop_kernel_case(draw):
    jobs = draw(st.integers(4, 7))
    machines = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 10_000))
    strategy = draw(st.sampled_from(PAIR_STRATEGIES))
    depth = draw(st.integers(1, jobs - 2))
    n_pool = draw(st.integers(1, 5))
    return jobs, machines, seed, strategy, depth, n_pool


class TestLoopKernelsMatchNumpy:
    @given(loop_kernel_case())
    @settings(max_examples=40, deadline=None)
    def test_lb1_and_lb2_pools(self, case):
        jobs, machines, seed, strategy, depth, n_pool = case
        import math

        instance = random_instance(jobs, machines, seed=seed)
        data = BoundData(instance, pair_strategy=strategy)
        n_pool = min(n_pool, math.perm(jobs, depth))
        parent_fronts, remaining = _pool_parents(instance, depth, n_pool)
        p_rem = instance.processing_times[remaining]
        fronts = advance_fronts_pool(parent_fronts, p_rem)
        r = remaining.shape[1]
        tails_rem = data.tails[remaining]

        out1 = np.empty((n_pool, r), dtype=np.int64)
        kernels_numba.lb1_pool(fronts, p_rem, tails_rem, out1)
        np.testing.assert_array_equal(
            out1, data.one_machine_children_pool(fronts, remaining, p_rem)
        )

        if r >= 2 and data.pairs:
            out2 = np.empty((n_pool, r), dtype=np.int64)
            kernels_numba.lb2_pool(
                fronts,
                remaining,
                data._order_all,
                data._a_all,
                data._b_all,
                data._lag_all,
                data._j_idx,
                data._k_idx,
                tails_rem,
                out2,
            )
            np.testing.assert_array_equal(
                out2, data.two_machine_children_pool(fronts, remaining)
            )

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    @pytest.mark.parametrize("bound", BOUNDS)
    def test_jitted_pool_equals_numpy_pool(self, bound):
        instance = random_instance(7, 4, seed=21)
        problem = FlowShopProblem(instance, bound=bound)
        parent_fronts, remainings = _pool_parents(instance, 2, 5)
        states = [
            _FrontState(parent_fronts[i], remainings[i]) for i in range(5)
        ]
        numpy_rows = FlowShopNumpyPool(problem)(states, depth=2)
        numba_rows = FlowShopNumbaPool(problem)(states, depth=2)
        np.testing.assert_array_equal(
            np.asarray(numpy_rows), np.asarray(numba_rows)
        )


# ----------------------------------------------------------------------
# Registry behaviour.
# ----------------------------------------------------------------------


class TestRegistry:
    def test_unknown_backend_raises(self):
        with pytest.raises(EngineError, match="unknown kernel backend"):
            get_backend("jax")

    def test_builtin_names(self):
        assert backend_names() == ["cupy", "numba", "numpy"]
        assert set(KERNEL_BACKEND_CHOICES) == set(backend_names())

    def test_numpy_always_available(self):
        assert "numpy" in available_backends()

    def test_mro_lookup_covers_subclasses(self):
        class Narrowed(FlowShopProblem):
            pass

        problem = Narrowed(random_instance(4, 2, seed=0))
        evaluator = pool_evaluator_for(problem, "numpy")
        assert isinstance(evaluator, FlowShopNumpyPool)

    def test_unregistered_problem_pools_nothing(self):
        # No factory, no bound_children override: auto mode must leave
        # the engine on its exact pre-pool paths, and the numpy backend
        # must decline rather than invent a per-parent loop.
        assert pool_factory_for("numpy", object) is None
        assert pool_evaluator_for(object(), None) is None
        assert get_backend("numpy").evaluator_for(object()) is None

    def test_engine_rejects_unknown_backend(self):
        instance = random_instance(4, 2, seed=0)
        with pytest.raises(EngineError, match="unknown kernel backend"):
            solve(FlowShopProblem(instance), kernel_backend="jax")


# ----------------------------------------------------------------------
# Optional-dependency fallbacks: selecting numba/cupy must never break
# a run — one RuntimeWarning per process, then the numpy evaluator.
# ----------------------------------------------------------------------


class TestOptionalBackendFallback:
    def _problem(self):
        return FlowShopProblem(random_instance(5, 3, seed=1))

    def test_numba_missing_warns_once_then_numpy(self):
        backend = NumbaKernel()
        backend._probed = False  # force the missing-dep path everywhere
        with pytest.warns(RuntimeWarning, match="numba is not"):
            evaluator = backend.evaluator_for(self._problem())
        assert isinstance(evaluator, FlowShopNumpyPool)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second resolve stays silent
            backend.evaluator_for(self._problem())

    def test_numba_setup_failure_warns_and_falls_back(self):
        class Boom(FlowShopProblem):
            pass

        def exploding_factory(problem):
            raise RuntimeError("boom")

        register_pool_factory("numba", Boom, exploding_factory)
        backend = NumbaKernel()
        backend._probed = True  # pretend the import side is fine
        with pytest.warns(RuntimeWarning, match="setup failed"):
            evaluator = backend.evaluator_for(
                Boom(random_instance(5, 3, seed=1))
            )
        # Fallback resolves through the numpy registry entry, which the
        # subclass inherits via MRO lookup.
        assert isinstance(evaluator, FlowShopNumpyPool)

    def test_cupy_warns_once_then_numpy(self):
        # Warns whether cupy is missing or merely has no kernels
        # registered yet — either way the numpy evaluator does the work.
        backend = CupyKernel()
        with pytest.warns(RuntimeWarning):
            evaluator = backend.evaluator_for(self._problem())
        assert isinstance(evaluator, FlowShopNumpyPool)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend.evaluator_for(self._problem())

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
    def test_jit_kernels_raises_without_numba(self):
        with pytest.raises(RuntimeError, match="numba is not installed"):
            kernels_numba.jit_kernels()
        with pytest.raises(RuntimeError):
            FlowShopNumbaPool(self._problem())

    def test_solve_with_optional_backend_still_exact(self):
        # End to end through the registry singletons (which may have
        # warned already in this process — swallow, don't assert).
        instance = random_instance(6, 3, seed=7)
        oracle = solve(FlowShopProblem(instance), batched_bounds=False)
        for backend in ("numba", "cupy"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                pooled = solve(
                    FlowShopProblem(instance), kernel_backend=backend
                )
            _assert_same_resolution(oracle, pooled)

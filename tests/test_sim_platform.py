"""Tests for platform specs, availability traces and failure plans."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.grid.simulator import (
    AvailabilityModel,
    ClusterSpec,
    FarmerFailurePlan,
    HostSpec,
    PlatformSpec,
    paper_platform,
    small_platform,
)


class TestPaperPlatform:
    def test_total_is_1889_processors(self):
        # Table 1's bottom line.
        assert paper_platform().total_processors == 1889

    def test_nine_clusters(self):
        assert len(paper_platform().clusters) == 9

    def test_campus_vs_grid5000_split(self):
        platform = paper_platform()
        campus = sum(
            c.processors for c in platform.clusters if c.domain == "Lille1"
        )
        grid5000 = sum(
            c.processors for c in platform.clusters if c.domain == "Grid5000"
        )
        assert campus == 469
        assert grid5000 == 1420  # bi-processor machines, 710 x 2

    def test_grid5000_hosts_are_dedicated(self):
        platform = paper_platform()
        for host in platform.all_hosts():
            cluster = next(
                c for c in platform.clusters if c.name == host.cluster
            )
            assert host.dedicated == (cluster.domain == "Grid5000")

    def test_largest_clusters(self):
        # Rennes aggregates three rows (64+64+100 bi-proc machines);
        # Orsay is the largest single row (2 x 216).
        platform = paper_platform()
        by_name = {c.name: c.processors for c in platform.clusters}
        assert by_name["Rennes"] == 456
        assert by_name["Orsay"] == 432
        largest = max(platform.clusters, key=lambda c: c.processors)
        assert largest.name == "Rennes"

    def test_host_ids_unique(self):
        hosts = paper_platform().all_hosts()
        assert len({h.host_id for h in hosts}) == len(hosts)

    def test_farmer_on_campus(self):
        assert paper_platform().farmer_cluster == "IEEA-FIL"

    def test_speed_range_matches_table(self):
        speeds = {h.speed_ghz for h in paper_platform().all_hosts()}
        assert min(speeds) == 0.80  # Celeron 0.80
        assert max(speeds) == 3.20  # P4 3.20


class TestSmallPlatform:
    def test_worker_count(self):
        assert small_platform(workers=7, clusters=3).total_processors == 7

    def test_invalid_args(self):
        with pytest.raises(SimulationError):
            small_platform(workers=0)

    def test_duplicate_cluster_names_rejected(self):
        c = ClusterSpec("x", "d", [HostSpec("x/0", "x", 1.0, True)])
        with pytest.raises(SimulationError):
            PlatformSpec(clusters=[c, c])

    def test_unknown_farmer_cluster_rejected(self):
        c = ClusterSpec("x", "d", [HostSpec("x/0", "x", 1.0, True)])
        with pytest.raises(SimulationError):
            PlatformSpec(clusters=[c], farmer_cluster="nope")


class TestAvailability:
    def _host(self, dedicated):
        return HostSpec("h/0", "h", 2.0, dedicated)

    def test_trace_periods_sorted_and_disjoint(self):
        model = AvailabilityModel()
        trace = model.trace(
            self._host(False), 86400.0, np.random.default_rng(1)
        )
        for (a0, b0), (a1, b1) in zip(trace.periods, trace.periods[1:]):
            assert a0 <= b0 <= a1 <= b1

    def test_trace_within_horizon(self):
        model = AvailabilityModel()
        trace = model.trace(
            self._host(False), 3600.0, np.random.default_rng(2)
        )
        assert all(0 <= a and b <= 3600.0 for a, b in trace.periods)

    def test_dedicated_hosts_more_available(self):
        model = AvailabilityModel()
        horizon = 30 * 86400.0
        up_dedicated = sum(
            model.trace(
                self._host(True), horizon, np.random.default_rng(seed)
            ).total_up(horizon)
            for seed in range(10)
        )
        up_stolen = sum(
            model.trace(
                self._host(False), horizon, np.random.default_rng(seed)
            ).total_up(horizon)
            for seed in range(10)
        )
        assert up_dedicated > up_stolen

    def test_available_at(self):
        from repro.grid.simulator import AvailabilityTrace

        trace = AvailabilityTrace("h", [(0.0, 10.0), (20.0, 30.0)])
        assert trace.available_at(5.0)
        assert not trace.available_at(15.0)
        assert not trace.available_at(30.0)  # half-open

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            AvailabilityModel(mean_up=0)
        with pytest.raises(SimulationError):
            AvailabilityModel(diurnal_amplitude=1.0)

    def test_reproducible_given_same_stream(self):
        model = AvailabilityModel()
        t1 = model.trace(self._host(False), 86400.0, np.random.default_rng(9))
        t2 = model.trace(self._host(False), 86400.0, np.random.default_rng(9))
        assert t1.periods == t2.periods


class TestFailurePlan:
    def test_is_down(self):
        plan = FarmerFailurePlan([(10.0, 5.0)])
        assert not plan.is_down(9.0)
        assert plan.is_down(12.0)
        assert not plan.is_down(15.0)

    def test_overlapping_outages_rejected(self):
        with pytest.raises(SimulationError):
            FarmerFailurePlan([(10.0, 5.0), (12.0, 1.0)])

    def test_negative_downtime_rejected(self):
        with pytest.raises(SimulationError):
            FarmerFailurePlan([(10.0, -1.0)])

    def test_poisson_plan_within_horizon(self):
        plan = FarmerFailurePlan.poisson(
            horizon=1000.0,
            mean_interval=100.0,
            mean_downtime=10.0,
            rng=np.random.default_rng(3),
        )
        assert all(crash < 1000.0 for crash, _ in plan.outages)
        assert plan.outages  # with these means some outage happens

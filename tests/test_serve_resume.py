"""Server resume over the checkpoint directory: the crash-only path.

``GridServer.abort()`` is the in-process stand-in for ``kill -9`` — it
drops the final forced checkpoint, so a successor only sees what the
periodic snapshot and the journal persisted.  These tests crash a live
loopback run mid-stream, restart with ``resume=True``, and require the
restarted fleet to finish with the serial optimum; plus the stale-epoch
handshake and the refuse-to-guess construction errors.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import Incumbent, IntervalSet, solve
from repro.core.checkpoint import CheckpointStore
from repro.exceptions import CheckpointError, RuntimeProtocolError
from repro.grid.net.serve import GridServer, ServeConfig, run_worker
from repro.grid.net.tcp import TcpClientConnection
from repro.grid.net.transport import TransportTimeout
from repro.grid.runtime import flowshop_spec
from repro.problems.flowshop import FlowShopProblem, random_instance

fs_instance = random_instance(8, 4, seed=51)
serial = solve(FlowShopProblem(fs_instance))


def serve_config(checkpoint_dir, **overrides):
    base = dict(
        port=0,
        deadline=60,
        lease_seconds=5.0,
        linger_seconds=2.0,
        checkpoint_dir=checkpoint_dir,
        checkpoint_period=0.1,
    )
    base.update(overrides)
    return ServeConfig(**base)


def start_server(server):
    outcome = {}

    def serve():
        outcome["result"] = server.serve_forever()

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread, outcome


def start_workers(host, port, count, prefix, outcomes):
    def work(wid):
        outcomes[wid] = run_worker(
            host,
            port,
            wid,
            update_nodes=150,
            update_period=0.05,
            reply_timeout=2.0,
            max_retries=3,
            heartbeat_interval=0.5,
            max_reconnect_attempts=4,
            backoff_cap=0.2,
        )

    threads = [
        threading.Thread(target=work, args=(f"{prefix}-{i}",), daemon=True)
        for i in range(count)
    ]
    for t in threads:
        t.start()
    return threads


class TestAbortResume:
    def test_abort_midrun_then_resume_completes_exactly(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        spec = flowshop_spec(fs_instance)

        server1 = GridServer(spec, serve_config(ckpt))
        assert server1.epoch == 1
        host, port = server1.address
        thread1, outcome1 = start_server(server1)
        worker_outcomes = {}
        workers1 = start_workers(host, port, 2, "rw1", worker_outcomes)

        # Crash once real progress has been checkpointed but the space
        # is (almost certainly) not yet exhausted.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if (
                server1.coordinator.nodes_explored > 0
                and ckpt.joinpath("intervals.json").exists()
            ):
                break
            time.sleep(0.01)
        server1.abort()
        thread1.join(timeout=30)
        assert not thread1.is_alive()
        for t in workers1:
            t.join(timeout=30)
            assert not t.is_alive()
        result1 = outcome1["result"]

        if result1.aborted:
            # The interesting path: the crash landed mid-run.  The
            # abandoned workers gave up against the dead server —
            # unless the abort raced the natural end of the run, in
            # which case a worker may have been terminated (or died
            # mid-RPC) first.
            assert not result1.optimal
            assert all(
                outcome in ("gave-up", "terminate", "crash")
                for outcome in worker_outcomes.values()
            )

        server2 = GridServer(spec, serve_config(ckpt, resume=True))
        assert server2.epoch == 2
        host2, port2 = server2.address
        thread2, outcome2 = start_server(server2)
        workers2 = start_workers(host2, port2, 2, "rw2", {})
        for t in workers2:
            t.join(timeout=60)
        thread2.join(timeout=60)
        assert not thread2.is_alive()
        result2 = outcome2["result"]

        assert result2.optimal
        assert not result2.aborted
        assert result2.cost == serial.cost
        # Node accounting still reconciles on the resumed run alone.
        reported = sum(
            s["nodes"] for s in result2.worker_stats.values()
        )
        assert result2.nodes_explored == reported
        if result1.aborted and result1.cost > serial.cost:
            # The crash provably landed mid-run (the optimum was not
            # found yet), so the successor had real work left.  When
            # the abort races the natural end of the search, the
            # journal may already cover the whole space and a
            # zero-node resume is the correct outcome — the
            # result2.optimal/cost asserts above still pin it.
            assert result2.nodes_explored > 0

    def test_resume_from_clean_shutdown_is_a_noop_run(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        spec = flowshop_spec(fs_instance)
        server1 = GridServer(spec, serve_config(ckpt))
        host, port = server1.address
        thread1, outcome1 = start_server(server1)
        workers = start_workers(host, port, 2, "cw", {})
        for t in workers:
            t.join(timeout=60)
        thread1.join(timeout=60)
        assert outcome1["result"].optimal

        server2 = GridServer(spec, serve_config(ckpt, resume=True))
        thread2, outcome2 = start_server(server2)
        thread2.join(timeout=30)
        result2 = outcome2["result"]
        assert result2.optimal
        assert result2.cost == serial.cost
        assert result2.nodes_explored == 0  # nothing left to explore


class TestStaleEpochWorker:
    def test_reconnecting_worker_sees_the_epoch_change(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        spec = flowshop_spec(fs_instance)
        server1 = GridServer(spec, serve_config(ckpt))
        host, port = server1.address
        thread1, _ = start_server(server1)

        conn = TcpClientConnection(
            host,
            port,
            "stale-epoch-worker",
            heartbeat_interval=None,
            reconnect_base=0.01,
            reconnect_cap=0.05,
        )
        try:
            conn.open(timeout=10.0)
            assert conn.welcome is not None and conn.welcome.epoch == 1
            assert conn.take_epoch_change() is False

            server1.abort()
            thread1.join(timeout=30)

            # The successor resumes on the *same* port, as a restarted
            # production server would.
            server2 = GridServer(
                spec, serve_config(ckpt, port=port, resume=True)
            )
            thread2, _ = start_server(server2)
            try:
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    try:
                        conn.recv(timeout=0.2)
                    except TransportTimeout:
                        pass
                    if (
                        conn.welcome is not None
                        and conn.welcome.epoch == 2
                    ):
                        break
                assert conn.welcome is not None
                assert conn.welcome.epoch == 2
                # The reconnect crossed a server generation: exactly one
                # pending resync, consumed once.
                assert conn.take_epoch_change() is True
                assert conn.take_epoch_change() is False
            finally:
                server2.shutdown()
                thread2.join(timeout=30)
        finally:
            conn.close()


class TestResumeErrors:
    def test_resume_without_checkpoint_dir_is_refused(self):
        with pytest.raises(RuntimeProtocolError, match="checkpoint"):
            GridServer(
                flowshop_spec(fs_instance),
                ServeConfig(port=0, resume=True),
            )

    def test_resume_from_corrupted_snapshot_is_refused(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        store = CheckpointStore(ckpt)
        store.save(IntervalSet.from_payload([(0, 100)], 0), Incumbent())
        # Flip a byte inside the payload: the CRC must catch it.
        text = store.intervals_path.read_text()
        store.intervals_path.write_text(
            text.replace('"100"', '"900"', 1)
        )
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            GridServer(
                flowshop_spec(fs_instance),
                serve_config(ckpt, resume=True),
            )

    def test_resume_merges_cli_warm_start_monotonically(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        store = CheckpointStore(ckpt)
        snapshot_best = Incumbent()
        snapshot_best.update(100.0, (0, 1))
        store.save(IntervalSet.from_payload([(5, 9)], 0), snapshot_best)

        worse = GridServer(
            flowshop_spec(fs_instance),
            serve_config(
                ckpt, resume=True, initial_upper_bound=500.0,
                initial_solution=(1, 0),
            ),
        )
        try:
            assert worse.coordinator.solution.cost == 100.0
        finally:
            worse.listener.close()

        better = GridServer(
            flowshop_spec(fs_instance),
            serve_config(
                ckpt, resume=True, initial_upper_bound=50.0,
                initial_solution=(1, 0),
            ),
        )
        try:
            assert better.coordinator.solution.cost == 50.0
            assert better.coordinator.intervals.to_payload() == [(5, 9)]
        finally:
            better.listener.close()

"""Tests for Taillard-format instance file I/O."""

import io

import numpy as np
import pytest

from repro.exceptions import ProblemError
from repro.problems.flowshop import random_instance, taillard_instance
from repro.problems.flowshop.io import (
    InstanceMetadata,
    read_instance,
    write_instance,
)


class TestRoundTrip:
    def test_stream_roundtrip(self):
        original = random_instance(7, 4, seed=3)
        buffer = io.StringIO()
        write_instance(original, buffer)
        buffer.seek(0)
        loaded, _ = read_instance(buffer)
        assert loaded == original

    def test_file_roundtrip_with_metadata(self, tmp_path):
        original = taillard_instance(20, 5, 1)
        path = tmp_path / "ta001.txt"
        write_instance(
            original,
            path,
            InstanceMetadata(seed=873654221, upper_bound=1278, lower_bound=1232),
        )
        loaded, meta = read_instance(path)
        assert loaded == original
        assert meta.seed == 873654221
        assert meta.upper_bound == 1278
        assert meta.lower_bound == 1232

    def test_name_from_path(self, tmp_path):
        path = tmp_path / "my_instance.txt"
        write_instance(random_instance(4, 2, seed=1), path)
        loaded, _ = read_instance(path)
        assert loaded.name == "my_instance"

    def test_machine_major_layout(self):
        # Two jobs, three machines: rows in the file are machines.
        from repro.problems.flowshop import FlowShopInstance

        inst = FlowShopInstance([[1, 2, 3], [4, 5, 6]])
        buffer = io.StringIO()
        write_instance(inst, buffer)
        lines = [
            l for l in buffer.getvalue().splitlines()
            if l and l[0] == " " and ":" not in l
        ]
        rows = [list(map(int, l.split())) for l in lines[1:]]
        assert rows == [[1, 4], [2, 5], [3, 6]]


class TestReaderTolerance:
    def test_reads_classic_format(self):
        text = (
            "number of jobs, number of machines, initial seed, "
            "upper bound and lower bound :\n"
            "          3           2   123456789        99        90\n"
            "processing times :\n"
            " 10 20 30\n"
            " 40 50 60\n"
        )
        inst, meta = read_instance(io.StringIO(text))
        assert inst.jobs == 3 and inst.machines == 2
        assert inst.processing_times.tolist() == [[10, 40], [20, 50], [30, 60]]
        assert meta.seed == 123456789

    def test_wrong_count_rejected(self):
        text = "3 2 0 0 0\n1 2 3\n"
        with pytest.raises(ProblemError):
            read_instance(io.StringIO(text))

    def test_empty_file_rejected(self):
        with pytest.raises(ProblemError):
            read_instance(io.StringIO("no numbers here"))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ProblemError):
            read_instance(io.StringIO("0 5 0 0 0"))

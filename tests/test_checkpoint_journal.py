"""The PR 6 recovery layer: journal, CRC snapshots, epoch counter.

The append-only journal shrinks the recovery window from one full
``checkpoint_period`` to the last reconciled update; these tests pin
its durability contract — CRC-framed records, torn-tail truncation,
generation filtering — plus the snapshot checksum and the server epoch
counter the Welcome handshake carries.
"""

import json
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Incumbent, Interval, IntervalSet
from repro.core.checkpoint import (
    CheckpointJournal,
    CheckpointStore,
    JournalRecord,
)
from repro.exceptions import CheckpointError


def make_store(tmp_path):
    return CheckpointStore(tmp_path / "ckpt")


def snapshot(store, pairs, cost=None, solution=None):
    intervals = IntervalSet.from_payload(pairs, 0)
    incumbent = Incumbent()
    if cost is not None:
        incumbent.update(cost, solution)
    store.save(intervals, incumbent)
    return intervals


# ----------------------------------------------------------------------
# JournalRecord round-trip


def test_record_roundtrip_explored():
    rec = JournalRecord(3, "explored", (10, 25))
    back = JournalRecord.from_json(rec.to_json())
    assert back == rec


def test_record_roundtrip_push():
    rec = JournalRecord(1, "push", cost=1278.0, solution=(2, 0, 1))
    back = JournalRecord.from_json(rec.to_json())
    assert back == rec


def test_record_endpoints_survive_beyond_double_precision():
    begin = 2**77 + 1
    end = begin + 2**60 + 3
    rec = JournalRecord(0, "explored", (begin, end))
    back = JournalRecord.from_json(rec.to_json())
    assert back.interval == (begin, end)
    # Serialised as decimal strings, not JSON numbers: a reader that
    # round-trips numbers through doubles cannot corrupt them.
    assert f'"{begin}"' in rec.to_json()


@settings(max_examples=50, deadline=None)
@given(
    gen=st.integers(min_value=0, max_value=100),
    begin=st.integers(min_value=0, max_value=2**80),
    span=st.integers(min_value=0, max_value=2**80),
)
def test_record_roundtrip_hypothesis(gen, begin, span):
    rec = JournalRecord(gen, "explored", (begin, begin + span))
    assert JournalRecord.from_json(rec.to_json()) == rec


def test_malformed_record_raises():
    with pytest.raises(ValueError):
        JournalRecord.from_json('{"gen":1,"kind":"frobnicate"}')
    with pytest.raises(ValueError):
        JournalRecord.from_json('[1,2]')


# ----------------------------------------------------------------------
# CheckpointJournal: append / replay / torn tails


def test_append_replay_roundtrip(tmp_path):
    journal = CheckpointJournal(tmp_path / "journal.log")
    records = [
        JournalRecord(0, "explored", (0, 10)),
        JournalRecord(0, "push", cost=54.0, solution=(1, 0)),
        JournalRecord(0, "explored", (10, 20)),
    ]
    for rec in records:
        journal.append(rec)
    journal.close()
    assert journal.replay(0) == records


def test_replay_filters_other_generations(tmp_path):
    journal = CheckpointJournal(tmp_path / "journal.log")
    journal.append(JournalRecord(1, "explored", (0, 5)))
    journal.append(JournalRecord(2, "explored", (5, 9)))
    journal.append(JournalRecord(1, "explored", (9, 12)))
    journal.close()
    replayed = journal.replay(2)
    assert [r.interval for r in replayed] == [(5, 9)]


def test_replay_truncates_torn_tail(tmp_path):
    path = tmp_path / "journal.log"
    journal = CheckpointJournal(path)
    journal.append(JournalRecord(0, "explored", (0, 5)))
    journal.append(JournalRecord(0, "explored", (5, 8)))
    journal.close()
    intact = path.read_bytes()
    # A SIGKILL mid-append leaves a partial line with no newline.
    path.write_bytes(intact + b'aaaaaaaa {"gen":0,"kind":"exp')
    assert len(journal.replay(0)) == 2
    # The torn tail was excised so later appends cannot interleave.
    assert path.read_bytes() == intact


def test_replay_truncates_at_crc_mismatch(tmp_path):
    path = tmp_path / "journal.log"
    journal = CheckpointJournal(path)
    journal.append(JournalRecord(0, "explored", (0, 5)))
    journal.close()
    good = path.read_bytes()
    body = JournalRecord(0, "explored", (5, 9)).to_json().encode()
    bad_crc = format(zlib.crc32(body) ^ 1, "08x").encode()
    path.write_bytes(good + bad_crc + b" " + body + b"\n")
    assert [r.interval for r in journal.replay(0)] == [(0, 5)]
    assert path.read_bytes() == good


def test_replay_missing_file_is_empty(tmp_path):
    assert CheckpointJournal(tmp_path / "nope.log").replay(0) == []


def test_append_after_torn_replay_stays_parseable(tmp_path):
    path = tmp_path / "journal.log"
    journal = CheckpointJournal(path)
    journal.append(JournalRecord(0, "explored", (0, 5)))
    journal.close()
    path.write_bytes(path.read_bytes() + b"garbage")
    journal.replay(0)
    journal.append(JournalRecord(0, "explored", (5, 9)))
    journal.close()
    assert [r.interval for r in journal.replay(0)] == [(0, 5), (5, 9)]


def test_rotate_empties_the_journal(tmp_path):
    journal = CheckpointJournal(tmp_path / "journal.log")
    journal.append(JournalRecord(0, "explored", (0, 5)))
    journal.rotate()
    assert journal.replay(0) == []
    assert (tmp_path / "journal.log").read_bytes() == b""


# ----------------------------------------------------------------------
# Store integration: journaling + load_state


def test_load_state_replays_explored_and_push(tmp_path):
    store = make_store(tmp_path)
    snapshot(store, [(0, 100)], cost=90.0, solution=(0, 1))
    store.journal_explored(Interval(0, 30))
    store.journal_push(75.0, (1, 0))
    store.journal_explored(Interval(60, 80))

    fresh = make_store(tmp_path)
    state = fresh.load_state()
    assert state.replayed_records == 3
    assert state.replayed_leaves == 50
    assert state.intervals.to_payload() == [(30, 60), (80, 100)]
    assert state.incumbent.cost == 75.0
    assert state.incumbent.solution == (1, 0)
    assert state.generation == 1


def test_load_state_without_journal_replay(tmp_path):
    store = make_store(tmp_path)
    snapshot(store, [(0, 100)])
    store.journal_explored(Interval(0, 40))
    state = make_store(tmp_path).load_state(replay_journal=False)
    assert state.replayed_records == 0
    assert state.intervals.to_payload() == [(0, 100)]


def test_save_rotates_journal(tmp_path):
    store = make_store(tmp_path)
    intervals = snapshot(store, [(0, 100)])
    store.journal_explored(Interval(0, 99))
    store.save(intervals, Incumbent())  # new snapshot subsumes the journal
    state = make_store(tmp_path).load_state()
    assert state.replayed_records == 0
    assert state.intervals.to_payload() == [(0, 100)]


def test_load_state_ignores_stale_generation_records(tmp_path):
    store = make_store(tmp_path)
    intervals = snapshot(store, [(0, 100)])  # generation 1
    store.journal_explored(Interval(0, 10))  # stamped gen 1
    store.save(intervals, Incumbent())  # generation 2, rotates
    # Simulate a crash landing *between* the pair write and the
    # rotation: hand-append a record stamped for the old generation.
    store.journal.append(JournalRecord(1, "explored", (0, 50)))
    store.journal.close()
    state = make_store(tmp_path).load_state()
    assert state.replayed_records == 0
    assert state.intervals.to_payload() == [(0, 100)]


def test_load_state_replays_over_fresh_root_before_first_snapshot(tmp_path):
    store = make_store(tmp_path)
    store.journal_explored(Interval(0, 7))  # no snapshot yet: gen 0
    state = make_store(tmp_path).load_state(root_interval=Interval(0, 24))
    assert state.intervals.to_payload() == [(7, 24)]
    assert state.incumbent is None


def test_load_state_replay_is_idempotent(tmp_path):
    store = make_store(tmp_path)
    snapshot(store, [(0, 100)])
    store.journal_explored(Interval(0, 30))
    store.journal_explored(Interval(0, 30))  # duplicate delivery
    store.journal_explored(Interval(10, 40))  # overlapping
    state = make_store(tmp_path).load_state()
    assert state.intervals.to_payload() == [(40, 100)]


# ----------------------------------------------------------------------
# Snapshot CRC


def test_snapshot_files_carry_crc(tmp_path):
    store = make_store(tmp_path)
    snapshot(store, [(0, 10)], cost=5.0, solution=(0,))
    for path in (store.intervals_path, store.solution_path):
        payload = json.loads(path.read_text())
        assert "crc" in payload


def test_corrupted_snapshot_is_rejected(tmp_path):
    store = make_store(tmp_path)
    snapshot(store, [(0, 10)])
    payload = json.loads(store.intervals_path.read_text())
    payload["intervals"] = [["0", "5"]]  # tampered, crc now stale
    store.intervals_path.write_text(json.dumps(payload))
    with pytest.raises(CheckpointError, match="checksum mismatch"):
        make_store(tmp_path).load(0)


def test_legacy_snapshot_without_crc_still_loads(tmp_path):
    store = make_store(tmp_path)
    snapshot(store, [(0, 10)])
    for path in (store.intervals_path, store.solution_path):
        payload = json.loads(path.read_text())
        del payload["crc"]
        path.write_text(json.dumps(payload))
    intervals, _ = make_store(tmp_path).load(0)
    assert intervals.to_payload() == [(0, 10)]


# ----------------------------------------------------------------------
# Server epoch


def test_epoch_starts_at_zero_and_bumps(tmp_path):
    store = make_store(tmp_path)
    assert store.read_epoch() == 0
    assert store.bump_epoch() == 1
    assert store.bump_epoch() == 2
    assert make_store(tmp_path).read_epoch() == 2


def test_corrupt_epoch_file_does_not_block_restart(tmp_path):
    store = make_store(tmp_path)
    store.bump_epoch()
    store.epoch_path.write_text("{broken")
    # Crash-only: the counter restarts rather than refusing to serve.
    assert make_store(tmp_path).bump_epoch() == 1


# ----------------------------------------------------------------------
# IntervalSet.subtract (the replay primitive)


def test_subtract_trims_splits_and_removes():
    s = IntervalSet.from_payload([(0, 10), (20, 30), (40, 50)], 0)
    assert s.subtract(Interval(5, 45)) == 20  # (5,10) + (20,30) + (40,45)
    assert s.to_payload() == [(0, 5), (45, 50)]


def test_subtract_split_keeps_both_sides():
    s = IntervalSet.from_payload([(0, 100)], 0)
    removed = s.subtract(Interval(40, 60))
    assert removed == 20
    assert s.to_payload() == [(0, 40), (60, 100)]


def test_subtract_disjoint_is_noop():
    s = IntervalSet.from_payload([(0, 10)], 0)
    assert s.subtract(Interval(10, 20)) == 0
    assert s.to_payload() == [(0, 10)]

"""Tests for the TSP substrate."""

import itertools

import numpy as np
import pytest

from repro.core import solve
from repro.exceptions import ProblemError
from repro.problems.tsp import (
    TSPInstance,
    TSPProblem,
    nearest_neighbour_tour,
    random_tsp,
)


def brute_force_tour(inst):
    best = None
    for perm in itertools.permutations(range(1, inst.cities)):
        length = inst.tour_length([0] + list(perm))
        if best is None or length < best:
            best = length
    return best


class TestInstance:
    def test_tour_length_hand_computed(self):
        d = [[0, 1, 2], [1, 0, 3], [2, 3, 0]]
        inst = TSPInstance(d)
        assert inst.tour_length([0, 1, 2]) == 1 + 3 + 2

    def test_asymmetric_rejected(self):
        with pytest.raises(ProblemError):
            TSPInstance([[0, 1, 2], [9, 0, 3], [2, 3, 0]])

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(ProblemError):
            TSPInstance([[1, 1, 2], [1, 0, 3], [2, 3, 0]])

    def test_too_few_cities_rejected(self):
        with pytest.raises(ProblemError):
            TSPInstance([[0, 1], [1, 0]])

    def test_invalid_tour_rejected(self):
        inst = random_tsp(5, seed=1)
        with pytest.raises(ProblemError):
            inst.tour_length([0, 1, 2])

    def test_random_tsp_properties(self):
        inst = random_tsp(8, seed=3)
        d = inst.distances
        assert np.array_equal(d, d.T)
        assert not np.diagonal(d).any()
        assert inst.cities == 8

    def test_random_tsp_deterministic(self):
        assert np.array_equal(
            random_tsp(6, seed=5).distances, random_tsp(6, seed=5).distances
        )


class TestProblem:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_optimum_matches_brute_force(self, seed):
        inst = random_tsp(7, seed=seed)
        result = solve(TSPProblem(inst))
        assert result.cost == brute_force_tour(inst)

    def test_solution_is_a_tour_from_zero(self):
        inst = random_tsp(7, seed=4)
        result = solve(TSPProblem(inst))
        assert result.solution[0] == 0
        assert sorted(result.solution) == list(range(7))
        assert inst.tour_length(list(result.solution)) == result.cost

    def test_bound_admissible_at_root(self):
        inst = random_tsp(7, seed=9)
        prob = TSPProblem(inst)
        assert prob.lower_bound(prob.root_state(), 0) <= brute_force_tour(inst)

    def test_tree_shape_excludes_fixed_start(self):
        inst = random_tsp(6, seed=1)
        assert TSPProblem(inst).tree_shape().leaf_depth == 5

    def test_warm_start_with_nearest_neighbour(self):
        inst = random_tsp(8, seed=6)
        tour, length = nearest_neighbour_tour(inst)
        assert sorted(tour) == list(range(8))
        prob = TSPProblem(inst)
        result = solve(prob, initial_upper_bound=length, initial_solution=tuple(tour))
        cold = solve(prob)
        assert result.cost == cold.cost
        assert result.stats.nodes_explored <= cold.stats.nodes_explored

    def test_nearest_neighbour_at_least_optimum(self):
        inst = random_tsp(7, seed=12)
        _, length = nearest_neighbour_tour(inst)
        assert length >= brute_force_tour(inst)

"""Tests for the peer-to-peer extension (the paper's future work)."""

import pytest

from repro.core import Interval, solve
from repro.exceptions import SimulationError
from repro.grid.p2p import P2PConfig, P2PSimulation
from repro.grid.simulator import (
    RealBBWorkload,
    SyntheticWorkload,
    small_platform,
)
from repro.problems.flowshop import FlowShopProblem, random_instance


def real_config(workers=4, seed=21, nodes_per_second=500, **overrides):
    problem = FlowShopProblem(random_instance(7, 3, seed))
    workload = RealBBWorkload(problem, nodes_per_second=nodes_per_second)
    defaults = dict(
        platform=small_platform(workers=workers, clusters=2),
        workload=workload,
        horizon=30 * 86400.0,
        seed=5,
        update_period=1.0,
        steal_backoff=0.5,
    )
    defaults.update(overrides)
    return P2PConfig(**defaults), problem


def synthetic_config(peers=8, **overrides):
    leaves = 10**8
    workload = SyntheticWorkload(
        leaves,
        seed=3,
        # fixed-size workload: calibrated for an 8-peer pool so that
        # scaling tests vary the pool, not the work
        mean_leaf_rate=leaves / (8 * 2.0 * 600.0),
        irregularity=1.0,
        segments=128,
        nodes_per_second=1e4,
        optimum=3679.0,
        initial_gap=2.0,
    )
    defaults = dict(
        platform=small_platform(workers=peers, clusters=2),
        workload=workload,
        horizon=30 * 86400.0,
        seed=7,
        update_period=30.0,
        steal_backoff=5.0,
    )
    defaults.update(overrides)
    return P2PConfig(**defaults)


class TestP2PRealBB:
    def test_finds_sequential_optimum(self):
        config, problem = real_config()
        expected = solve(problem).cost
        report = P2PSimulation(config).run()
        assert report.finished
        assert report.best_cost == expected

    def test_single_peer_degenerates_to_sequential(self):
        config, problem = real_config(workers=1)
        expected = solve(problem).cost
        report = P2PSimulation(config).run()
        assert report.finished
        assert report.best_cost == expected
        assert report.steals_succeeded == 0

    def test_work_actually_spreads(self):
        config, _ = real_config(workers=6, nodes_per_second=20)
        report = P2PSimulation(config).run()
        assert report.finished
        assert report.steals_succeeded > 0

    def test_leaf_coverage_complete(self):
        config, problem = real_config(workers=4)
        sim = P2PSimulation(config)
        report = sim.run()
        assert report.finished
        assert sim.metrics.leaves_consumed >= problem.total_leaves()


class TestP2PSynthetic:
    def test_terminates_and_finds_planted_optimum(self):
        report = P2PSimulation(synthetic_config()).run()
        assert report.finished
        assert report.best_cost == 3679.0

    def test_deterministic_given_seed(self):
        a = P2PSimulation(synthetic_config()).run()
        b = P2PSimulation(synthetic_config()).run()
        assert a.wall_clock == b.wall_clock
        assert a.messages == b.messages

    def test_no_hot_spot(self):
        # The decentralisation claim: no peer should see a dominating
        # share of the message traffic (the farmer sees 100 %).
        report = P2PSimulation(synthetic_config(peers=16)).run()
        assert report.finished
        assert report.max_peer_message_share < 0.5

    def test_more_peers_finish_faster(self):
        few = P2PSimulation(synthetic_config(peers=4)).run()
        many = P2PSimulation(synthetic_config(peers=16)).run()
        assert few.finished and many.finished
        assert many.wall_clock < few.wall_clock

    def test_exploitation_reasonable(self):
        report = P2PSimulation(synthetic_config()).run()
        assert report.peer_exploitation > 0.5


class TestP2PValidation:
    def test_invalid_horizon(self):
        config = synthetic_config()
        config.horizon = 0.0
        with pytest.raises(SimulationError):
            P2PSimulation(config)

    def test_safra_terminates_without_livelock(self):
        # Even with aggressive steal traffic the token must conclude.
        config = synthetic_config(peers=8)
        config.steal_backoff = 0.1
        config.max_events = 5_000_000
        report = P2PSimulation(config).run()
        assert report.finished

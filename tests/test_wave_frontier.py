"""Property suite: wave-frontier exploration == scalar DFS oracle.

PR 8's wave frontier changes the *order* the engine explores in — it
accumulates same-depth waves that fill the pool kernels — but not the
*answer*: every wave-mode solve must return the identical optimum, the
identical optimal solution, and the identical proof status as the
scalar per-node DFS oracle.  Node accounting legitimately differs
(waves bound whole batches before any child can improve the incumbent,
so prune tests fire at different moments), which is exactly why these
tests compare the resolution and not ``ExplorationStats``.

The second half covers the state-capture contract: a mid-run wave
frontier folds to the same two-integer interval form as a DFS stack,
and resuming from that interval (in either mode) completes the proof.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import FRONTIER_CHOICES, Interval, IntervalExplorer, solve
from repro.core.unfold import unfold
from repro.exceptions import EngineError
from repro.problems.flowshop import FlowShopProblem, random_instance
from repro.problems.tsp import TSPProblem, random_tsp

BOUNDS = ("lb1", "lb2", "combined")
PAIR_STRATEGIES = ("adjacent", "adjacent+ends", "all")


def _assert_same_resolution(reference, candidate):
    assert candidate.cost == reference.cost
    assert candidate.solution == reference.solution
    assert candidate.optimal == reference.optimal


# ----------------------------------------------------------------------
# End-to-end: wave mode == the scalar DFS oracle on optimum and proof.
# ----------------------------------------------------------------------


@st.composite
def wave_case(draw):
    jobs = draw(st.integers(4, 7))
    machines = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    bound = draw(st.sampled_from(BOUNDS))
    strategy = draw(st.sampled_from(PAIR_STRATEGIES))
    pool_size = draw(st.sampled_from((1, 2, 5, 64)))
    # Tiny widths force the spill-to-DFS path; the huge one never spills.
    frontier_width = draw(st.sampled_from((1, 4, 32768)))
    return jobs, machines, seed, bound, strategy, pool_size, frontier_width


class TestWaveMatchesScalarOracle:
    @given(wave_case())
    @settings(max_examples=25, deadline=None)
    def test_flowshop(self, case):
        jobs, machines, seed, bound, strategy, pool_size, width = case
        instance = random_instance(jobs, machines, seed=seed)

        def make():
            return FlowShopProblem(
                instance, bound=bound, pair_strategy=strategy
            )

        oracle = solve(make(), batched_bounds=False)
        wave = solve(
            make(),
            frontier="wave",
            pool_size=pool_size,
            frontier_width=width,
        )
        _assert_same_resolution(oracle, wave)

    @given(
        st.integers(4, 7),
        st.integers(0, 10_000),
        st.sampled_from((1, 3, 64)),
        st.sampled_from((2, 32768)),
    )
    @settings(max_examples=20, deadline=None)
    def test_tsp(self, cities, seed, pool_size, width):
        instance = random_tsp(cities, seed=seed)
        oracle = solve(TSPProblem(instance), batched_bounds=False)
        wave = solve(
            TSPProblem(instance),
            frontier="wave",
            pool_size=pool_size,
            frontier_width=width,
        )
        _assert_same_resolution(oracle, wave)

    @given(st.integers(0, 500), st.integers(2, 6))
    @settings(max_examples=15, deadline=None)
    def test_interval_slices(self, seed, denominator):
        """Wave == oracle on partial intervals (the paper's work unit)."""
        import math

        instance = random_instance(6, 3, seed=seed)
        total = math.factorial(6)
        interval = Interval(total // denominator, total - total // 7)
        oracle = solve(
            FlowShopProblem(instance),
            interval=interval,
            batched_bounds=False,
        )
        wave = solve(
            FlowShopProblem(instance),
            interval=interval,
            frontier="wave",
            pool_size=8,
        )
        _assert_same_resolution(oracle, wave)

    def test_occupancy_reported(self):
        """Wave runs fill pools far beyond what a thin DFS stack holds."""
        instance = random_instance(8, 4, seed=8)
        wave = solve(
            FlowShopProblem(instance), frontier="wave", pool_size=64
        )
        assert wave.pool_occupancy, "wave solve recorded no pool calls"
        assert max(wave.pool_occupancy) > 2
        dfs = solve(FlowShopProblem(instance), pool_size=64)
        assert sum(dfs.pool_occupancy.values()) >= 0  # present, may be thin

    def test_spills_counted(self):
        instance = random_instance(7, 3, seed=11)
        wave = solve(
            FlowShopProblem(instance),
            frontier="wave",
            pool_size=8,
            frontier_width=1,
        )
        oracle = solve(FlowShopProblem(instance), batched_bounds=False)
        _assert_same_resolution(oracle, wave)
        assert wave.frontier_spills > 0


# ----------------------------------------------------------------------
# Parameter surface: validation and the pool_scan_budget exposure.
# ----------------------------------------------------------------------


class TestParameterValidation:
    def test_frontier_choices_exported(self):
        assert FRONTIER_CHOICES == ("dfs", "wave")

    def test_unknown_frontier_rejected(self):
        problem = FlowShopProblem(random_instance(4, 2, seed=0))
        with pytest.raises(EngineError, match="frontier"):
            IntervalExplorer(problem, frontier="bfs")

    @pytest.mark.parametrize("width", (0, -1))
    def test_bad_frontier_width_rejected(self, width):
        problem = FlowShopProblem(random_instance(4, 2, seed=0))
        with pytest.raises(EngineError, match="frontier_width"):
            IntervalExplorer(problem, frontier_width=width)

    @pytest.mark.parametrize("budget", (0, -4))
    def test_bad_pool_scan_budget_rejected(self, budget):
        problem = FlowShopProblem(random_instance(4, 2, seed=0))
        with pytest.raises(EngineError, match="pool_scan_budget"):
            IntervalExplorer(problem, pool_scan_budget=budget)

    @pytest.mark.parametrize("budget", (1, 7, 1000))
    def test_pool_scan_budget_exact(self, budget):
        """Any scan budget changes only speed, never the resolution."""
        instance = random_instance(7, 4, seed=5)
        oracle = solve(FlowShopProblem(instance), batched_bounds=False)
        capped = solve(
            FlowShopProblem(instance),
            pool_size=16,
            pool_scan_budget=budget,
        )
        assert capped.cost == oracle.cost
        assert capped.solution == oracle.solution
        assert vars(capped.stats) == vars(oracle.stats)


class TestCliValidation:
    @pytest.mark.parametrize(
        "flag", ("--pool-size", "--frontier-width", "--pool-scan-budget")
    )
    @pytest.mark.parametrize("value", ("0", "-3"))
    def test_non_positive_rejected(self, capsys, flag, value):
        with pytest.raises(SystemExit) as exc:
            main(["solve", "--jobs", "5", flag, value])
        assert exc.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_non_integer_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["solve", "--jobs", "5", "--pool-size", "many"])
        assert exc.value.code == 2
        assert "invalid" in capsys.readouterr().err

    def test_wave_solve_via_cli(self, capsys):
        assert main(
            ["solve", "--jobs", "7", "--machines", "3", "--seed", "21",
             "--frontier", "wave", "--pool-size", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "optimal makespan: 582" in out
        assert "proof: True" in out


# ----------------------------------------------------------------------
# Fold/unfold: a mid-run wave frontier checkpoints as two integers.
# ----------------------------------------------------------------------


class TestWaveFoldRoundTrip:
    @given(
        st.integers(0, 2_000),
        st.sampled_from((1, 5, 17, 80)),
        st.sampled_from((4, 32768)),
    )
    @settings(max_examples=20, deadline=None)
    def test_fold_resume_completes_proof(self, seed, step_nodes, width):
        """Interrupt a wave run, fold, resume from the interval: the
        combined exploration still proves the oracle optimum.

        Resuming a wave frontier re-decomposes a few internal nodes
        (the covering interval spans pruned gaps) — redundant work,
        never lost work — so only the resolution is compared.
        """
        instance = random_instance(6, 3, seed=seed)
        oracle = solve(FlowShopProblem(instance), batched_bounds=False)

        explorer = IntervalExplorer(
            FlowShopProblem(instance),
            frontier="wave",
            pool_size=8,
            frontier_width=width,
        )
        # Run a few partial steps, folding after each to check the
        # interval stays a two-integer suffix of the unexplored space.
        for _ in range(3):
            report = explorer.step(max_nodes=step_nodes)
            if report.finished:
                break
            remaining = explorer.remaining_interval()
            assert remaining.begin <= remaining.end
            # Every stack entry's number lies inside the fold.
            for entry in explorer._stack:
                assert remaining.begin <= entry.number < remaining.end

        if not explorer.is_finished():
            remaining = explorer.remaining_interval()
            resumed = IntervalExplorer(
                FlowShopProblem(instance),
                interval=remaining,
                frontier="wave",
                pool_size=8,
                frontier_width=width,
                incumbent=explorer.incumbent,
            )
            resumed.run()
            final = resumed.incumbent
        else:
            final = explorer.incumbent

        assert final.cost == oracle.cost
        assert tuple(final.solution) == tuple(oracle.solution)

    def test_active_list_covers_wave_frontier(self):
        """In wave mode ``active_list()`` is the canonical unfold of the
        remaining interval — a covering list, since pruned runs leave
        gaps that break eq. 9 contiguity."""
        instance = random_instance(6, 3, seed=42)
        explorer = IntervalExplorer(
            FlowShopProblem(instance), frontier="wave", pool_size=4
        )
        explorer.step(max_nodes=30)
        assert not explorer.is_finished()
        active = explorer.active_list()
        expected = unfold(explorer.shape, explorer.remaining_interval())
        assert [n.number for n in active] == [n.number for n in expected]

    def test_resume_into_dfs_mode(self):
        """A folded wave interval is mode-agnostic: DFS resumes it."""
        instance = random_instance(6, 3, seed=9)
        oracle = solve(FlowShopProblem(instance), batched_bounds=False)
        explorer = IntervalExplorer(
            FlowShopProblem(instance), frontier="wave", pool_size=8
        )
        explorer.step(max_nodes=40)
        assert not explorer.is_finished()
        resumed = IntervalExplorer(
            FlowShopProblem(instance),
            interval=explorer.remaining_interval(),
            incumbent=explorer.incumbent,
        )
        resumed.run()
        assert resumed.incumbent.cost == oracle.cost

    def test_resumable_solver_wave_round_trip(self, tmp_path):
        """ResumableSolver checkpoints and resumes a wave-mode run."""
        from repro.core import ResumableSolver

        instance = random_instance(7, 3, seed=21)
        oracle = solve(FlowShopProblem(instance), batched_bounds=False)
        solver = ResumableSolver(
            FlowShopProblem(instance),
            tmp_path,
            frontier="wave",
            pool_size=8,
            checkpoint_nodes=50,
        )
        result = solver.run()
        assert result.cost == oracle.cost
        assert result.optimal
        # A second solver over the same directory resumes-and-agrees.
        again = ResumableSolver(
            FlowShopProblem(instance),
            tmp_path,
            frontier="wave",
            pool_size=8,
        )
        final = again.run()
        assert final.cost == oracle.cost

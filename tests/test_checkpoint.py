"""Tests for the two-file checkpoint store (paper §4.1)."""

import json
import math

import pytest

from repro.core import CheckpointStore, Incumbent, Interval, IntervalSet
from repro.exceptions import CheckpointError
from repro.grid.runtime import Coordinator
from repro.grid.runtime.protocol import Push, Request, Update


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "ckpt")


class TestIntervalsFile:
    def test_roundtrip(self, store):
        s = IntervalSet.initial(Interval(0, 1000))
        s.assign("w1")
        s.update("w1", Interval(123, 1000))
        s.assign("w2")
        store.save_intervals(s)
        restored = store.load_intervals()
        assert restored.intervals() == s.intervals()
        assert restored.size == s.size

    def test_missing_file_returns_none(self, store):
        assert store.load_intervals() is None

    def test_bigints_survive_json(self, store):
        big = math.factorial(50)
        s = IntervalSet.initial(Interval(big - 7, big))
        store.save_intervals(s)
        assert store.load_intervals().intervals() == [Interval(big - 7, big)]

    def test_threshold_passed_through(self, store):
        store.save_intervals(IntervalSet.initial(Interval(0, 10)))
        restored = store.load_intervals(duplication_threshold=42)
        assert restored.duplication_threshold == 42

    def test_corrupt_json_raises(self, store):
        store.directory.mkdir(parents=True)
        store.intervals_path.write_text("{ not json")
        with pytest.raises(CheckpointError):
            store.load_intervals()

    def test_wrong_version_raises(self, store):
        store.directory.mkdir(parents=True)
        store.intervals_path.write_text(json.dumps({"version": 99}))
        with pytest.raises(CheckpointError):
            store.load_intervals()

    def test_malformed_payload_raises(self, store):
        store.directory.mkdir(parents=True)
        store.intervals_path.write_text(
            json.dumps({"version": 1, "intervals": [["x", "y"]]})
        )
        with pytest.raises(CheckpointError):
            store.load_intervals()


class TestSolutionFile:
    def test_roundtrip(self, store):
        store.save_solution(Incumbent(3679.0, (14, 37, 3)))
        restored = store.load_solution()
        assert restored.cost == 3679.0
        assert restored.solution == (14, 37, 3)

    def test_missing_file_returns_none(self, store):
        assert store.load_solution() is None

    def test_no_solution_yet(self, store):
        store.save_solution(Incumbent())
        restored = store.load_solution()
        assert restored.cost == float("inf")
        assert restored.solution is None

    def test_integer_costs_preserved(self, store):
        store.save_solution(Incumbent(3679, (1, 2)))
        assert store.load_solution().cost == 3679


class TestCombined:
    def test_save_and_load_both(self, store):
        intervals = IntervalSet.initial(Interval(0, 720))
        incumbent = Incumbent(55.0, (2, 0, 1))
        store.save(intervals, incumbent)
        loaded_intervals, loaded_incumbent = store.load()
        assert loaded_intervals.size == 720
        assert loaded_incumbent.cost == 55.0

    def test_clear_removes_files(self, store):
        store.save(IntervalSet.initial(Interval(0, 10)), Incumbent(1.0, (0,)))
        store.clear()
        assert store.load() == (None, None)

    def test_clear_is_idempotent(self, store):
        store.clear()
        store.clear()

    def test_atomic_overwrite(self, store):
        # Saving twice keeps the latest consistent state.
        store.save_intervals(IntervalSet.initial(Interval(0, 10)))
        store.save_intervals(IntervalSet.initial(Interval(5, 10)))
        assert store.load_intervals().intervals() == [Interval(5, 10)]


class TestGenerations:
    """The shared generation stamp on paired saves."""

    def _gen(self, path):
        return json.loads(path.read_text())["generation"]

    def test_pair_saves_share_a_generation(self, store):
        store.save(IntervalSet.initial(Interval(0, 10)), Incumbent(1.0, (0,)))
        g1 = self._gen(store.intervals_path)
        assert g1 == self._gen(store.solution_path)
        store.save(IntervalSet.initial(Interval(2, 10)), Incumbent(1.0, (0,)))
        g2 = self._gen(store.intervals_path)
        assert g2 == self._gen(store.solution_path)
        assert g2 > g1

    def test_generation_resumes_past_on_disk_state(self, store, tmp_path):
        store.save(IntervalSet.initial(Interval(0, 10)), Incumbent(1.0, (0,)))
        g1 = self._gen(store.intervals_path)
        # A fresh store over the same directory (a recovered farmer)
        # must not reuse generations already spent.
        reopened = CheckpointStore(store.directory)
        reopened.save(IntervalSet.initial(Interval(3, 10)), Incumbent(1.0, (0,)))
        assert self._gen(reopened.intervals_path) > g1

    def test_mismatched_generations_refused(self, store):
        store.save(IntervalSet.initial(Interval(0, 10)), Incumbent(1.0, (0,)))
        # Simulate a crash between the two writes of a later save:
        # INTERVALS advanced to a new generation, SOLUTION did not.
        store.save_intervals(IntervalSet.initial(Interval(5, 10)), generation=99)
        with pytest.raises(CheckpointError, match="generation mismatch"):
            store.load()

    def test_unstamped_legacy_pair_still_loads(self, store):
        # Files written by the standalone savers carry no generation;
        # the pair check must not reject pre-generation checkpoints.
        store.save_intervals(IntervalSet.initial(Interval(0, 10)))
        store.save_solution(Incumbent(2.0, (1,)))
        intervals, incumbent = store.load()
        assert intervals.size == 10
        assert incumbent.cost == 2.0

    def test_partial_pair_refused_intervals_only(self, store):
        store.save_intervals(IntervalSet.initial(Interval(0, 10)))
        with pytest.raises(CheckpointError, match="partial checkpoint"):
            store.load()

    def test_partial_pair_refused_solution_only(self, store):
        store.save_solution(Incumbent(3.0, (0, 1)))
        with pytest.raises(CheckpointError, match="partial checkpoint"):
            store.load()


class TestCoordinatorRecover:
    """Recovery against damaged checkpoints, not just the happy path."""

    def _checkpointed(self, store):
        coord = Coordinator(Interval(0, 720), store=store, checkpoint_period=0.0)
        coord.handle(Request("w0"))
        coord.handle(Update("w0", (100, 720), nodes=5, consumed=100))
        coord.handle(Push("w0", 99.0, (0, 1)))
        assert coord.maybe_checkpoint(force=True)
        return coord

    def test_happy_path_still_works(self, store):
        self._checkpointed(store)
        recovered = Coordinator.recover(store, Interval(0, 720))
        assert recovered.intervals.size == 620
        assert recovered.solution.cost == 99.0

    def test_truncated_intervals_file_raises(self, store):
        self._checkpointed(store)
        text = store.intervals_path.read_text()
        store.intervals_path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError):
            Coordinator.recover(store, Interval(0, 720))

    def test_truncated_solution_file_raises(self, store):
        self._checkpointed(store)
        text = store.solution_path.read_text()
        store.solution_path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError):
            Coordinator.recover(store, Interval(0, 720))

    def test_corrupt_json_raises(self, store):
        self._checkpointed(store)
        store.intervals_path.write_text("{ not json at all")
        with pytest.raises(CheckpointError):
            Coordinator.recover(store, Interval(0, 720))

    def test_missing_intervals_file_raises(self, store):
        self._checkpointed(store)
        store.intervals_path.unlink()
        with pytest.raises(CheckpointError, match="partial checkpoint"):
            Coordinator.recover(store, Interval(0, 720))

    def test_missing_solution_file_raises(self, store):
        self._checkpointed(store)
        store.solution_path.unlink()
        with pytest.raises(CheckpointError, match="partial checkpoint"):
            Coordinator.recover(store, Interval(0, 720))

    def test_both_missing_starts_fresh(self, store):
        recovered = Coordinator.recover(store, Interval(0, 720))
        assert recovered.intervals.size == 720
        assert recovered.solution.cost == float("inf")

"""Tests for the two-file checkpoint store (paper §4.1)."""

import json
import math

import pytest

from repro.core import CheckpointStore, Incumbent, Interval, IntervalSet
from repro.exceptions import CheckpointError


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "ckpt")


class TestIntervalsFile:
    def test_roundtrip(self, store):
        s = IntervalSet.initial(Interval(0, 1000))
        s.assign("w1")
        s.update("w1", Interval(123, 1000))
        s.assign("w2")
        store.save_intervals(s)
        restored = store.load_intervals()
        assert restored.intervals() == s.intervals()
        assert restored.size == s.size

    def test_missing_file_returns_none(self, store):
        assert store.load_intervals() is None

    def test_bigints_survive_json(self, store):
        big = math.factorial(50)
        s = IntervalSet.initial(Interval(big - 7, big))
        store.save_intervals(s)
        assert store.load_intervals().intervals() == [Interval(big - 7, big)]

    def test_threshold_passed_through(self, store):
        store.save_intervals(IntervalSet.initial(Interval(0, 10)))
        restored = store.load_intervals(duplication_threshold=42)
        assert restored.duplication_threshold == 42

    def test_corrupt_json_raises(self, store):
        store.directory.mkdir(parents=True)
        store.intervals_path.write_text("{ not json")
        with pytest.raises(CheckpointError):
            store.load_intervals()

    def test_wrong_version_raises(self, store):
        store.directory.mkdir(parents=True)
        store.intervals_path.write_text(json.dumps({"version": 99}))
        with pytest.raises(CheckpointError):
            store.load_intervals()

    def test_malformed_payload_raises(self, store):
        store.directory.mkdir(parents=True)
        store.intervals_path.write_text(
            json.dumps({"version": 1, "intervals": [["x", "y"]]})
        )
        with pytest.raises(CheckpointError):
            store.load_intervals()


class TestSolutionFile:
    def test_roundtrip(self, store):
        store.save_solution(Incumbent(3679.0, (14, 37, 3)))
        restored = store.load_solution()
        assert restored.cost == 3679.0
        assert restored.solution == (14, 37, 3)

    def test_missing_file_returns_none(self, store):
        assert store.load_solution() is None

    def test_no_solution_yet(self, store):
        store.save_solution(Incumbent())
        restored = store.load_solution()
        assert restored.cost == float("inf")
        assert restored.solution is None

    def test_integer_costs_preserved(self, store):
        store.save_solution(Incumbent(3679, (1, 2)))
        assert store.load_solution().cost == 3679


class TestCombined:
    def test_save_and_load_both(self, store):
        intervals = IntervalSet.initial(Interval(0, 720))
        incumbent = Incumbent(55.0, (2, 0, 1))
        store.save(intervals, incumbent)
        loaded_intervals, loaded_incumbent = store.load()
        assert loaded_intervals.size == 720
        assert loaded_incumbent.cost == 55.0

    def test_clear_removes_files(self, store):
        store.save(IntervalSet.initial(Interval(0, 10)), Incumbent(1.0, (0,)))
        store.clear()
        assert store.load() == (None, None)

    def test_clear_is_idempotent(self, store):
        store.clear()
        store.clear()

    def test_atomic_overwrite(self, store):
        # Saving twice keeps the latest consistent state.
        store.save_intervals(IntervalSet.initial(Interval(0, 10)))
        store.save_intervals(IntervalSet.initial(Interval(5, 10)))
        assert store.load_intervals().intervals() == [Interval(5, 10)]

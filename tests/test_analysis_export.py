"""Tests for CSV export of regenerated figures/tables."""

from repro.analysis.export import (
    read_series_csv,
    write_series_csv,
    write_table2_csv,
)
from tests.test_analysis import sample_stats


class TestSeriesCsv:
    def test_roundtrip(self, tmp_path):
        series = [(0.0, 0), (1.5, 10), (86400.0, 328)]
        path = write_series_csv(tmp_path / "fig7.csv", series)
        assert read_series_csv(path) == series

    def test_creates_parent_dirs(self, tmp_path):
        path = write_series_csv(tmp_path / "a" / "b" / "fig7.csv", [(0.0, 1)])
        assert path.exists()

    def test_custom_header(self, tmp_path):
        path = write_series_csv(
            tmp_path / "s.csv", [(1.0, 2)], header=("t", "n")
        )
        assert path.read_text().splitlines()[0] == "t,n"


class TestTable2Csv:
    def test_contains_all_rows(self, tmp_path):
        path = write_table2_csv(tmp_path / "t2.csv", sample_stats())
        text = path.read_text()
        assert "Running wall clock time" in text
        assert "Redundant nodes" in text
        assert "best cost,3679.0" in text
        assert "optimum proved,True" in text
        assert len(text.splitlines()) == 13  # header + 10 rows + 2 extras

"""Tests of the real multiprocessing runtime.

These spawn actual OS processes, so instances are tiny and every run
has a hard deadline.
"""

import itertools

import pytest

from repro.core import Incumbent, Interval, solve
from repro.core.checkpoint import CheckpointStore
from repro.exceptions import RuntimeProtocolError
from repro.grid.runtime import (
    Coordinator,
    RuntimeConfig,
    flowshop_spec,
    solve_parallel,
    tsp_spec,
)
from repro.grid.runtime.protocol import (
    Ack,
    GrantWork,
    Push,
    Reconciled,
    Request,
    Terminate,
    Update,
)
from repro.problems.flowshop import FlowShopProblem, random_instance
from repro.problems.tsp import TSPProblem, random_tsp


class TestCoordinatorUnit:
    """Message-level tests: no processes involved."""

    def make(self, length=1000, **kw):
        return Coordinator(Interval(0, length), **kw)

    def test_first_request_grants_everything(self):
        coord = self.make()
        reply = coord.handle(Request("w0"))
        assert isinstance(reply, GrantWork)
        assert reply.interval == (0, 1000)

    def test_second_request_splits(self):
        coord = self.make()
        coord.handle(Request("w0"))
        reply = coord.handle(Request("w1"))
        assert isinstance(reply, GrantWork)
        assert reply.interval == (500, 1000)

    def test_update_then_empty_terminates(self):
        coord = self.make()
        coord.handle(Request("w0"))
        reply = coord.handle(Update("w0", (1000, 1000), nodes=10, consumed=1000))
        assert isinstance(reply, Reconciled)
        assert coord.terminated
        assert isinstance(coord.handle(Request("w1")), Terminate)

    def test_push_improves_solution(self):
        coord = self.make()
        ack = coord.handle(Push("w0", 42.0, (1, 2, 3)))
        assert isinstance(ack, Ack)
        assert ack.best_cost == 42.0
        worse = coord.handle(Push("w1", 50.0, (3, 2, 1)))
        assert worse.best_cost == 42.0
        assert coord.improvements == 1

    def test_release_worker_orphans_interval(self):
        coord = self.make()
        coord.handle(Request("w0"))
        coord.release_worker("w0")
        reply = coord.handle(Request("w1"))
        assert reply.interval == (0, 1000)

    def test_unknown_message_rejected(self):
        with pytest.raises(RuntimeProtocolError):
            self.make().handle("banana")

    def test_bye_is_acknowledged(self):
        from repro.grid.runtime.protocol import Bye

        coord = self.make()
        coord.handle(Push("w0", 42.0, (1, 2, 3)))
        ack = coord.handle(Bye("w0", {"nodes": 7}, seq=3))
        assert isinstance(ack, Ack)
        assert ack.best_cost == 42.0
        assert ack.seq == 3
        assert coord.byes["w0"] == {"nodes": 7}
        # a retried Bye (same seq) is answered from the cache
        again = coord.handle(Bye("w0", {"nodes": 7}, seq=3))
        assert isinstance(again, Ack)
        assert coord.duplicates_ignored == 1

    def test_checkpoint_and_recover(self, tmp_path):
        store = CheckpointStore(tmp_path)
        coord = Coordinator(Interval(0, 720), store=store, checkpoint_period=0.0)
        coord.handle(Request("w0"))
        coord.handle(Update("w0", (100, 720), nodes=5, consumed=100))
        coord.handle(Push("w0", 99.0, (0, 1)))
        assert coord.maybe_checkpoint(force=True)
        recovered = Coordinator.recover(store, Interval(0, 720))
        assert recovered.intervals.size == 620
        assert recovered.solution.cost == 99.0

    def test_recover_without_checkpoint_starts_fresh(self, tmp_path):
        store = CheckpointStore(tmp_path)
        coord = Coordinator.recover(store, Interval(0, 720))
        assert coord.intervals.size == 720

    def test_redundant_rate(self):
        coord = self.make(length=100)
        coord.handle(Request("w0"))
        coord.handle(Update("w0", (100, 100), nodes=1, consumed=130))
        assert coord.redundant_rate(100) == pytest.approx(30 / 130)


@pytest.fixture(scope="module")
def fs_instance():
    return random_instance(8, 4, seed=51)


@pytest.fixture(scope="module")
def fs_expected(fs_instance):
    return solve(FlowShopProblem(fs_instance)).cost


class TestParallelSolve:
    def test_matches_sequential(self, fs_instance, fs_expected):
        result = solve_parallel(
            flowshop_spec(fs_instance),
            RuntimeConfig(workers=3, update_nodes=500, deadline=120),
        )
        assert result.optimal
        assert result.cost == fs_expected
        assert sorted(result.solution) == list(range(8))

    def test_single_worker(self, fs_instance, fs_expected):
        result = solve_parallel(
            flowshop_spec(fs_instance),
            RuntimeConfig(workers=1, update_nodes=1000, deadline=120),
        )
        assert result.optimal
        assert result.cost == fs_expected

    def test_crash_recovery(self, fs_instance, fs_expected):
        result = solve_parallel(
            flowshop_spec(fs_instance),
            RuntimeConfig(
                workers=3,
                update_nodes=200,
                deadline=120,
                crash_workers={0: 2},  # worker 0 dies after 2 updates
            ),
        )
        assert result.optimal
        assert result.cost == fs_expected
        assert "worker-0" in result.crashed_workers

    def test_initial_upper_bound_respected(self, fs_instance, fs_expected):
        result = solve_parallel(
            flowshop_spec(fs_instance),
            RuntimeConfig(
                workers=2,
                update_nodes=500,
                deadline=120,
                initial_upper_bound=fs_expected,
                initial_solution=None,
            ),
        )
        assert result.optimal
        assert result.cost == fs_expected

    def test_checkpoints_written(self, fs_instance, tmp_path):
        result = solve_parallel(
            flowshop_spec(fs_instance),
            RuntimeConfig(
                workers=2,
                update_nodes=500,
                deadline=120,
                checkpoint_dir=tmp_path,
                checkpoint_period=0.0,
            ),
        )
        assert result.optimal
        store = CheckpointStore(tmp_path)
        intervals, incumbent = store.load()
        assert intervals is not None and intervals.is_empty()
        assert incumbent.cost == result.cost

    def test_tsp_spec_roundtrip(self):
        inst = random_tsp(7, seed=5)
        expected = solve(TSPProblem(inst)).cost
        result = solve_parallel(
            tsp_spec(inst), RuntimeConfig(workers=2, update_nodes=500, deadline=120)
        )
        assert result.optimal
        assert result.cost == expected

    def test_worker_stats_collected(self, fs_instance):
        result = solve_parallel(
            flowshop_spec(fs_instance),
            RuntimeConfig(workers=2, update_nodes=500, deadline=120),
        )
        assert set(result.worker_stats) == {"worker-0", "worker-1"}
        assert result.nodes_explored > 0
        assert result.checkpoint_operations > 0

    def test_explore_vs_rpc_wait_breakdown_surfaced(self, fs_instance):
        result = solve_parallel(
            flowshop_spec(fs_instance),
            RuntimeConfig(workers=2, update_nodes=500, deadline=120),
        )
        for stats in result.worker_stats.values():
            assert stats["explore_seconds"] > 0.0
            assert stats["rpc_wait_seconds"] >= 0.0
        assert result.explore_seconds == pytest.approx(
            sum(s["explore_seconds"] for s in result.worker_stats.values())
        )
        assert result.rpc_wait_seconds == pytest.approx(
            sum(s["rpc_wait_seconds"] for s in result.worker_stats.values())
        )

    def test_legacy_coordination_mode_matches_sequential(
        self, fs_instance, fs_expected
    ):
        # Fixed slices, synchronous updates, no shared incumbent — the
        # pre-PR 3 coordination shape must stay available and correct.
        result = solve_parallel(
            flowshop_spec(fs_instance),
            RuntimeConfig(
                workers=2,
                update_nodes=500,
                update_period=None,
                pipeline_updates=False,
                shared_incumbent=False,
                deadline=120,
            ),
        )
        assert result.optimal
        assert result.cost == fs_expected

    def test_pipelined_adaptive_shared_matches_sequential(
        self, fs_instance, fs_expected
    ):
        result = solve_parallel(
            flowshop_spec(fs_instance),
            RuntimeConfig(
                workers=3,
                update_nodes=100,
                update_period=0.05,
                pipeline_updates=True,
                shared_incumbent=True,
                bound_poll_nodes=32,
                deadline=120,
            ),
        )
        assert result.optimal
        assert result.cost == fs_expected

    def test_zero_workers_rejected(self, fs_instance):
        with pytest.raises(RuntimeProtocolError):
            solve_parallel(flowshop_spec(fs_instance), RuntimeConfig(workers=0))

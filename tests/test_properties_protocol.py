"""Property-based tests of the coordinator protocol and flow-shop kernels.

The INTERVALS invariants under arbitrary operation sequences (no work
lost, sizes monotone) and the algorithmic substrates (Johnson
optimality, makespan laws, bound admissibility) quantified over random
inputs.
"""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Interval, IntervalSet
from repro.problems.flowshop import (
    BoundData,
    FlowShopInstance,
    completion_front,
    johnson_makespan,
    makespan,
    neh,
    partial_makespan,
)

# ----------------------------------------------------------------------
# INTERVALS invariants under random operation sequences
# ----------------------------------------------------------------------
ops = st.lists(
    st.one_of(
        st.tuples(st.just("assign"), st.integers(0, 4)),
        st.tuples(st.just("advance"), st.integers(0, 4), st.integers(0, 100)),
        st.tuples(st.just("release"), st.integers(0, 4)),
    ),
    max_size=30,
)


class TestIntervalSetProperties:
    @given(ops, st.integers(0, 50))
    @settings(max_examples=60)
    def test_no_work_lost_and_size_monotone(self, operations, threshold):
        total = 1000
        s = IntervalSet.initial(Interval(0, total), threshold)
        consumed = {f"w{k}": None for k in range(5)}  # worker -> interval
        sizes = [s.size]

        for op in operations:
            worker = f"w{op[1]}"
            if op[0] == "assign":
                if consumed[worker] is None:
                    a = s.assign(worker)
                    if a is not None:
                        consumed[worker] = a.interval
            elif op[0] == "advance":
                iv = consumed[worker]
                if iv is not None and not iv.is_empty():
                    step = op[2] % (iv.length + 1)
                    reported = Interval(iv.begin + step, iv.end)
                    merged = s.update(worker, reported)
                    consumed[worker] = None if merged.is_empty() else merged
            elif op[0] == "release":
                s.release(worker)
                consumed[worker] = None
            sizes.append(s.size)

        # size never grows
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        # every unexplored number is still covered by INTERVALS: the
        # union of interval lengths must be at least the coordinator
        # size (duplicates collapse), and the coordinator never claims
        # more work than the root range
        assert s.covered_union_length() <= total
        assert s.size >= s.covered_union_length()

    @given(st.integers(1, 6), st.integers(0, 200))
    @settings(max_examples=40)
    def test_full_consumption_terminates(self, workers, threshold):
        total = 500
        s = IntervalSet.initial(Interval(0, total), threshold)
        # round-robin: each worker takes work and finishes it entirely
        guard = 0
        while not s.is_empty():
            guard += 1
            assert guard < 200, "termination must be reached"
            for k in range(workers):
                a = s.assign(f"w{k}")
                if a is None:
                    break
                s.update(f"w{k}", Interval(a.interval.end, a.interval.end))
        assert s.size == 0


# ----------------------------------------------------------------------
# flow-shop kernels
# ----------------------------------------------------------------------
@st.composite
def instances(draw, max_jobs=6, max_machines=4):
    jobs = draw(st.integers(2, max_jobs))
    machines = draw(st.integers(1, max_machines))
    times = draw(
        st.lists(
            st.lists(st.integers(1, 50), min_size=machines, max_size=machines),
            min_size=jobs,
            max_size=jobs,
        )
    )
    return FlowShopInstance(times)


@st.composite
def instance_and_permutation(draw):
    inst = draw(instances())
    perm = draw(st.permutations(range(inst.jobs)))
    return inst, list(perm)


class TestMakespanProperties:
    @given(instance_and_permutation())
    def test_makespan_at_least_every_machine_load(self, case):
        inst, perm = case
        value = makespan(inst, perm)
        assert value >= int(inst.machine_totals().max())
        assert value >= int(inst.job_totals().max())

    @given(instance_and_permutation())
    def test_single_machine_makespan_is_total(self, case):
        inst, perm = case
        one = FlowShopInstance(inst.processing_times[:, :1])
        assert makespan(one, perm) == int(one.processing_times.sum())

    @given(instance_and_permutation())
    def test_prefix_monotonicity(self, case):
        inst, perm = case
        values = [partial_makespan(inst, perm[:k]) for k in range(len(perm) + 1)]
        assert values == sorted(values)

    @given(instance_and_permutation())
    def test_front_is_nondecreasing_across_machines(self, case):
        inst, perm = case
        front = completion_front(inst, perm)
        assert all(front[j] <= front[j + 1] for j in range(len(front) - 1))

    @given(instances())
    def test_neh_within_search_space(self, inst):
        seq, value = neh(inst)
        assert sorted(seq) == list(range(inst.jobs))
        assert value == makespan(inst, seq)


class TestJohnsonProperties:
    @given(
        st.lists(st.integers(1, 30), min_size=2, max_size=6),
        st.data(),
    )
    def test_johnson_beats_every_permutation(self, a, data):
        b = data.draw(
            st.lists(st.integers(1, 30), min_size=len(a), max_size=len(a))
        )
        best, order = johnson_makespan(a, b)
        inst = FlowShopInstance(list(zip(a, b)))
        for perm in itertools.permutations(range(len(a))):
            assert best <= makespan(inst, list(perm))


class TestBoundProperties:
    @given(instances(max_jobs=5, max_machines=3), st.data())
    @settings(max_examples=40, deadline=None)
    def test_bounds_admissible_at_random_nodes(self, inst, data):
        data_bound = BoundData(inst, pair_strategy="all")
        prefix_len = data.draw(st.integers(0, inst.jobs - 1))
        prefix = data.draw(
            st.permutations(range(inst.jobs))
        )[:prefix_len]
        rest = [j for j in range(inst.jobs) if j not in prefix]
        best_completion = min(
            makespan(inst, list(prefix) + list(tail))
            for tail in itertools.permutations(rest)
        )
        front = completion_front(inst, prefix)
        remaining = np.array(rest, dtype=np.intp)
        assert data_bound.one_machine(front, remaining) <= best_completion
        assert data_bound.two_machine(front, remaining) <= best_completion
        assert data_bound.combined(front, remaining) <= best_completion

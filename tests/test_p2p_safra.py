"""Unit tests of the Safra termination machinery inside P2P peers.

These drive small hand-built peer rings directly (no workload beyond a
trivial synthetic one) to pin the EWD 998 accounting rules: counters
track every basic message, receipt blackens, tokens are excluded, and
a probe only concludes on a white zero-sum round with peer 0 passive.
"""

import pytest

from repro.core import Interval
from repro.grid.p2p import P2PConfig, P2PSimulation
from repro.grid.p2p.peer import Gossip, SafraToken, StealReply, StealRequest
from repro.grid.simulator import SyntheticWorkload, small_platform


def tiny_config(peers=3, leaves=10**6, **overrides):
    workload = SyntheticWorkload(
        leaves,
        seed=1,
        mean_leaf_rate=leaves / 60.0,
        irregularity=0.5,
        segments=16,
        nodes_per_second=100.0,
        optimum=10.0,
        initial_gap=1.0,
        improvement_count=3,
    )
    defaults = dict(
        platform=small_platform(workers=peers, clusters=1),
        workload=workload,
        horizon=30 * 86400.0,
        seed=2,
        update_period=5.0,
        steal_backoff=1.0,
    )
    defaults.update(overrides)
    return P2PConfig(**defaults)


class TestMessageAccounting:
    def test_counters_zero_after_termination(self):
        sim = P2PSimulation(tiny_config())
        report = sim.run()
        assert report.finished
        # all basic messages delivered: global count sums to zero
        assert sum(p.safra_count for p in sim.peers) == 0

    def test_receipt_blackens(self):
        sim = P2PSimulation(tiny_config(peers=2))
        peer = sim.peers[1]
        assert not peer.safra_black
        peer._receive(0, StealRequest(0, 1.0), "on_steal_request")
        assert peer.safra_black
        assert peer.safra_count < 0 or peer.safra_count == 0
        # (the reply it sent adds +1 back: net 0 is legal)

    def test_token_receipt_does_not_blacken(self):
        sim = P2PSimulation(tiny_config(peers=2))
        peer = sim.peers[1]
        peer._receive(0, SafraToken(count=0, black=False), "on_token")
        assert not peer.safra_black

    def test_wire_sizes_positive(self):
        assert StealRequest(0, 1.0).wire_size() > 0
        assert StealReply(Interval(0, 5), 1.0).wire_size() > 0
        assert StealReply(None, 1.0).wire_size() > 0
        assert Gossip(1.0, (1, 2), 3).wire_size() > 0
        assert SafraToken().wire_size() > 0

    def test_empty_reply_smaller_than_grant(self):
        grant = StealReply(Interval(0, 10), 1.0)
        empty = StealReply(None, 1.0)
        assert empty.wire_size() < grant.wire_size()


class TestTerminationSafety:
    def test_never_concludes_with_unexplored_work(self):
        # Run to completion; at the moment of termination every peer's
        # unit must be finished (no unit dropped with work left).
        sim = P2PSimulation(tiny_config(peers=4))
        report = sim.run()
        assert report.finished
        for peer in sim.peers:
            assert peer.unit is None or peer.unit.is_finished()
        assert sim.metrics.leaves_consumed >= sim.config.workload.total_leaves()

    def test_conclusion_requires_peer0_passive(self):
        sim = P2PSimulation(tiny_config(peers=2))
        peer0 = sim.peers[0]
        peer0.exploring = True  # simulate mid-slice activity
        peer0.holds_token = True
        peer0._pending_token = SafraToken(count=0, black=False)
        peer0._release_token_if_held()
        assert not sim._terminated  # held, not concluded

    def test_black_token_never_concludes(self):
        sim = P2PSimulation(tiny_config(peers=2))
        peer0 = sim.peers[0]
        peer0.unit = None
        peer0.exploring = False
        peer0.holds_token = True
        peer0._pending_token = SafraToken(count=0, black=True)
        peer0._release_token_if_held()
        assert not sim._terminated

    def test_nonzero_count_never_concludes(self):
        sim = P2PSimulation(tiny_config(peers=2))
        peer0 = sim.peers[0]
        peer0.unit = None
        peer0.exploring = False
        peer0.holds_token = True
        peer0._pending_token = SafraToken(count=1, black=False)
        peer0._release_token_if_held()
        assert not sim._terminated

    def test_white_zero_round_concludes(self):
        sim = P2PSimulation(tiny_config(peers=2))
        peer0 = sim.peers[0]
        peer0.unit = None
        peer0.exploring = False
        peer0.safra_black = False
        peer0.safra_count = 0
        peer0.holds_token = True
        peer0._pending_token = SafraToken(count=0, black=False)
        peer0._release_token_if_held()
        assert sim._terminated


class TestBackoff:
    def test_backoff_grows_then_resets(self):
        sim = P2PSimulation(tiny_config(peers=2, steal_backoff=1.0))
        peer = sim.peers[1]
        start = peer._backoff
        peer.on_steal_reply(0, StealReply(None, 100.0))
        grown = peer._backoff
        assert grown > start
        peer.on_steal_reply(0, StealReply(Interval(0, 100), 100.0))
        assert peer._backoff == start  # reset on success

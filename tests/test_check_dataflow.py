"""The dataflow layer under ``repro check``: symbols, taint, constants.

The checker's rules are only as good as the analysis they stand on, so
the layer is tested on its own terms here: symbol tables record every
binding form, ``scope_walk`` respects scope boundaries, the taint
fixpoint follows values through assignments / loops / calls, and the
constant folder resolves the version spellings RC12 depends on.  A
hypothesis suite then pins the upgrade contract: the dataflow-powered
RC01 flags a *superset* of what PR 5's identifier heuristic flagged,
on every program the strategy can generate.
"""

import ast
import textwrap
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tools.check.core import FileContext
from repro.tools.check.dataflow import (
    DEFAULT_SANITIZERS,
    ScopeTaint,
    SymbolTable,
    TaintPolicy,
    is_unresolved,
    module_constants,
    resolve_constant,
    scope_walk,
    taint_scopes,
)
from repro.tools.check.rules import IntExactIntervals


def parse(source):
    return ast.parse(textwrap.dedent(source))


def scope_for(tree, name, policy):
    """The ScopeTaint of the function called ``name`` (or the module)."""
    for scope in taint_scopes(tree, policy):
        if name is None and isinstance(scope.node, ast.Module):
            return scope
        if getattr(scope.node, "name", None) == name:
            return scope
    raise AssertionError(f"no scope named {name!r}")


INTERVAL_POLICY = TaintPolicy(seeds=frozenset({"interval", "begin", "end"}))


# ----------------------------------------------------------------------
# SymbolTable


def test_symbol_table_records_every_binding_form():
    tree = parse(
        """\
        def f(a, *rest, flag=None, **extra):
            b = a + 1
            b += 1
            for item in rest:
                pass
            with open(a) as fh:
                pass
            if (c := a):
                pass
            squares = [n * n for n in rest]
        """
    )
    table = SymbolTable(tree.body[0])
    kinds = {name: {site.kind for site in sites} for name, sites in table.defs.items()}
    assert kinds["a"] == {"arg"}
    assert kinds["rest"] == {"arg"}
    assert kinds["flag"] == {"arg"}
    assert kinds["extra"] == {"arg"}
    assert kinds["b"] == {"assign", "aug"}
    assert kinds["item"] == {"for"}
    assert kinds["fh"] == {"with"}
    assert kinds["c"] == {"walrus"}
    assert kinds["n"] == {"comprehension"}


def test_symbol_table_tuple_unpacking_binds_each_name():
    tree = parse("def f(pair):\n    left, right = pair\n")
    table = SymbolTable(tree.body[0])
    assert set(table.defs) == {"pair", "left", "right"}
    assert table.defs["left"][0].value is table.defs["right"][0].value


def test_def_use_chains_pair_uses_with_reaching_defs():
    tree = parse(
        """\
        def f(a):
            b = a
            b = b + 1
            return b
        """
    )
    chains = SymbolTable(tree.body[0]).def_use()
    # Three loads of names; b has two defs, each use of b sees both
    # (the analysis is flow-insensitive by design).
    (use_a,) = chains["a"]
    assert len(use_a[1]) == 1 and use_a[1][0].kind == "arg"
    for _use, reaching in chains["b"]:
        assert len(reaching) == 2


# ----------------------------------------------------------------------
# scope_walk


def test_scope_walk_does_not_enter_nested_function_bodies():
    tree = parse(
        """\
        def outer():
            a = 1

            def inner():
                hidden = 2

            return a
        """
    )
    names = {
        node.id
        for node in scope_walk(tree.body[0])
        if isinstance(node, ast.Name)
    }
    assert "a" in names
    assert "hidden" not in names


def test_scope_walk_yields_nested_def_headers_in_the_outer_scope():
    tree = parse(
        """\
        def outer(deco, outer_default):
            @deco
            def inner(x=outer_default):
                body_name = x
        """
    )
    outer_names = {
        node.id
        for node in scope_walk(tree.body[0])
        if isinstance(node, ast.Name)
    }
    # Decorators and defaults evaluate when `def inner` executes, i.e.
    # in outer's scope; inner's body does not.
    assert {"deco", "outer_default"} <= outer_names
    assert "body_name" not in outer_names


def test_scope_walk_yields_each_node_once():
    tree = parse(
        """\
        def outer():
            @staticmethod
            def inner(x=1):
                return x
            return inner
        """
    )
    # Only positioned nodes: expression-context objects (Load/Store)
    # are interned singletons in CPython and legitimately recur.
    seen = [n for n in scope_walk(tree.body[0]) if hasattr(n, "lineno")]
    assert len(seen) == len({id(node) for node in seen})


def test_scope_walk_treats_class_bodies_as_their_own_scope():
    tree = parse(
        """\
        @register
        class C(Base):
            attr = marker
        """
    )
    module_names = {
        node.id for node in scope_walk(tree) if isinstance(node, ast.Name)
    }
    # The class *header* (decorators, bases) evaluates in the module;
    # the body belongs to the class scope.
    assert {"register", "Base"} <= module_names
    assert "marker" not in module_names
    class_names = {
        node.id
        for node in scope_walk(tree.body[0])
        if isinstance(node, ast.Name)
    }
    assert "marker" in class_names


# ----------------------------------------------------------------------
# Taint fixpoint


def test_taint_survives_assignment_chains():
    tree = parse(
        """\
        def f(interval):
            a = interval[0]
            b = a + 1
            c = b
            clean = 7
        """
    )
    scope = scope_for(tree, "f", INTERVAL_POLICY)
    assert {"a", "b", "c"} <= scope.names
    assert "clean" not in scope.names


def test_taint_flows_backwards_through_loops_to_a_fixpoint():
    # `total` is only tainted via an assignment that *precedes* the
    # tainted binding textually; the fixpoint still finds it.
    tree = parse(
        """\
        def f(items):
            total = acc
            for acc in items:
                acc = begin + acc
        """
    )
    scope = scope_for(tree, "f", INTERVAL_POLICY)
    assert "acc" in scope.names
    assert "total" in scope.names


def test_sanitizers_stop_taint():
    tree = parse(
        """\
        def f(interval):
            size = len(interval)
            label = str(interval)
            ranks = range(len(interval))
            derived = interval.split(2)
        """
    )
    scope = scope_for(tree, "f", INTERVAL_POLICY)
    assert {"size", "label", "ranks"}.isdisjoint(scope.names)
    # A method *on* a tainted receiver returns tainted data.
    assert "derived" in scope.names


def test_enumerate_taints_elements_not_ranks():
    tree = parse(
        """\
        def f(intervals):
            for pair in enumerate(intervals):
                pass
            for plain in enumerate(range(10)):
                pass
        """
    )
    policy = TaintPolicy(seeds=frozenset({"intervals"}))
    scope = scope_for(tree, "f", policy)
    assert "pair" in scope.names
    assert "plain" not in scope.names


def test_nested_function_inherits_enclosing_taint():
    tree = parse(
        """\
        def outer(interval):
            span = interval[1] - interval[0]

            def inner():
                return span

            return inner
        """
    )
    inner = scope_for(tree, "inner", INTERVAL_POLICY)
    assert inner.tainted(ast.parse("span", mode="eval").body)


def test_class_body_names_do_not_leak_into_methods():
    tree = parse(
        """\
        class C:
            shadow = interval

            def method(self):
                return shadow
        """
    )
    method = scope_for(tree, "method", INTERVAL_POLICY)
    # `shadow` in the method is a (broken) global lookup, not the class
    # attribute; the class body must not taint it.
    assert not method.tainted(ast.parse("shadow", mode="eval").body)


def test_tainted_evaluates_compound_expressions():
    tree = parse("def f(begin, cost):\n    pass\n")
    scope = scope_for(tree, "f", INTERVAL_POLICY)

    def expr(text):
        return ast.parse(text, mode="eval").body

    assert scope.tainted(expr("begin + 1"))
    assert scope.tainted(expr("-begin"))
    assert scope.tainted(expr("obj.interval"))
    assert scope.tainted(expr("(cost, begin)"))
    assert not scope.tainted(expr("cost * 2"))
    assert not scope.tainted(expr("begin < cost"))  # booleans are clean
    assert not scope.tainted(expr("len(begin)"))


def test_seed_predicate_extends_the_seed_set():
    policy = TaintPolicy(
        seed_predicate=lambda name: "lock" in name.split("_"),
        sanitizers=frozenset(),
    )
    tree = parse(
        """\
        def f(registry):
            guard = registry.state_lock
            clock = 12
        """
    )
    scope = scope_for(tree, "f", policy)
    assert "guard" in scope.names
    assert "clock" not in scope.names  # 'clock' is not '*_lock'


# ----------------------------------------------------------------------
# Constant folding (what RC12 leans on)


def test_module_constants_resolve_literals_references_and_arithmetic():
    tree = parse(
        """\
        BASE = 1
        WIRE_VERSION = BASE + 1
        NAME = "wire"
        NEGATIVE: int = -3
        SCALED = BASE * 4
        UNKNOWN = read_config()
        """
    )
    constants = module_constants(tree)
    assert constants["BASE"] == 1
    assert constants["WIRE_VERSION"] == 2
    assert constants["NAME"] == "wire"
    assert constants["NEGATIVE"] == -3
    assert constants["SCALED"] == 4
    assert "UNKNOWN" not in constants


def test_resolve_constant_reports_unresolved_not_none():
    expr = ast.parse("MISSING + 1", mode="eval").body
    value = resolve_constant(expr, {})
    assert is_unresolved(value)
    assert not is_unresolved(resolve_constant(ast.parse("0", mode="eval").body, {}))


# ----------------------------------------------------------------------
# The RC01 dataflow upgrade, exactly as the rule consumes it


def rc01_lines(rel, source):
    tree = ast.parse(textwrap.dedent(source))
    ctx = FileContext(Path(rel), rel, textwrap.dedent(source), tree)
    return sorted(v.line for v in IntExactIntervals().check(ctx))


def test_rc01_catches_division_through_a_clean_named_alias():
    # The motivating gap: no interval-ish identifier appears in the
    # flagged expression itself.
    assert rc01_lines(
        "repro/grid/runtime/balance.py",
        """\
        def halve(interval):
            b = interval[0]
            return b / 2
        """,
    ) == [3]


def test_rc01_alias_chain_and_augmented_division():
    assert rc01_lines(
        "repro/grid/runtime/balance.py",
        """\
        def shrink(begin):
            a = begin
            b = a
            b /= 3
            return b
        """,
    ) == [4]


def test_rc01_sanitized_alias_stays_clean():
    assert rc01_lines(
        "repro/grid/runtime/balance.py",
        """\
        def density(interval, elapsed):
            size = len(interval)
            return size / elapsed
        """,
    ) == []


def test_rc01_float_cast_of_tainted_alias():
    assert rc01_lines(
        "repro/grid/runtime/balance.py",
        """\
        def approx(interval):
            span = interval.end - interval.begin
            return float(span)
        """,
    ) == [3]


def test_rc01_float_literal_mixed_with_tainted_alias():
    assert rc01_lines(
        "repro/grid/runtime/balance.py",
        """\
        def overloaded(interval):
            w = interval.end
            return w > 0.5
        """,
    ) == [3]


# ----------------------------------------------------------------------
# Hypothesis: the dataflow rule is a superset of the lexical rule


def _identifiers(node):
    out = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
    return out


def _is_float_constant(node):
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def lexical_rc01_lines(rel, source):
    """PR 5's identifier-name heuristic, vendored as the reference.

    This is the *old* RC01, reimplemented independently of the live
    rule so the superset property is tested against a fixed point of
    reference rather than against whatever ``_lexical`` evolves into.
    """
    tainted = IntExactIntervals.TAINTED
    exact = any(
        rel.endswith(suffix.replace("repro/", ""))
        for suffix in IntExactIntervals.exact_scope
    ) or rel in IntExactIntervals.exact_scope
    lines = []
    for node in ast.walk(ast.parse(textwrap.dedent(source))):
        if isinstance(node, (ast.BinOp, ast.AugAssign)) and isinstance(
            node.op, ast.Div
        ):
            if exact or _identifiers(node) & tainted:
                lines.append(node.lineno)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            if exact or any(_identifiers(a) & tainted for a in node.args):
                lines.append(node.lineno)
        elif exact and _is_float_constant(node):
            lines.append(node.lineno)
        elif not exact and isinstance(node, (ast.BinOp, ast.Compare)):
            operands = (
                [node.left, node.right]
                if isinstance(node, ast.BinOp)
                else [node.left, *node.comparators]
            )
            floats = [op for op in operands if _is_float_constant(op)]
            others = [op for op in operands if not _is_float_constant(op)]
            if floats and any(_identifiers(op) & tainted for op in others):
                lines.append(floats[0].lineno)
    return sorted(lines)


_NAMES = st.sampled_from(
    ["interval", "begin", "end", "weight", "leaves", "cost", "elapsed", "x", "acc"]
)
_RELS = st.sampled_from(
    [
        "repro/core/tree.py",
        "repro/core/interval.py",
        "repro/grid/runtime/balance.py",
        "repro/grid/simulator/metrics.py",
    ]
)
_STMTS = st.sampled_from(
    [
        "{a} = {b} + {c}",
        "{a} = {b}[0]",
        "{a} = len({b})",
        "{a} = {b} / 2",
        "{a} = float({b})",
        "{a} /= {b}",
        "{a} = {b} > 0.5",
        "{a} = obj.{b} - {c}",
        "for {a} in {b}:\n    {c} = {a}",
    ]
)


@st.composite
def programs(draw):
    body = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        template = draw(_STMTS)
        body.append(
            template.format(a=draw(_NAMES), b=draw(_NAMES), c=draw(_NAMES))
        )
    params = ", ".join(sorted({draw(_NAMES), draw(_NAMES)}))
    lines = "\n".join(body)
    return f"def f({params}):\n" + textwrap.indent(lines, "    ")


@settings(max_examples=120, deadline=None)
@given(rel=_RELS, source=programs())
def test_dataflow_rc01_flags_a_superset_of_the_lexical_rule(rel, source):
    old = lexical_rc01_lines(rel, source)
    new = rc01_lines(rel, source)
    assert set(old) <= set(new), (
        f"dataflow RC01 lost a lexical finding in:\n{source}\n"
        f"old={old} new={new}"
    )

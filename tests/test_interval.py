"""Unit tests for the Interval value type (work units, §3 and eq. 14)."""

import pytest

from repro.core import Interval
from repro.exceptions import IntervalError


class TestBasics:
    def test_length(self):
        assert Interval(3, 10).length == 7

    def test_empty_when_begin_equals_end(self):
        assert Interval(5, 5).is_empty()

    def test_empty_when_begin_exceeds_end(self):
        # "An interval is empty when its beginning is higher than its end."
        assert Interval(7, 5).is_empty()
        assert Interval(7, 5).length == 0

    def test_membership(self):
        iv = Interval(2, 5)
        assert 2 in iv
        assert 4 in iv
        assert 5 not in iv
        assert 1 not in iv

    def test_non_int_bounds_rejected(self):
        with pytest.raises(IntervalError):
            Interval(0.5, 2)  # type: ignore[arg-type]

    def test_bigint_support(self):
        big = 10**64
        iv = Interval(big, big + 3)
        assert iv.length == 3
        assert big + 2 in iv


class TestIntersection:
    def test_eq14_overlap(self):
        # [A,B) ∩ [A',B') = [max(A,A'), min(B,B'))
        assert Interval(0, 10).intersect(Interval(4, 20)) == Interval(4, 10)

    def test_eq14_disjoint_yields_empty(self):
        assert Interval(0, 5).intersect(Interval(7, 9)).is_empty()

    def test_eq14_worker_and_balancer_scenario(self):
        # Worker advanced A to 6 while the balancer cut B' to 8.
        worker_view = Interval(6, 12)
        coordinator_copy = Interval(0, 8)
        assert worker_view.intersect(coordinator_copy) == Interval(6, 8)

    def test_intersection_commutative(self):
        a, b = Interval(2, 9), Interval(5, 14)
        assert a.intersect(b) == b.intersect(a)

    def test_intersection_with_self_is_identity(self):
        iv = Interval(3, 8)
        assert iv.intersect(iv) == iv


class TestContainmentAndAdjacency:
    def test_contains_interval(self):
        assert Interval(0, 10).contains_interval(Interval(2, 5))
        assert not Interval(0, 10).contains_interval(Interval(5, 11))

    def test_empty_is_subset_of_everything(self):
        assert Interval(3, 4).contains_interval(Interval(9, 9))

    def test_overlaps(self):
        assert Interval(0, 5).overlaps(Interval(4, 9))
        assert not Interval(0, 5).overlaps(Interval(5, 9))  # half-open

    def test_adjacency(self):
        assert Interval(0, 4).is_adjacent_left_of(Interval(4, 9))
        assert not Interval(0, 4).is_adjacent_left_of(Interval(5, 9))


class TestSplit:
    def test_split_at_interior_point(self):
        left, right = Interval(0, 10).split_at(4)
        assert left == Interval(0, 4)
        assert right == Interval(4, 10)

    def test_split_at_begin_gives_all_to_requester(self):
        # The paper's virtual null-power holder: C == A.
        left, right = Interval(3, 9).split_at(3)
        assert left.is_empty()
        assert right == Interval(3, 9)

    def test_split_point_clamped(self):
        left, right = Interval(3, 9).split_at(100)
        assert left == Interval(3, 9)
        assert right.is_empty()
        left, right = Interval(3, 9).split_at(-5)
        assert left.is_empty()
        assert right == Interval(3, 9)

    def test_split_preserves_total_length(self):
        iv = Interval(5, 17)
        for point in range(3, 20):
            left, right = iv.split_at(point)
            assert left.length + right.length == iv.length


class TestMonotoneUpdates:
    def test_advance_to(self):
        assert Interval(2, 9).advance_to(5) == Interval(5, 9)

    def test_advance_backwards_rejected(self):
        with pytest.raises(IntervalError):
            Interval(4, 9).advance_to(3)

    def test_restrict_end(self):
        assert Interval(2, 9).restrict_end(6) == Interval(2, 6)

    def test_restrict_end_forwards_rejected(self):
        with pytest.raises(IntervalError):
            Interval(2, 9).restrict_end(10)

    def test_advance_past_end_yields_empty(self):
        assert Interval(2, 9).advance_to(9).is_empty()


class TestUnion:
    def test_union_contiguous(self):
        assert Interval(0, 4).union_contiguous(Interval(4, 9)) == Interval(0, 9)

    def test_union_overlapping(self):
        assert Interval(0, 6).union_contiguous(Interval(4, 9)) == Interval(0, 9)

    def test_union_with_gap_rejected(self):
        with pytest.raises(IntervalError):
            Interval(0, 3).union_contiguous(Interval(5, 9))

    def test_union_with_empty_is_identity(self):
        iv = Interval(2, 7)
        assert iv.union_contiguous(Interval(0, 0)) == iv
        assert Interval(9, 9).union_contiguous(iv) == iv


class TestSerialisation:
    def test_tuple_roundtrip(self):
        iv = Interval(12, 99)
        assert Interval.from_tuple(iv.as_tuple()) == iv

    def test_iteration(self):
        begin, end = Interval(1, 5)
        assert (begin, end) == (1, 5)

    def test_repr(self):
        assert repr(Interval(2, 7)) == "[2, 7)"

    def test_ordering(self):
        assert Interval(1, 5) < Interval(2, 3)
        assert sorted([Interval(4, 5), Interval(1, 9)])[0] == Interval(1, 9)

"""kill -9 end to end: real processes, real sockets, real recovery.

The acceptance run for the crash-only grid: a genuine ``repro grid
serve`` subprocess is SIGKILLed mid-run over loopback TCP, a successor
restarts from the same checkpoint directory with ``--resume``, at
least two worker subprocesses are SIGKILLed along the way (the
supervisor respawns them), and the fleet still terminates with the
serial optimum and exactly reconciled node accounting.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import solve
from repro.grid.runtime.supervisor import RespawnPolicy, WorkerSupervisor
from repro.problems.flowshop import FlowShopProblem, random_instance

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

JOBS, MACHINES, SEED = 11, 5, 3
fs_instance = random_instance(JOBS, MACHINES, SEED)
serial = solve(FlowShopProblem(fs_instance))


def child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def serve_argv(port, ckpt, result_json, resume=False):
    argv = [
        sys.executable, "-m", "repro.cli", "grid", "serve",
        "--host", "127.0.0.1", "--port", str(port),
        "--jobs", str(JOBS), "--machines", str(MACHINES),
        "--seed", str(SEED),
        "--checkpoint-dir", str(ckpt),
        "--checkpoint-period", "0.1",
        "--lease-seconds", "3.0",
        "--linger-seconds", "2.0",
        "--deadline", "120",
        "--result-json", str(result_json),
    ]
    if resume:
        argv.append("--resume")
    return argv


def worker_command(port):
    def command_for(slot, incarnation):
        return [
            sys.executable, "-m", "repro.cli", "grid", "worker",
            "--connect", f"127.0.0.1:{port}",
            "--id", f"e2e-{slot}.{incarnation}",
            "--update-nodes", "300",
            "--update-period", "0.05",
            "--reply-timeout", "2.0",
            "--max-retries", "3",
            "--peer-timeout", "2.0",
            "--max-reconnect-attempts", "8",
            "--backoff-cap", "0.2",
        ]

    return command_for


def wait_until(predicate, timeout, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.mark.slow
def test_sigkill_server_and_workers_recovery(tmp_path):
    ckpt = tmp_path / "ckpt"
    result1_json = tmp_path / "result1.json"
    result2_json = tmp_path / "result2.json"
    port = free_port()
    env = child_env()

    serve1 = subprocess.Popen(
        serve_argv(port, ckpt, result1_json),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    supervisor = WorkerSupervisor(
        worker_command(port),
        workers=3,
        policy=RespawnPolicy(backoff_base=0.05, backoff_cap=0.5),
        poll_interval=0.02,
        quiet=True,
    )
    serve2 = None
    try:
        supervisor.start()

        # Let the run make checkpointed progress: the snapshot pair
        # exists and the journal has reconciled updates beyond it.
        assert wait_until(
            lambda: (
                supervisor.poll() or (
                    (ckpt / "intervals.json").exists()
                    and (ckpt / "journal.log").exists()
                    and (ckpt / "journal.log").stat().st_size > 0
                )
            ),
            timeout=60,
        ), "no checkpointed progress before the crash"

        # kill -9 the real server process, mid-run.
        assert serve1.poll() is None, "server finished before the kill"
        os.kill(serve1.pid, signal.SIGKILL)
        assert serve1.wait(timeout=30) == -signal.SIGKILL
        assert not result1_json.exists()  # no graceful wrap-up happened

        # kill -9 two of the three worker subprocesses too.
        killed = 0
        deadline = time.monotonic() + 30
        while killed < 2 and time.monotonic() < deadline:
            supervisor.poll()
            for slot in (0, 1):
                if killed >= 2:
                    break
                if supervisor.kill(slot, signal.SIGKILL) is not None:
                    killed += 1
            time.sleep(0.05)
        assert killed >= 2, "could not SIGKILL two live workers"

        # Restart the server from the same checkpoint directory.
        serve2 = subprocess.Popen(
            serve_argv(port, ckpt, result2_json, resume=True),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

        # Supervisor keeps respawning (killed and gave-up workers
        # alike) until every slot exits 0 on the coordinator's
        # Terminate.
        assert wait_until(
            lambda: (
                supervisor.poll()
                or all(s.done for s in supervisor.slots)
            ),
            timeout=120,
        ), "fleet did not drain after recovery"
        assert all(s.outcome == "clean" for s in supervisor.slots)

        assert serve2.wait(timeout=60) == 0
    finally:
        supervisor.stop()
        for proc in (serve1, serve2):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    # The killed processes really died by signal, and the supervisor
    # really respawned them.
    sigkilled = [
        code
        for status in supervisor.slots
        for code in status.exit_codes
        if code == -signal.SIGKILL
    ]
    assert len(sigkilled) >= 2
    assert sum(s.respawns for s in supervisor.slots) >= 2

    result = json.loads(result2_json.read_text())
    assert result["optimal"] is True
    assert result["aborted"] is False
    assert result["cost"] == serial.cost
    assert result["epoch"] == 2
    # Node accounting reconciles exactly on the recovered run: the
    # server's count is the sum of what its workers reported.
    reported = sum(
        stats["nodes"] for stats in result["worker_stats"].values()
    )
    assert result["nodes_explored"] == reported

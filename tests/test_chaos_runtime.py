"""Chaos suite for the real multiprocessing runtime (§4.1 end to end).

Seeded fault schedules — coordinator crash-and-recover, message
drop/duplication/reordering, worker crashes and hangs, and every
combination — run over small flowshop and TSP instances.  Each run
must terminate and return the same proved optimum as the serial
engine: the interval-set invariant (the union of coordinator copies
always covers all unexplored work) makes every fault cost at worst
redundant exploration, never a lost or wrong answer.

Unit-level tests pin the hardening pieces individually: sequence-
number deduplication at the coordinator, lease expiry and carve-path
reclaim, lossy-channel conservation, and the launcher's coordinator
restart counter.
"""

import random
import time

import pytest

from repro.core import Interval, solve
from repro.grid.runtime import (
    ChannelFaults,
    Coordinator,
    CoordinatorCrash,
    FaultPlan,
    RuntimeConfig,
    WorkerHang,
    flowshop_spec,
    solve_parallel,
    tsp_spec,
)
from repro.grid.runtime.faults import FaultStats, LossyReceiver, LossySender
from repro.grid.runtime.protocol import (
    Ack,
    GrantWork,
    Push,
    Reconciled,
    Request,
    Update,
)
from repro.problems.flowshop import FlowShopProblem, random_instance
from repro.problems.tsp import TSPProblem, random_tsp

CHAOS_SEEDS = list(range(20))
CHAOS_WORKERS = 3


@pytest.fixture(scope="module")
def fs_instance():
    return random_instance(7, 4, seed=91)


@pytest.fixture(scope="module")
def fs_expected(fs_instance):
    return solve(FlowShopProblem(fs_instance)).cost


@pytest.fixture(scope="module")
def tsp_instance():
    return random_tsp(7, seed=13)


@pytest.fixture(scope="module")
def tsp_expected(tsp_instance):
    return solve(TSPProblem(tsp_instance)).cost


def chaos_config(plan: FaultPlan) -> RuntimeConfig:
    """Aggressive-but-bounded knobs so injected faults resolve fast.

    The PR 3 hot-path machinery — pipelined updates, adaptive slicing,
    the shared-memory incumbent — is explicitly ON, with the adaptive
    range clamped small so tiny instances still produce many slices
    (every fault needs boundaries to fire at).
    """
    return RuntimeConfig(
        workers=CHAOS_WORKERS,
        update_nodes=200,
        update_period=0.05,  # adaptive, but re-targeted every 50 ms
        max_slice_nodes=400,  # keep many boundaries on tiny instances
        pipeline_updates=True,
        shared_incumbent=True,
        checkpoint_period=0.0,  # every pump iteration persists
        deadline=90,
        reply_timeout=0.4,
        max_retries=6,
        lease_seconds=0.6,
        fault_plan=plan,
    )


class TestChaosSchedules:
    """≥20 randomized seeded schedules, flowshop and TSP alternating."""

    @pytest.mark.timeout(120)
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_seeded_schedule_matches_serial(
        self, seed, fs_instance, fs_expected, tsp_instance, tsp_expected
    ):
        plan = FaultPlan.chaos(seed, workers=CHAOS_WORKERS)
        assert not plan.is_empty()
        if seed % 2 == 0:
            spec, expected = flowshop_spec(fs_instance), fs_expected
        else:
            spec, expected = tsp_spec(tsp_instance), tsp_expected
        result = solve_parallel(spec, chaos_config(plan))
        print(
            f"chaos seed={seed} faults={result.faults_injected} "
            f"restarts={result.coordinator_restarts} "
            f"leases={result.leases_expired} "
            f"dup_ignored={result.duplicates_ignored} "
            f"redundant={result.redundant_rate:.2%}"
        )
        assert result.optimal
        assert result.cost == expected
        assert 0.0 <= result.redundant_rate < 1.0


class TestTargetedFaults:
    """Deterministic schedules that force each recovery path."""

    @pytest.mark.timeout(120)
    def test_coordinator_crash_recovers_midrun(
        self, fs_instance, fs_expected, tmp_path
    ):
        plan = FaultPlan(
            coordinator_crashes=[
                CoordinatorCrash(after_messages=6, downtime=0.3),
                CoordinatorCrash(after_messages=20, downtime=0.2),
            ]
        )
        config = chaos_config(plan)
        config.checkpoint_dir = tmp_path
        result = solve_parallel(flowshop_spec(fs_instance), config)
        assert result.coordinator_restarts >= 1
        assert result.optimal
        assert result.cost == fs_expected

    @pytest.mark.timeout(120)
    def test_coordinator_crash_without_checkpoint_dir(
        self, fs_instance, fs_expected
    ):
        # The launcher provisions a temporary store on its own.
        plan = FaultPlan(
            coordinator_crashes=[CoordinatorCrash(after_messages=4, downtime=0.2)]
        )
        result = solve_parallel(flowshop_spec(fs_instance), chaos_config(plan))
        assert result.coordinator_restarts == 1
        assert result.optimal
        assert result.cost == fs_expected

    @pytest.mark.timeout(120)
    def test_hung_worker_lease_expires_and_run_completes(
        self, fs_instance, fs_expected
    ):
        # A single worker, so nobody can steal the hung interval by
        # splitting first: lease expiry is the only way it gets back
        # to the load balancer, and the late worker must then reclaim
        # its remaining piece through the carve path.
        plan = FaultPlan(
            worker_hangs={0: WorkerHang(after_updates=1, seconds=1.5)}
        )
        config = chaos_config(plan)
        config.workers = 1
        config.update_nodes = 50
        result = solve_parallel(flowshop_spec(fs_instance), config)
        assert result.optimal
        assert result.cost == fs_expected
        # The hang (1.5s) dwarfs the lease (0.6s): the silent worker's
        # interval must have been released to the load balancer.
        assert "worker-0" in result.leases_expired

    @pytest.mark.timeout(120)
    def test_coordinator_crash_with_pipelined_updates_in_flight(
        self, fs_instance, fs_expected
    ):
        # Tiny slices + pipelining mean each worker almost always has
        # an un-reconciled Update in flight; crashing the farmer early
        # (and again mid-run) lands the downtime exactly on those
        # pipelined replies.  The workers' same-seq retries must ride
        # out the downtime and reconcile against the recovered state.
        plan = FaultPlan(
            coordinator_crashes=[
                CoordinatorCrash(after_messages=3, downtime=0.3),
                CoordinatorCrash(after_messages=15, downtime=0.2),
            ],
            channel=ChannelFaults(drop=0.05, duplicate=0.05, delay=0.05),
            seed=31,
        )
        config = chaos_config(plan)
        config.update_nodes = 50
        config.max_slice_nodes = 100
        assert config.pipeline_updates  # the path under test
        result = solve_parallel(flowshop_spec(fs_instance), config)
        assert result.coordinator_restarts >= 1
        assert result.optimal
        assert result.cost == fs_expected

    @pytest.mark.timeout(120)
    def test_lossy_channel_only(self, tsp_instance, tsp_expected):
        plan = FaultPlan(
            channel=ChannelFaults(drop=0.12, duplicate=0.12, delay=0.12),
            seed=7,
        )
        result = solve_parallel(tsp_spec(tsp_instance), chaos_config(plan))
        assert result.optimal
        assert result.cost == tsp_expected
        assert sum(result.faults_injected.values()) > 0

    @pytest.mark.timeout(180)
    def test_kitchen_sink(self, fs_instance, fs_expected):
        plan = FaultPlan(
            coordinator_crashes=[CoordinatorCrash(after_messages=10, downtime=0.3)],
            channel=ChannelFaults(drop=0.08, duplicate=0.08, delay=0.08),
            worker_crashes={1: 1},
            worker_hangs={2: WorkerHang(after_updates=1, seconds=1.0)},
            seed=23,
        )
        config = chaos_config(plan)
        config.update_nodes = 50  # many slices: every fault gets to fire
        result = solve_parallel(flowshop_spec(fs_instance), config)
        assert result.optimal
        assert result.cost == fs_expected
        assert result.coordinator_restarts == 1
        assert "worker-1" in result.crashed_workers


class TestSequenceNumbers:
    """Duplicated and reordered messages must be idempotent (unit level)."""

    def make(self, length=1000, **kw):
        return Coordinator(Interval(0, length), **kw)

    def test_duplicate_update_is_idempotent(self):
        coord = self.make()
        coord.handle(Request("w0", seq=1))
        first = coord.handle(Update("w0", (100, 1000), nodes=7, consumed=100, seq=2))
        snapshot = coord.intervals.intervals()
        nodes_before = coord.nodes_explored
        again = coord.handle(Update("w0", (100, 1000), nodes=7, consumed=100, seq=2))
        assert isinstance(first, Reconciled) and isinstance(again, Reconciled)
        assert again.interval == first.interval
        assert coord.intervals.intervals() == snapshot
        assert coord.nodes_explored == nodes_before  # not double-counted
        assert coord.duplicates_ignored == 1

    def test_reordered_stale_update_is_dropped(self):
        coord = self.make()
        coord.handle(Request("w0", seq=1))
        coord.handle(Update("w0", (200, 1000), nodes=5, consumed=200, seq=3))
        snapshot = coord.intervals.intervals()
        stale = coord.handle(Update("w0", (100, 1000), nodes=5, consumed=100, seq=2))
        assert stale is None  # superseded: no reply, no state change
        assert coord.intervals.intervals() == snapshot
        assert coord.duplicates_ignored == 1

    def test_duplicate_request_returns_same_grant(self):
        coord = self.make()
        first = coord.handle(Request("w0", seq=1))
        again = coord.handle(Request("w0", seq=1))
        assert isinstance(first, GrantWork)
        assert again.interval == first.interval
        assert coord.work_allocations == 1

    def test_duplicate_push_counts_one_improvement(self):
        coord = self.make()
        first = coord.handle(Push("w0", 42.0, (1, 2), seq=1))
        again = coord.handle(Push("w0", 42.0, (1, 2), seq=1))
        assert isinstance(first, Ack) and isinstance(again, Ack)
        assert coord.improvements == 1

    def test_replies_echo_seq(self):
        coord = self.make()
        grant = coord.handle(Request("w0", seq=5))
        assert grant.seq == 5
        rec = coord.handle(Update("w0", (10, 1000), nodes=1, consumed=10, seq=6))
        assert rec.seq == 6

    def test_duplicate_storm_keeps_union_invariant(self):
        coord = self.make(length=5000, duplication_threshold=50)
        rng = random.Random(3)
        replies = {}
        for seq in range(1, 60):
            worker = f"w{rng.randrange(3)}"
            if rng.random() < 0.4:
                replies[worker] = coord.handle(Request(worker, seq=seq))
                continue
            grant = replies.get(worker)
            if not isinstance(grant, (GrantWork, Reconciled)):
                continue
            iv = Interval.from_tuple(grant.interval)
            if iv.is_empty():
                continue
            step = rng.randrange(iv.length + 1)
            msg = Update(
                worker, (iv.begin + step, iv.end), nodes=1, consumed=step, seq=seq
            )
            reply = coord.handle(msg)
            union = coord.intervals.covered_union_length()
            # channel duplicate: answered from the cache, no state change
            assert coord.handle(msg) == reply
            # reordered stale duplicate: dropped outright
            stale = Update(worker, iv.as_tuple(), nodes=1, consumed=0, seq=seq - 1)
            assert coord.handle(stale) is None
            assert coord.intervals.covered_union_length() == union
            if isinstance(reply, Reconciled):
                replies[worker] = reply


class TestLeases:
    def test_lease_expiry_releases_interval(self):
        coord = Coordinator(Interval(0, 1000), lease_seconds=10.0)
        grant = coord.handle(Request("w0", seq=1))
        assert isinstance(grant, GrantWork)
        t0 = time.monotonic()  # handle() stamped the lease just now
        assert coord.check_leases(now=t0) == []  # lease still fresh
        assert coord.check_leases(now=t0 + 11.0) == ["w0"]
        # the orphan is whole again for the next requester
        regrant = coord.handle(Request("w1", seq=1))
        assert regrant.interval == grant.interval

    def test_late_update_after_expiry_reclaims_via_carve(self):
        coord = Coordinator(Interval(0, 1000), lease_seconds=5.0)
        coord.handle(Request("w0", seq=1))
        coord.check_leases(now=time.monotonic() + 6.0)
        assert coord.leases_expired == ["w0"]
        late = coord.handle(Update("w0", (300, 1000), nodes=9, consumed=0, seq=2))
        assert isinstance(late, Reconciled)
        assert late.interval == (300, 1000)
        # the explored prefix [0, 300) stays as unowned work: the
        # coordinator cannot prove it was explored, so it keeps it
        # (redundancy, never loss)
        assert coord.intervals.covered_union_length() == 1000

    def test_lease_disabled_by_default(self):
        coord = Coordinator(Interval(0, 1000))
        coord.handle(Request("w0", seq=1))
        assert coord.check_leases(now=1e18) == []


class _ListQueue:
    """Minimal queue double for channel-fault unit tests."""

    def __init__(self, items=()):
        self.items = list(items)
        self.out = []

    def get(self, timeout=None):
        if not self.items:
            import queue as queue_mod

            raise queue_mod.Empty
        return self.items.pop(0)

    def put(self, item):
        self.out.append(item)


class TestLossyChannel:
    def test_receiver_conserves_undropped_messages(self):
        import queue as queue_mod

        messages = list(range(200))
        stats = FaultStats()
        receiver = LossyReceiver(
            _ListQueue(messages),
            ChannelFaults(drop=0.1, duplicate=0.1, delay=0.1),
            random.Random(5),
            stats,
        )
        seen = []
        while True:
            try:
                seen.append(receiver.get(timeout=0))
            except queue_mod.Empty:
                break  # a drained receiver has flushed its delay buffer too
        assert stats.dropped > 0 and stats.duplicated > 0 and stats.delayed > 0
        # every message is either counted as dropped or delivered (≥ once)
        assert len(set(seen)) + stats.dropped == len(messages)

    def test_sender_flush_releases_delayed(self):
        q = _ListQueue()
        sender = LossySender(
            q, ChannelFaults(delay=1.0), random.Random(0), FaultStats()
        )
        sender.put("a")
        assert q.out == []  # held back
        sender.flush()
        assert q.out == ["a"]

    def test_same_seed_same_faults(self):
        faults = ChannelFaults(drop=0.2, duplicate=0.2, delay=0.2)
        outcomes = []
        for _ in range(2):
            import queue as queue_mod

            stats = FaultStats()
            receiver = LossyReceiver(
                _ListQueue(range(100)), faults, random.Random(42), stats
            )
            got = []
            while True:
                try:
                    got.append(receiver.get(timeout=0))
                except queue_mod.Empty:
                    break
            outcomes.append((got, stats.as_dict()))
        assert outcomes[0] == outcomes[1]

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            ChannelFaults(drop=0.6, duplicate=0.6)


class TestChaosPlans:
    def test_chaos_plans_are_reproducible_and_nonempty(self):
        for seed in CHAOS_SEEDS:
            a = FaultPlan.chaos(seed, workers=3)
            b = FaultPlan.chaos(seed, workers=3)
            assert a == b
            assert not a.is_empty()

    def test_chaos_plans_cover_every_fault_kind(self):
        plans = [FaultPlan.chaos(s, workers=3) for s in CHAOS_SEEDS]
        assert any(p.coordinator_crashes for p in plans)
        assert any(p.worker_crashes for p in plans)
        assert any(p.worker_hangs for p in plans)
        assert all(p.channel is not None for p in plans)

"""Integration tests for heterogeneous processor power (§4.2).

The partitioning point is "proportional to the participation of each
one in the calculation": faster hosts must receive more numbers and
explore more nodes.
"""

import pytest

from repro.core import solve
from repro.grid.simulator import (
    ClusterSpec,
    FarmerConfig,
    GridSimulation,
    HostSpec,
    PlatformSpec,
    SimulationConfig,
    SyntheticWorkload,
    WorkerConfig,
)
from repro.grid.simulator.farmer import SimFarmer
from repro.grid.simulator.messages import WorkRequest
from repro.grid.simulator.events import SimClock
from repro.grid.simulator.metrics import MetricsCollector
from repro.core import Interval


def heterogeneous_platform(slow=2, fast=2):
    hosts = [
        HostSpec(f"c0/{i:04d}", "c0", 1.0, True) for i in range(slow)
    ] + [
        HostSpec(f"c0/{slow + i:04d}", "c0", 4.0, True) for i in range(fast)
    ]
    return PlatformSpec([ClusterSpec("c0", "test", hosts)])


class TestPowerProportionalSplits:
    def test_fast_requester_takes_larger_share(self):
        clock = SimClock()
        metrics = MetricsCollector(1000)
        farmer = SimFarmer(clock, Interval(0, 1000), metrics)

        def rpc(msg):
            box = []
            farmer.deliver(msg, box.append)
            while clock.step() and not box:
                pass
            return box[0]

        rpc(WorkRequest("slow", 1.0))
        reply = rpc(WorkRequest("fast", 4.0))
        # the fast host takes 4/5 of the interval
        assert reply.interval == Interval(200, 1000)

    def test_fast_hosts_consume_more_in_full_run(self):
        leaves = 10**7
        workload = SyntheticWorkload(
            leaves, seed=2,
            mean_leaf_rate=leaves / (4 * 2.0 * 600.0),
            irregularity=0.5, segments=64, nodes_per_second=1e4,
            optimum=3679.0,
        )
        config = SimulationConfig(
            platform=heterogeneous_platform(),
            workload=workload,
            horizon=30 * 86400.0,
            seed=3,
            always_on=True,
            farmer=FarmerConfig(duplication_threshold=leaves // 10**3),
            worker=WorkerConfig(update_period=10.0),
        )
        sim = GridSimulation(config)
        report = sim.run()
        assert report.finished
        slow_busy = sum(
            v for k, v in sim.metrics.worker_busy.items() if "000" in k[-4:]
        )
        fast_nodes = {
            w.id: sim.metrics.worker_busy.get(w.id, 0.0)
            for w in sim.workers
        }
        slow = [fast_nodes[f"c0/{i:04d}"] for i in range(2)]
        fast = [fast_nodes[f"c0/{i:04d}"] for i in range(2, 4)]
        # same busy *time* order (all saturated), so compare consumed
        # work through the engine: a 4x host does ~4x the leaves per
        # busy second; equal busy time means it processed more work.
        assert report.best_cost == 3679.0
        assert min(fast) > 0 and min(slow) > 0

    def test_speedup_from_heterogeneous_pool_matches_total_power(self):
        # Wall clock should track 1/sum(power): a 1+1+4+4 pool beats a
        # 1+1+1+1 pool by roughly (10/4)x on the same workload.
        def run(platform):
            leaves = 10**7
            workload = SyntheticWorkload(
                leaves, seed=5,
                mean_leaf_rate=leaves / (4 * 600.0),
                irregularity=0.3, segments=64, nodes_per_second=1e4,
                optimum=3679.0,
            )
            config = SimulationConfig(
                platform=platform, workload=workload,
                horizon=60 * 86400.0, seed=7, always_on=True,
                farmer=FarmerConfig(duplication_threshold=leaves // 10**3),
                worker=WorkerConfig(update_period=10.0),
            )
            return GridSimulation(config).run()

        uniform_hosts = [
            HostSpec(f"c0/{i:04d}", "c0", 1.0, True) for i in range(4)
        ]
        uniform = run(PlatformSpec([ClusterSpec("c0", "t", uniform_hosts)]))
        mixed = run(heterogeneous_platform())
        assert uniform.finished and mixed.finished
        ratio = uniform.wall_clock / mixed.wall_clock
        assert 1.5 < ratio < 4.0  # ideal 2.5, load-balancing overhead allowed

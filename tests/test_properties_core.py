"""Property-based tests (hypothesis) for the interval-coding core.

These are the paper's mathematical claims quantified over random
shapes and intervals: numbering is a bijection, fold/unfold are
mutually inverse, unfold output is minimal and contiguous, interval
algebra conserves work.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ActiveList,
    Interval,
    TreeShape,
    fold,
    fold_by_union,
    leaf_ranks_for_number,
    node_number,
    node_range,
    unfold,
    unfold_with_stats,
)

shapes = st.one_of(
    st.integers(2, 6).map(TreeShape.permutation),
    st.integers(1, 8).map(TreeShape.binary),
    st.lists(st.integers(1, 4), min_size=1, max_size=6).map(TreeShape),
)


@st.composite
def shape_and_interval(draw):
    shape = draw(shapes)
    total = shape.total_leaves
    a = draw(st.integers(0, total))
    b = draw(st.integers(0, total))
    return shape, Interval(min(a, b), max(a, b))


@st.composite
def shape_and_leaf(draw):
    shape = draw(shapes)
    number = draw(st.integers(0, shape.total_leaves - 1))
    return shape, number


class TestNumberingProperties:
    @given(shape_and_leaf())
    def test_leaf_numbering_roundtrip(self, case):
        shape, number = case
        assert node_number(shape, leaf_ranks_for_number(shape, number)) == number

    @given(shape_and_leaf())
    def test_leaf_range_is_singleton_at_its_number(self, case):
        shape, number = case
        ranks = leaf_ranks_for_number(shape, number)
        assert node_range(shape, ranks) == Interval(number, number + 1)

    @given(shape_and_leaf())
    def test_ancestors_cover_the_leaf(self, case):
        shape, number = case
        ranks = leaf_ranks_for_number(shape, number)
        for depth in range(len(ranks) + 1):
            assert number in node_range(shape, ranks[:depth])


class TestFoldUnfoldProperties:
    @given(shape_and_interval())
    def test_fold_unfold_identity(self, case):
        shape, interval = case
        folded = fold(unfold(shape, interval))
        if interval.is_empty():
            assert folded.is_empty()
        else:
            assert folded == interval

    @given(shape_and_interval())
    def test_unfold_fold_identity_on_frontiers(self, case):
        shape, interval = case
        active = unfold(shape, interval)
        assert unfold(shape, fold(active)) == active

    @given(shape_and_interval())
    def test_fold_shortcut_equals_union(self, case):
        shape, interval = case
        active = unfold(shape, interval)
        assert fold(active) == fold_by_union(active) or active.is_empty()

    @given(shape_and_interval())
    def test_unfold_covers_exactly(self, case):
        shape, interval = case
        covered = 0
        previous_end = None
        for node in unfold(shape, interval):
            covered += node.range.length
            if previous_end is not None:
                assert node.range.begin == previous_end  # eq. 9
            previous_end = node.range.end
        assert covered == interval.length

    @given(shape_and_interval())
    def test_unfold_minimality(self, case):
        shape, interval = case
        for node in unfold(shape, interval):
            if node.depth > 0:
                father = node_range(shape, node.ranks[:-1])
                assert not interval.contains_interval(father)

    @given(shape_and_interval())
    def test_unfold_cost_bound(self, case):
        shape, interval = case
        _, stats = unfold_with_stats(shape, interval)
        assert stats.decompositions <= 2 * shape.leaf_depth

    @given(shape_and_interval(), st.integers(0, 10**6))
    def test_split_then_unfold_partitions_the_frontier(self, case, point_seed):
        shape, interval = case
        if interval.is_empty():
            return
        point = interval.begin + point_seed % (interval.length + 1)
        left, right = interval.split_at(point)
        combined = [n.range for n in unfold(shape, left)] + [
            n.range for n in unfold(shape, right)
        ]
        total = sum(r.length for r in combined)
        assert total == interval.length


class TestIntervalAlgebraProperties:
    small_ints = st.integers(-50, 50)

    @given(small_ints, small_ints, small_ints, small_ints)
    def test_intersection_commutes(self, a, b, c, d):
        x, y = Interval(a, b), Interval(c, d)
        i1, i2 = x.intersect(y), y.intersect(x)
        assert i1 == i2 or (i1.is_empty() and i2.is_empty())

    @given(small_ints, small_ints, small_ints)
    def test_split_conserves_length(self, a, b, point):
        iv = Interval(min(a, b), max(a, b))
        left, right = iv.split_at(point)
        assert left.length + right.length == iv.length

    @given(small_ints, small_ints, small_ints, small_ints)
    def test_intersection_is_subset(self, a, b, c, d):
        x, y = Interval(a, b), Interval(c, d)
        merged = x.intersect(y)
        assert x.contains_interval(merged)
        assert y.contains_interval(merged)

    @given(small_ints, small_ints, small_ints, small_ints, small_ints, small_ints)
    def test_intersection_associates(self, a, b, c, d, e, f):
        x, y, z = Interval(a, b), Interval(c, d), Interval(e, f)
        one = x.intersect(y).intersect(z)
        two = x.intersect(y.intersect(z))
        assert one == two or (one.is_empty() and two.is_empty())

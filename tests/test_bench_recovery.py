"""Smoke test for the PR 6 recovery benchmark (quick configuration).

Runs the real benchmark end to end on a tiny instance: both recovery
modes must still prove the serial optimum, and journal replay must
re-explore strictly fewer nodes than the snapshot-only restart — the
claim BENCH_PR6.json records.
"""

from __future__ import annotations

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from bench_recovery import run_benchmark  # noqa: E402


def test_quick_benchmark_report_shape():
    report = run_benchmark(quick=True)

    assert report["pr"] == 6
    assert report["quick"] is True
    assert report["workload"]["serial_cost"] > 0

    assert report["recovery_cases"], "no recovery cases ran"
    for case in report["recovery_cases"]:
        journal = case["journal"]
        snapshot_only = case["snapshot_only"]
        # run_benchmark raises when either mode misses the serial
        # optimum; these flags record that the checks ran.
        assert journal["serial_identical_optimum"] is True
        assert snapshot_only["serial_identical_optimum"] is True
        # The journal replayed real records and lost less work.
        assert journal["replayed_records"] > 0
        assert snapshot_only["replayed_records"] == 0
        assert (
            journal["nodes_re_explored"]
            < snapshot_only["nodes_re_explored"]
        )
        assert case["journal_saves_nodes"] > 0

    assert report["journal_strictly_fewer_nodes"] is True

    latencies = report["replay_latency"]
    assert [row["records"] for row in latencies] == [0, 64, 1024]
    assert all(row["load_seconds"] >= 0 for row in latencies)

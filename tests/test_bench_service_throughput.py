"""Smoke test for the PR 9 service benchmark (quick configuration).

Runs the real benchmark end to end on the tiny mix: every job must
prove its serial optimum under both policies, and the report must
carry the fields BENCH_PR9.json promises.
"""

from __future__ import annotations

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from bench_service_throughput import run_benchmark  # noqa: E402


def test_quick_benchmark_report_shape():
    report = run_benchmark(quick=True)

    assert report["pr"] == 9
    assert report["quick"] is True
    assert report["workload"]["jobs"] >= 4
    kinds = {entry["kind"] for entry in report["workload"]["mix"]}
    assert kinds == {"small", "large"}

    configs = [(run["policy"], run["workers"]) for run in report["runs"]]
    assert configs == [
        ("fifo", 1), ("fair", 1), ("fifo", 2), ("fair", 2),
    ]
    for run in report["runs"]:
        assert run["jobs"] == report["workload"]["jobs"]
        assert run["jobs_per_hour"] > 0
        assert run["wall_seconds"] > 0
        # run_benchmark raises when any job misses its serial optimum;
        # the per-job flags record that the check ran.
        for row in run["job_rows"]:
            assert row["serial_identical_optimum"] is True
            assert row["sojourn_seconds"] >= 0
            assert row["queue_wait_seconds"] >= 0

    split = report["wait_time_split"]
    assert split["workers"] == 2
    assert split["fair_mean_sojourn_small"] is not None
    assert split["fifo_mean_sojourn_small"] is not None

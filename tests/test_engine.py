"""Tests for the interval-constrained B&B engine."""

import math

import pytest

from repro.core import (
    Incumbent,
    Interval,
    IntervalExplorer,
    TreeShape,
    brute_force_minimum,
    solve,
)
from repro.core.engine import iter_leaf_costs
from repro.core.problem import Problem
from repro.exceptions import EngineError, ProblemError

from tests.helpers import CountingLeafProblem, PermutationCostProblem, toy_cost_matrix


class TestSequentialSolve:
    @pytest.mark.parametrize("n,seed", [(4, 1), (5, 2), (6, 3), (7, 4)])
    def test_optimum_matches_brute_force(self, n, seed):
        problem = PermutationCostProblem(toy_cost_matrix(n, seed))
        expected_cost, _ = problem.brute_force()
        result = solve(problem)
        assert result.cost == expected_cost
        assert result.optimal

    def test_solution_is_a_valid_permutation(self):
        problem = PermutationCostProblem(toy_cost_matrix(6, 9))
        result = solve(problem)
        assert sorted(result.solution) == list(range(6))

    def test_solution_cost_consistent(self):
        problem = PermutationCostProblem(toy_cost_matrix(6, 5))
        result = solve(problem)
        recomputed = sum(
            problem.cost[pos][e] for pos, e in enumerate(result.solution)
        )
        assert recomputed == result.cost

    def test_pruning_reduces_nodes_vs_brute_force(self):
        problem = PermutationCostProblem(toy_cost_matrix(6, 7))
        pruned = solve(problem).stats
        exhaustive = brute_force_minimum(problem).stats
        assert pruned.nodes_explored < exhaustive.nodes_explored
        assert exhaustive.leaves_evaluated == math.factorial(6)

    def test_initial_upper_bound_tightens_search(self):
        problem = PermutationCostProblem(toy_cost_matrix(6, 7))
        optimum = solve(problem).cost
        warm = solve(problem, initial_upper_bound=optimum + 1)
        cold = solve(problem, initial_upper_bound=math.inf)
        assert warm.cost == optimum
        assert warm.stats.nodes_explored <= cold.stats.nodes_explored

    def test_upper_bound_equal_to_optimum_proves_without_solution(self):
        # The paper's first Ta056 run started from UB 3681 (best known);
        # a UB equal to the optimum yields proof but no schedule unless
        # the initial solution is supplied.
        problem = PermutationCostProblem(toy_cost_matrix(5, 3))
        optimum = solve(problem).cost
        result = solve(problem, initial_upper_bound=optimum)
        assert result.cost == optimum
        assert result.solution is None

    def test_initial_solution_carried_through(self):
        problem = PermutationCostProblem(toy_cost_matrix(5, 3))
        full = solve(problem)
        result = solve(
            problem,
            initial_upper_bound=full.cost,
            initial_solution=full.solution,
        )
        assert result.solution == full.solution


class TestIntervalConstrainedExploration:
    def test_explores_exactly_the_interval_leaves(self):
        shape = TreeShape.permutation(4)
        problem = CountingLeafProblem(shape)
        explorer = IntervalExplorer(problem, Interval(5, 17))
        explorer.run()
        assert problem.visited_leaves == list(range(5, 17))

    def test_minimum_over_interval_is_its_begin(self):
        shape = TreeShape([3, 2, 2])
        problem = CountingLeafProblem(shape)
        result = solve(problem, interval=Interval(4, 9))
        assert result.cost == 4.0

    def test_interval_partition_equals_full_exploration(self):
        # Splitting the root range across two explorers must find the
        # global optimum in exactly one of the parts.
        problem = PermutationCostProblem(toy_cost_matrix(5, 11))
        expected = solve(problem).cost
        total = problem.tree_shape().total_leaves
        mid = total // 3
        left = solve(problem, interval=Interval(0, mid)).cost
        right = solve(problem, interval=Interval(mid, total)).cost
        assert min(left, right) == expected

    def test_empty_interval_is_finished_immediately(self):
        problem = CountingLeafProblem(TreeShape.binary(4))
        explorer = IntervalExplorer(problem, Interval(3, 3))
        assert explorer.is_finished()
        assert explorer.remaining_interval().is_empty()

    def test_leaf_visit_order_is_number_order(self):
        shape = TreeShape.binary(4)
        problem = CountingLeafProblem(shape)
        IntervalExplorer(problem, Interval(2, 13)).run()
        assert problem.visited_leaves == sorted(problem.visited_leaves)


class TestResumability:
    def test_step_budget_is_respected(self):
        problem = CountingLeafProblem(TreeShape.permutation(5))
        explorer = IntervalExplorer(problem)
        report = explorer.step(10)
        assert report.nodes_processed == 10
        assert not report.finished

    def test_remaining_interval_shrinks_monotonically(self):
        problem = CountingLeafProblem(TreeShape.permutation(5))
        explorer = IntervalExplorer(problem)
        begins = []
        while not explorer.is_finished():
            begins.append(explorer.remaining_interval().begin)
            explorer.step(7)
        assert begins == sorted(begins)

    def test_checkpoint_resume_equivalence(self):
        # Stop an exploration mid-way, fold its frontier, and resume a
        # *fresh* explorer from the folded interval: the union of both
        # visits must equal a straight-through run.
        shape = TreeShape.permutation(5)
        problem = CountingLeafProblem(shape)
        first = IntervalExplorer(problem, Interval(10, 100))
        first.step(25)
        checkpoint = first.remaining_interval()
        visited_before = list(problem.visited_leaves)

        resumed_problem = CountingLeafProblem(shape)
        IntervalExplorer(resumed_problem, checkpoint).run()
        assert visited_before + resumed_problem.visited_leaves == list(
            range(10, 100)
        )

    def test_active_list_folds_to_remaining_interval(self):
        from repro.core import fold

        problem = CountingLeafProblem(TreeShape.permutation(5))
        explorer = IntervalExplorer(problem, Interval(0, 120))
        explorer.step(13)
        active = explorer.active_list()
        assert fold(active) == explorer.remaining_interval()


class TestCoordinationHooks:
    def test_restrict_end_limits_exploration(self):
        problem = CountingLeafProblem(TreeShape.permutation(4))
        explorer = IntervalExplorer(problem, Interval(0, 24))
        explorer.step(3)
        explorer.restrict_end(10)
        explorer.run()
        assert max(problem.visited_leaves) <= 9

    def test_restrict_end_cannot_extend(self):
        explorer = IntervalExplorer(
            CountingLeafProblem(TreeShape.binary(3)), Interval(0, 4)
        )
        with pytest.raises(EngineError):
            explorer.restrict_end(8)

    def test_apply_interval_intersects(self):
        problem = CountingLeafProblem(TreeShape.permutation(4))
        explorer = IntervalExplorer(problem, Interval(0, 24))
        explorer.step(2)
        explorer.apply_interval(Interval(0, 12))
        assert explorer.end == 12

    def test_apply_empty_interval_drops_everything(self):
        problem = CountingLeafProblem(TreeShape.permutation(4))
        explorer = IntervalExplorer(problem, Interval(0, 24))
        explorer.step(2)
        explorer.apply_interval(Interval(20, 24))  # disjoint from rest
        # remaining was [x, 24) with x small; intersect = [20,24)...
        # use a really disjoint one instead:
        explorer.apply_interval(Interval(0, 0))
        assert explorer.is_finished()

    def test_set_upper_bound_prunes_more(self):
        problem = PermutationCostProblem(toy_cost_matrix(6, 13))
        optimum = solve(problem).cost
        explorer = IntervalExplorer(problem)
        explorer.set_upper_bound(optimum)  # as if shared by coordinator
        explorer.run()
        assert explorer.incumbent.cost == optimum

    def test_set_upper_bound_ignores_worse(self):
        explorer = IntervalExplorer(
            PermutationCostProblem(toy_cost_matrix(4, 1)),
            incumbent=Incumbent(100.0, (0, 1, 2, 3)),
        )
        assert not explorer.set_upper_bound(150.0)
        assert explorer.incumbent.cost == 100.0

    def test_on_improvement_callback_fires(self):
        seen = []
        problem = PermutationCostProblem(toy_cost_matrix(5, 17))
        solve(problem, on_improvement=lambda c, s: seen.append(c))
        assert seen == sorted(seen, reverse=True)
        assert seen[-1] == solve(problem).cost


class TestProblemContract:
    def test_wrong_child_count_raises(self):
        class Broken(Problem):
            def tree_shape(self):
                return TreeShape.binary(2)

            def root_state(self):
                return 0

            def branch(self, state, depth):
                return [0]  # should be 2 children

            def lower_bound(self, state, depth):
                return -math.inf

            def leaf_cost(self, state):
                return 0.0

        with pytest.raises(ProblemError):
            solve(Broken())

    def test_iter_leaf_costs_order(self):
        problem = CountingLeafProblem(TreeShape([2, 3]))
        pairs = list(iter_leaf_costs(problem))
        assert [n for n, _ in pairs] == list(range(6))
        assert all(n == c for n, c in pairs)

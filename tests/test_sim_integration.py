"""Integration tests of the full simulated grid (farmer + workers).

The heavy invariants live here: the simulated resolution must find the
true optimum *with proof* regardless of churn, crashes, duplication
and farmer failures — the paper's fault-tolerance claims (§4.1–§4.3).
"""

import math

import pytest

from repro.core import Interval, solve
from repro.grid.simulator import (
    AvailabilityModel,
    FarmerConfig,
    FarmerFailurePlan,
    GridSimulation,
    RealBBWorkload,
    SimulationConfig,
    SyntheticWorkload,
    WorkerConfig,
    small_platform,
)
from repro.problems.flowshop import FlowShopProblem, random_instance


def real_workload(jobs=7, machines=3, seed=21, nodes_per_second=2000):
    problem = FlowShopProblem(random_instance(jobs, machines, seed))
    return RealBBWorkload(problem, nodes_per_second=nodes_per_second), problem


def synthetic_config(**overrides):
    leaves = 10**8
    workers = overrides.pop("workers", 8)
    wl = SyntheticWorkload(
        leaves,
        seed=3,
        mean_leaf_rate=leaves / (workers * 2.0 * 600.0),
        irregularity=1.0,
        segments=128,
        nodes_per_second=1e4,
        optimum=3679.0,
        initial_gap=2.0,
    )
    defaults = dict(
        platform=small_platform(workers=workers, clusters=2),
        workload=wl,
        horizon=30 * 86400.0,
        seed=5,
        farmer=FarmerConfig(duplication_threshold=leaves // 10**4),
        worker=WorkerConfig(update_period=30.0),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestRealBBGrid:
    def test_grid_finds_sequential_optimum(self):
        wl, problem = real_workload()
        expected = solve(problem).cost
        cfg = SimulationConfig(
            platform=small_platform(workers=4),
            workload=wl,
            horizon=10_000.0,
            always_on=True,
            worker=WorkerConfig(update_period=0.05),
        )
        report = GridSimulation(cfg).run()
        assert report.finished
        assert report.best_cost == expected

    def test_single_worker_grid_matches_sequential(self):
        wl, problem = real_workload(seed=31)
        expected = solve(problem)
        cfg = SimulationConfig(
            platform=small_platform(workers=1),
            workload=wl,
            horizon=100_000.0,
            always_on=True,
        )
        report = GridSimulation(cfg).run()
        assert report.finished
        assert report.best_cost == expected.cost

    def test_grid_with_churn_still_proves_optimum(self):
        wl, problem = real_workload(seed=41, nodes_per_second=0.02)
        expected = solve(problem).cost
        cfg = SimulationConfig(
            platform=small_platform(workers=6, dedicated=False),
            workload=wl,
            horizon=120 * 86400.0,
            seed=11,
            availability=AvailabilityModel(
                mean_up=900.0, mean_down=300.0, diurnal_amplitude=0.0
            ),
            farmer=FarmerConfig(
                duplication_threshold=60, checkpoint_period=600.0
            ),
            worker=WorkerConfig(update_period=10.0),
        )
        report = GridSimulation(cfg).run()
        assert report.finished
        assert report.best_cost == expected
        assert report.worker_crashes > 0  # churn actually happened

    def test_leaf_coverage_complete(self):
        # Every leaf number is consumed at least once.
        wl, problem = real_workload(seed=51)
        cfg = SimulationConfig(
            platform=small_platform(workers=3),
            workload=wl,
            horizon=10_000.0,
            always_on=True,
            worker=WorkerConfig(update_period=0.1),
        )
        sim = GridSimulation(cfg)
        report = sim.run()
        assert report.finished
        assert sim.metrics.leaves_consumed >= problem.total_leaves()


class TestSyntheticGrid:
    def test_terminates_and_finds_planted_optimum(self):
        report = GridSimulation(synthetic_config()).run()
        assert report.finished
        assert report.best_cost == 3679.0

    def test_worker_exploitation_dominates_farmer(self):
        # The paper's headline ratio: 97 % vs 1.7 %.
        report = GridSimulation(synthetic_config()).run()
        t2 = report.table2
        assert t2.worker_exploitation > 0.5
        assert t2.coordinator_exploitation < 0.2
        assert t2.worker_exploitation > 5 * t2.coordinator_exploitation

    def test_checkpoints_outnumber_allocations(self):
        # Table 2: 4.09 M checkpoint ops vs 130 k allocations.
        report = GridSimulation(synthetic_config()).run()
        t2 = report.table2
        assert t2.checkpoint_operations > t2.work_allocations

    def test_redundancy_low_with_sane_threshold(self):
        report = GridSimulation(synthetic_config()).run()
        assert report.table2.redundant_node_rate < 0.05

    def test_deterministic_given_seed(self):
        a = GridSimulation(synthetic_config()).run()
        b = GridSimulation(synthetic_config()).run()
        assert a.wall_clock == b.wall_clock
        assert a.table2.checkpoint_operations == b.table2.checkpoint_operations
        assert a.messages == b.messages

    def test_more_workers_finish_faster(self):
        few = GridSimulation(synthetic_config(workers=4)).run()
        many = GridSimulation(synthetic_config(workers=16)).run()
        assert many.finished and few.finished
        assert many.wall_clock < few.wall_clock

    def test_availability_series_tracks_workers(self):
        report = GridSimulation(synthetic_config(workers=8)).run()
        counts = [n for _, n in report.series]
        assert max(counts) <= 8
        assert max(counts) >= 1


class TestFarmerFailure:
    def test_recovery_from_checkpoint_preserves_completion(self):
        wl, problem = real_workload(seed=61, nodes_per_second=0.5)
        expected = solve(problem).cost
        cfg = SimulationConfig(
            platform=small_platform(workers=4),
            workload=wl,
            horizon=50 * 86400.0,
            always_on=True,
            farmer=FarmerConfig(
                checkpoint_period=5.0, duplication_threshold=60
            ),
            worker=WorkerConfig(update_period=1.0),
            farmer_failures=FarmerFailurePlan([(20.0, 10.0), (60.0, 5.0)]),
        )
        report = GridSimulation(cfg).run()
        assert report.finished
        assert report.farmer_recoveries == 2
        assert report.best_cost == expected

    def test_messages_dropped_while_down(self):
        wl, _ = real_workload(seed=71, nodes_per_second=0.5)
        cfg = SimulationConfig(
            platform=small_platform(workers=4),
            workload=wl,
            horizon=50 * 86400.0,
            always_on=True,
            farmer=FarmerConfig(checkpoint_period=5.0, duplication_threshold=60),
            worker=WorkerConfig(update_period=1.0),
            farmer_failures=FarmerFailurePlan([(10.0, 30.0)]),
        )
        sim = GridSimulation(cfg)
        report = sim.run()
        assert report.finished
        assert sim.farmer.messages_dropped > 0


class TestDeathPaths:
    def test_orphan_interval_reassigned_via_duplication(self):
        # A worker that dies mid-interval never reports again; with a
        # duplication threshold the survivors steal shrinking slices
        # until the orphan is duplicated and finished — no timeout
        # needed (the paper's design).
        wl, problem = real_workload(seed=81, nodes_per_second=0.01)
        expected = solve(problem).cost
        cfg = SimulationConfig(
            platform=small_platform(workers=3, dedicated=False),
            workload=wl,
            horizon=400 * 86400.0,
            seed=13,
            availability=AvailabilityModel(
                mean_up=1800.0, mean_down=1200.0, diurnal_amplitude=0.0
            ),
            farmer=FarmerConfig(duplication_threshold=120),
            worker=WorkerConfig(update_period=5.0),
        )
        report = GridSimulation(cfg).run()
        assert report.finished
        assert report.best_cost == expected

    def test_death_timeout_also_recovers_orphans(self):
        wl, problem = real_workload(seed=91, nodes_per_second=0.01)
        expected = solve(problem).cost
        cfg = SimulationConfig(
            platform=small_platform(workers=3, dedicated=False),
            workload=wl,
            horizon=400 * 86400.0,
            seed=17,
            availability=AvailabilityModel(
                mean_up=1800.0, mean_down=1200.0, diurnal_amplitude=0.0
            ),
            farmer=FarmerConfig(
                duplication_threshold=1,  # duplication disabled in effect
                death_timeout=120.0,
                checkpoint_period=60.0,
            ),
            worker=WorkerConfig(update_period=5.0),
        )
        report = GridSimulation(cfg).run()
        assert report.finished
        assert report.best_cost == expected

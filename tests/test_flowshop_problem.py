"""Integration tests: FlowShopProblem driven by the interval B&B engine."""

import itertools

import pytest

from repro.core import Interval, IntervalExplorer, solve
from repro.exceptions import ProblemError
from repro.problems.flowshop import (
    FlowShopProblem,
    makespan,
    neh,
    random_instance,
)


def brute_force_optimum(inst):
    return min(
        makespan(inst, p) for p in itertools.permutations(range(inst.jobs))
    )


class TestExactness:
    @pytest.mark.parametrize("bound", ["lb1", "lb2", "combined"])
    def test_optimum_matches_brute_force(self, bound):
        inst = random_instance(7, 3, seed=21)
        result = solve(FlowShopProblem(inst, bound=bound))
        assert result.cost == brute_force_optimum(inst)

    @pytest.mark.parametrize("seed", [31, 32, 33])
    def test_multiple_instances(self, seed):
        inst = random_instance(6, 4, seed=seed)
        result = solve(FlowShopProblem(inst))
        assert result.cost == brute_force_optimum(inst)
        assert makespan(inst, result.solution) == result.cost

    def test_solution_is_permutation(self):
        inst = random_instance(7, 4, seed=41)
        result = solve(FlowShopProblem(inst))
        assert sorted(result.solution) == list(range(7))

    def test_neh_warm_start_agrees(self):
        inst = random_instance(8, 4, seed=51)
        prob = FlowShopProblem(inst)
        seq, ub = neh(inst)
        cold = solve(prob)
        warm = solve(prob, initial_upper_bound=ub, initial_solution=tuple(seq))
        assert warm.cost == cold.cost
        assert warm.stats.nodes_explored <= cold.stats.nodes_explored


class TestBoundStrength:
    def test_stronger_bound_explores_fewer_nodes(self):
        inst = random_instance(8, 5, seed=61)
        weak = solve(FlowShopProblem(inst, bound="lb1")).stats.nodes_explored
        strong = solve(
            FlowShopProblem(inst, bound="combined", pair_strategy="all")
        ).stats.nodes_explored
        assert strong <= weak

    def test_unknown_bound_rejected(self):
        with pytest.raises(ProblemError):
            FlowShopProblem(random_instance(4, 2, seed=1), bound="nope")


class TestIntervalSemantics:
    def test_partitioned_exploration_finds_global_optimum(self):
        # Simulates two workers with disjoint intervals.
        inst = random_instance(7, 3, seed=71)
        prob = FlowShopProblem(inst)
        total = prob.total_leaves()
        expected = solve(prob).cost
        thirds = [
            Interval(0, total // 3),
            Interval(total // 3, 2 * total // 3),
            Interval(2 * total // 3, total),
        ]
        best = min(solve(prob, interval=iv).cost for iv in thirds)
        assert best == expected

    def test_resume_mid_instance(self):
        inst = random_instance(7, 3, seed=81)
        prob = FlowShopProblem(inst)
        explorer = IntervalExplorer(prob)
        explorer.step(200)
        checkpoint = explorer.remaining_interval()
        # Resume in a fresh explorer sharing the incumbent.
        resumed = IntervalExplorer(
            prob, checkpoint, incumbent=explorer.incumbent
        )
        resumed.run()
        assert resumed.incumbent.cost == solve(prob).cost

    def test_state_branching_is_deterministic(self):
        # Two independent walks must produce identical child orders.
        inst = random_instance(6, 3, seed=91)
        prob = FlowShopProblem(inst)
        a = prob.branch(prob.root_state(), 0)
        b = prob.branch(prob.root_state(), 0)
        assert [s.scheduled for s in a] == [s.scheduled for s in b]
        # rank order is ascending job id at the root
        assert [s.scheduled[0] for s in a] == list(range(6))

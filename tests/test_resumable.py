"""Tests for the checkpointed sequential solver."""

import pytest

from repro.core import solve
from repro.core.resumable import ResumableSolver
from repro.problems.flowshop import FlowShopProblem, random_instance

from tests.helpers import PermutationCostProblem, toy_cost_matrix


@pytest.fixture
def problem():
    return FlowShopProblem(random_instance(7, 3, seed=5))


class TestFreshRun:
    def test_matches_plain_solve(self, problem, tmp_path):
        expected = solve(problem)
        result = ResumableSolver(problem, tmp_path, checkpoint_nodes=50).run()
        assert result.cost == expected.cost
        assert result.optimal

    def test_checkpoints_written(self, problem, tmp_path):
        solver = ResumableSolver(problem, tmp_path, checkpoint_nodes=50)
        solver.run()
        assert solver.progress.checkpoints_written > 2
        assert (tmp_path / "intervals.json").exists()
        assert (tmp_path / "solution.json").exists()

    def test_initial_upper_bound_used(self, problem, tmp_path):
        expected = solve(problem).cost
        result = ResumableSolver(
            problem, tmp_path, checkpoint_nodes=50,
            initial_upper_bound=expected,
        ).run()
        assert result.cost == expected


class TestResume:
    def test_interrupted_run_resumes_to_same_optimum(self, problem, tmp_path):
        expected = solve(problem).cost
        first = ResumableSolver(problem, tmp_path, checkpoint_nodes=25)
        # interrupt after a few checkpoint periods
        for _ in range(3):
            if not first.step():
                break
        # "crash": throw the solver away, start over from the files
        second = ResumableSolver(problem, tmp_path, checkpoint_nodes=25)
        assert second.progress.resumed_from is not None
        result = second.run()
        assert result.cost == expected

    def test_resume_skips_completed_work(self, problem, tmp_path):
        first = ResumableSolver(problem, tmp_path, checkpoint_nodes=25)
        for _ in range(3):
            first.step()
        consumed_begin = first.remaining_interval().begin
        second = ResumableSolver(problem, tmp_path, checkpoint_nodes=25)
        assert second.remaining_interval().begin >= consumed_begin

    def test_resume_of_finished_run_is_noop(self, problem, tmp_path):
        expected = ResumableSolver(problem, tmp_path, checkpoint_nodes=50).run()
        again = ResumableSolver(problem, tmp_path, checkpoint_nodes=50)
        result = again.run()
        # incumbent survived; no re-exploration happened
        assert result.cost == expected.cost
        assert again.explorer.stats.nodes_explored == 0

    def test_incumbent_survives_restart(self, tmp_path):
        problem = PermutationCostProblem(toy_cost_matrix(6, 3))
        first = ResumableSolver(problem, tmp_path, checkpoint_nodes=30)
        first.step()
        found = first.explorer.incumbent.cost
        second = ResumableSolver(problem, tmp_path, checkpoint_nodes=30)
        assert second.explorer.incumbent.cost <= found

    def test_total_node_work_split_across_sessions(self, problem, tmp_path):
        # nodes(first session) + nodes(second session) ~ nodes(single
        # run) — resume must not restart from scratch.
        single = ResumableSolver(problem, tmp_path / "a", checkpoint_nodes=10**9)
        single_result = single.run()
        first = ResumableSolver(problem, tmp_path / "b", checkpoint_nodes=40)
        for _ in range(4):
            first.step()
        n1 = first.explorer.stats.nodes_explored
        second = ResumableSolver(problem, tmp_path / "b", checkpoint_nodes=10**9)
        second.run()
        n2 = second.explorer.stats.nodes_explored
        # pruning differences make this approximate, but a restart from
        # scratch would give n1 + n2 ~ 2x the single-run count.
        assert n1 + n2 < 1.5 * single_result.stats.nodes_explored

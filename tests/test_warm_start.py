"""``Problem.warm_start()``: heuristic incumbents never change the proof.

B&B prunes a subtree only when an *admissible* lower bound reaches the
incumbent, so seeding the incumbent with the exact cost of any feasible
solution can change how fast the optimum is reached but never which
cost is proved optimal.  These tests quantify that over random
instances and random (valid and adversarially tight) warm starts, for
``solve()``, the :class:`ResumableSolver`, and the multi-tenant
service path that seeds per-job coordinators.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ResumableSolver, solve
from repro.problems.flowshop import (
    FlowShopProblem,
    makespan,
    random_instance,
)


class WarmStartedFlowShop(FlowShopProblem):
    """A flow shop whose warm start is a fixed feasible permutation."""

    def __init__(self, instance, permutation):
        super().__init__(instance)
        self._permutation = tuple(permutation)

    def warm_start(self) -> Optional[Tuple[float, Any]]:
        return (
            makespan(self.instance, self._permutation),
            self._permutation,
        )


@st.composite
def instance_and_permutation(draw):
    jobs = draw(st.integers(4, 6))
    machines = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 10_000))
    permutation = draw(st.permutations(list(range(jobs))))
    return random_instance(jobs, machines, seed), tuple(permutation)


def test_default_warm_start_is_none():
    problem = FlowShopProblem(random_instance(5, 3, seed=1))
    assert problem.warm_start() is None


@settings(max_examples=25, deadline=None)
@given(instance_and_permutation())
def test_warm_start_never_changes_the_proved_optimum(case):
    instance, permutation = case
    cold = solve(FlowShopProblem(instance))
    warm = solve(WarmStartedFlowShop(instance, permutation))
    assert warm.cost == cold.cost
    assert warm.optimal
    # Whatever solution is reported must achieve the proved optimum —
    # including when the warm start itself *is* an optimal schedule
    # that nothing in the tree strictly beats.
    assert makespan(instance, tuple(warm.solution)) == cold.cost


@settings(max_examples=10, deadline=None)
@given(instance_and_permutation())
def test_warm_start_prunes_but_counts_stay_sane(case):
    instance, permutation = case
    cold = solve(FlowShopProblem(instance))
    warm = solve(WarmStartedFlowShop(instance, permutation))
    # A (valid) incumbent can only shrink the explored tree, never the
    # other way — pruning is monotone in the upper bound.
    assert warm.stats.nodes_explored <= cold.stats.nodes_explored


def test_resumable_solver_seeds_the_warm_start(tmp_path):
    instance = random_instance(6, 3, seed=9)
    permutation = tuple(range(6))
    cold = solve(FlowShopProblem(instance))
    solver = ResumableSolver(
        WarmStartedFlowShop(instance, permutation),
        tmp_path,
        checkpoint_nodes=50,
    )
    # The warm start is already durable before the first step.
    assert solver.explorer.incumbent.cost <= makespan(instance, permutation)
    result = solver.run()
    assert result.cost == cold.cost
    assert result.optimal


def test_resumable_solver_keeps_a_better_checkpointed_bound(tmp_path):
    instance = random_instance(6, 3, seed=9)
    optimal = solve(FlowShopProblem(instance))
    # First run to completion: the checkpoint holds the true optimum.
    ResumableSolver(
        FlowShopProblem(instance), tmp_path, checkpoint_nodes=50
    ).run()
    # A resume with a *worse* warm start must not loosen the incumbent:
    # the update is monotonic-min.
    worst = max(
        (
            makespan(instance, p)
            for p in [tuple(range(6)), tuple(reversed(range(6)))]
        ),
    )
    resumed = ResumableSolver(
        WarmStartedFlowShop(instance, tuple(range(6))),
        tmp_path,
        checkpoint_nodes=50,
    )
    assert resumed.explorer.incumbent.cost <= min(optimal.cost, worst)
    assert resumed.run().cost == optimal.cost

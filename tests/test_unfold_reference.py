"""Cross-check unfold against a brute-force reference implementation.

The reference enumerates *every* node of a small tree and applies
eq. 11 literally: a node is in ``nodes([A, B))`` iff its range is
inside the interval and its father's is not.  The production unfold
(arithmetic descent) must return exactly that set, in order.
"""

import itertools

import pytest

from repro.core import Interval, TreeShape, node_range, unfold


def all_nodes(shape):
    """Every rank path of the tree, any order."""
    def walk(prefix):
        yield prefix
        depth = len(prefix)
        if depth < shape.leaf_depth:
            for rank in range(shape.branching[depth]):
                yield from walk(prefix + (rank,))
    yield from walk(())


def reference_unfold(shape, interval):
    """Literal eq. 11 over an exhaustive node enumeration."""
    chosen = []
    for ranks in all_nodes(shape):
        rng = node_range(shape, ranks)
        if rng.is_empty() or not interval.contains_interval(rng):
            continue
        if len(ranks) == 0:
            chosen.append(ranks)
            continue
        father = node_range(shape, ranks[:-1])
        if not interval.contains_interval(father):
            chosen.append(ranks)
    chosen.sort(key=lambda r: node_range(shape, r).begin)
    return chosen


SHAPES = [
    TreeShape.permutation(4),
    TreeShape.binary(4),
    TreeShape.uniform(3, 3),
    TreeShape([3, 1, 2, 2]),
]


@pytest.mark.parametrize("shape", SHAPES, ids=repr)
def test_unfold_matches_reference_exhaustively(shape):
    total = shape.total_leaves
    for begin, end in itertools.combinations(range(total + 1), 2):
        interval = Interval(begin, end)
        fast = unfold(shape, interval).rank_paths()
        assert fast == reference_unfold(shape, interval), interval


@pytest.mark.parametrize("shape", SHAPES, ids=repr)
def test_unfold_empty_intervals(shape):
    assert unfold(shape, Interval(3, 3)).is_empty()
    assert unfold(shape, Interval(5, 2)).is_empty()

"""Tier-1 smoke test for the engine-throughput benchmark.

Runs ``benchmarks/bench_engine_throughput.py`` at its ``--quick``
scale on every test run: the point is not the timings but the
benchmark's built-in verification — both exploration paths must find
the same optimum with byte-identical node accounting — so the batched
fast path cannot silently rot.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.bench_engine_throughput import run_benchmark  # noqa: E402


def test_quick_benchmark_paths_agree():
    report = run_benchmark(quick=True, repeats=1)
    assert report["configs"], "benchmark produced no configurations"
    for rec in report["configs"]:
        # run_benchmark raises on any optimum/accounting mismatch;
        # double-check the recorded invariants anyway.
        assert rec["identical_stats"] is True
        assert rec["nodes_explored"] > 0
        assert rec["batched"]["nodes_per_sec"] > 0
        assert rec["scalar"]["nodes_per_sec"] > 0
    assert report["headline"]["speedup"] == max(
        rec["speedup"] for rec in report["configs"]
    )


def test_quick_benchmark_covers_both_tree_kinds():
    report = run_benchmark(quick=True, repeats=1)
    denominators = {rec["interval_denominator"] for rec in report["configs"]}
    # One full-tree solve and one interval-restricted solve, so both
    # engine entry modes stay exercised.
    assert None in denominators
    assert any(d is not None for d in denominators)

"""Tier-1 smoke test for the engine-throughput benchmark.

Runs ``benchmarks/bench_engine_throughput.py`` at its ``--quick``
scale on every test run: the point is not the timings but the
benchmark's built-in verification — the scalar, batched and every
pooled-backend DFS exploration must find the same optimum with
byte-identical node accounting, every wave-frontier run must find the
identical optimum with the identical proof, and the kernel-pool
microbench must reproduce the per-family bounds bit for bit — so no
fast path can silently rot.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.bench_engine_throughput import (  # noqa: E402
    OPTIONAL_BACKENDS,
    run_benchmark,
)


def test_quick_benchmark_paths_agree():
    report = run_benchmark(quick=True, repeats=1)
    assert report["configs"], "benchmark produced no configurations"
    for rec in report["configs"]:
        # run_benchmark raises on any optimum/accounting mismatch;
        # double-check the recorded invariants anyway.
        assert rec["identical_stats"] is True
        assert rec["nodes_explored"] > 0
        assert rec["scalar"]["nodes_per_sec"] > 0
        assert rec["batched"]["nodes_per_sec"] > 0
        # The numpy pool backend always runs; optional backends either
        # ran identically or are recorded as unavailable with a reason.
        assert rec["backends"]["numpy"]["identical_stats"] is True
        assert rec["backends"]["numpy"]["nodes_per_sec"] > 0
        for name in OPTIONAL_BACKENDS:
            status = rec["backends"][name]
            assert status.get("identical_stats") or (
                status["available"] is False and status["reason"]
            )
        # The wave sweep runs per backend too: numpy always, with the
        # occupancy histogram recorded, optionals unavailable-with-
        # reason elsewhere.
        wave = rec["wave"]["numpy"]
        assert wave["identical_optimum"] is True
        assert wave["nodes_per_sec"] > 0
        assert wave["pool_calls"] > 0
        assert wave["occupancy_median"] >= 1
        assert sum(wave["histogram"].values()) == wave["pool_calls"]
        for name in OPTIONAL_BACKENDS:
            status = rec["wave"][name]
            assert status.get("identical_optimum") or (
                status["available"] is False and status["reason"]
            )
    assert report["headline"]["wave_speedup_vs_pooled_dfs"] == max(
        rec["wave"]["numpy"]["speedup_vs_pooled_dfs"]
        for rec in report["configs"]
    )
    assert report["headline"]["pooled_speedup_vs_scalar"] == next(
        rec["pooled_speedup_vs_scalar"]
        for rec in report["configs"]
        if rec["name"] == report["headline"]["config"]
    )


def test_quick_benchmark_covers_both_tree_kinds():
    report = run_benchmark(quick=True, repeats=1)
    denominators = {rec["interval_denominator"] for rec in report["configs"]}
    # One full-tree solve and one interval-restricted solve, so both
    # engine entry modes stay exercised.
    assert None in denominators
    assert any(d is not None for d in denominators)


def test_quick_benchmark_kernel_pools_bit_identical():
    report = run_benchmark(quick=True, repeats=1)
    pools = report["kernel_pools"]
    assert pools, "kernel-pool microbench produced no records"
    sizes = {rec["pool_size"] for rec in pools}
    assert 1 in sizes and len(sizes) > 1  # singleton + real pools
    for rec in pools:
        assert rec["identical_bounds"] is True
        assert rec["pooled_families_per_sec"] > 0
        assert rec["per_family_families_per_sec"] > 0

"""Smoke tests: every example script must run cleanly end to end.

The heavyweight ``grid_simulation.py`` (full 1889-processor platform)
is only import-checked here; the benchmark harness exercises its
content at scale.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "interval_coding.py",
    "parallel_solve.py",
    "challenge_ta056.py",
    "p2p_stealing.py",
    "chaos_run.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their findings"


def test_all_examples_compile():
    for script in EXAMPLES.glob("*.py"):
        source = script.read_text()
        compile(source, str(script), "exec")


def test_expected_example_set_present():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "grid_simulation.py"} <= names
    assert len(names) >= 6


def test_quickstart_output_shape():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "optimal makespan" in result.stdout
    assert "proof: True" in result.stdout

"""Tests for the discrete-event kernel, RNG streams and network model."""

import pytest

from repro.exceptions import SimulationError
from repro.grid.simulator import LinkSpec, NetworkModel, RngRegistry, SimClock, stable_seed


class TestSimClock:
    def test_events_fire_in_time_order(self):
        clock = SimClock()
        fired = []
        clock.schedule(5.0, fired.append, "b")
        clock.schedule(1.0, fired.append, "a")
        clock.schedule(9.0, fired.append, "c")
        clock.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_on_insertion_order(self):
        clock = SimClock()
        fired = []
        for tag in "xyz":
            clock.schedule(1.0, fired.append, tag)
        clock.run()
        assert fired == ["x", "y", "z"]

    def test_now_advances_to_event_time(self):
        clock = SimClock()
        seen = []
        clock.schedule(3.5, lambda: seen.append(clock.now))
        clock.run()
        assert seen == [3.5]

    def test_callbacks_can_schedule_more(self):
        clock = SimClock()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                clock.schedule(1.0, chain, n + 1)

        clock.schedule(0.0, chain, 0)
        clock.run()
        assert fired == [0, 1, 2, 3]
        assert clock.now == 3.0

    def test_cancelled_events_do_not_fire(self):
        clock = SimClock()
        fired = []
        handle = clock.schedule(1.0, fired.append, "no")
        clock.schedule(2.0, fired.append, "yes")
        handle.cancel()
        clock.run()
        assert fired == ["yes"]

    def test_run_until_stops_clock_at_horizon(self):
        clock = SimClock()
        fired = []
        clock.schedule(10.0, fired.append, "late")
        clock.run(until=5.0)
        assert fired == []
        assert clock.now == 5.0
        clock.run()
        assert fired == ["late"]

    def test_stop_when_predicate(self):
        clock = SimClock()
        fired = []
        for t in (1.0, 2.0, 3.0):
            clock.schedule(t, fired.append, t)
        clock.run(stop_when=lambda: len(fired) >= 2)
        assert fired == [1.0, 2.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().schedule(-1.0, lambda: None)

    def test_max_events_guard(self):
        clock = SimClock()

        def forever():
            clock.schedule(1.0, forever)

        clock.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            clock.run(max_events=100)

    def test_pending_counts_uncancelled(self):
        clock = SimClock()
        h = clock.schedule(1.0, lambda: None)
        clock.schedule(2.0, lambda: None)
        h.cancel()
        assert clock.pending() == 1


class TestRng:
    def test_streams_are_reproducible(self):
        a = RngRegistry(42).stream("availability", "host1").random(4)
        b = RngRegistry(42).stream("availability", "host1").random(4)
        assert (a == b).all()

    def test_streams_are_independent(self):
        reg = RngRegistry(42)
        a = reg.stream("a").random(4)
        b = reg.stream("b").random(4)
        assert not (a == b).all()

    def test_same_stream_is_cached(self):
        reg = RngRegistry(1)
        assert reg.stream("x") is reg.stream("x")

    def test_stable_seed_cross_run_stability(self):
        # Must not depend on PYTHONHASHSEED.
        assert stable_seed("host", 3) == stable_seed("host", 3)
        assert stable_seed("host", 3) != stable_seed("host", 4)


class TestNetwork:
    def test_intra_cheaper_than_wan(self):
        net = NetworkModel()
        assert net.delay("a", "a", 1000) < net.delay("a", "b", 1000)

    def test_campus_link_used_between_campus_clusters(self):
        net = NetworkModel(campus_clusters=("iut", "ieea"))
        campus = net.delay("iut", "ieea", 100)
        wan = net.delay("iut", "sophia", 100)
        assert campus < wan

    def test_override_wins(self):
        slow = LinkSpec(latency=1.0, bandwidth=1000.0)
        net = NetworkModel(overrides={("a", "b"): slow})
        assert net.delay("a", "b", 0) == pytest.approx(1.0)
        # symmetric lookup
        assert net.delay("b", "a", 0) == pytest.approx(1.0)

    def test_size_adds_serialisation_delay(self):
        net = NetworkModel()
        assert net.delay("a", "b", 10**6) > net.delay("a", "b", 10)

"""kill -9 the multi-tenant service with two jobs in flight.

The service-level acceptance run for PR 9's crash-only claim: a real
``repro grid service`` subprocess is SIGKILLed over loopback TCP while
two submitted jobs are mid-exploration, a successor restarts from the
same checkpoint directory with ``--resume``, and the shared fleet
still finishes *both* jobs with their serial optima — no Push lost, no
job forgotten, every worker told Terminate.  Runs under ``make
chaos-net`` (slow marker).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import solve
from repro.grid.runtime import flowshop_spec
from repro.grid.runtime.supervisor import RespawnPolicy, WorkerSupervisor
from repro.grid.service.client import SyncServiceClient
from repro.grid.net.transport import TransportError, TransportTimeout
from repro.problems.flowshop import FlowShopProblem, makespan, random_instance

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

instance_a = random_instance(10, 5, seed=91)
instance_b = random_instance(9, 5, seed=92)
serial_a = solve(FlowShopProblem(instance_a))
serial_b = solve(FlowShopProblem(instance_b))


def child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def service_argv(port, ckpt, report_json=None, resume=False):
    argv = [
        sys.executable, "-m", "repro.cli", "grid", "service",
        "--host", "127.0.0.1", "--port", str(port),
        "--policy", "fair",
        "--checkpoint-dir", str(ckpt),
        "--checkpoint-period", "0.1",
        "--lease-seconds", "3.0",
        "--linger-seconds", "2.0",
        "--idle-retry", "0.05",
        "--deadline", "180",
    ]
    if report_json is not None:
        argv += ["--report-json", str(report_json), "--drain-when-idle"]
    if resume:
        argv.append("--resume")
    return argv


def worker_command(port):
    def command_for(slot, incarnation):
        return [
            sys.executable, "-m", "repro.cli", "grid", "worker",
            "--connect", f"127.0.0.1:{port}",
            "--id", f"svc-{slot}.{incarnation}",
            "--update-nodes", "300",
            "--update-period", "0.05",
            "--reply-timeout", "2.0",
            "--max-retries", "3",
            "--peer-timeout", "2.0",
            "--max-reconnect-attempts", "8",
            "--backoff-cap", "0.2",
        ]

    return command_for


def wait_until(predicate, timeout, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def submit_with_retry(client, spec, owner, timeout=30.0):
    deadline = time.monotonic() + timeout
    while True:
        try:
            return client.submit(spec, owner=owner)
        except (TransportError, TransportTimeout, OSError):
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.2)


@pytest.mark.slow
def test_sigkill_service_with_two_jobs_in_flight(tmp_path):
    ckpt = tmp_path / "ckpt"
    report_json = tmp_path / "report.json"
    port = free_port()
    env = child_env()

    service1 = subprocess.Popen(
        service_argv(port, ckpt),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    supervisor = WorkerSupervisor(
        worker_command(port),
        workers=3,
        policy=RespawnPolicy(backoff_base=0.05, backoff_cap=0.5),
        poll_interval=0.02,
        quiet=True,
    )
    service2 = None
    try:
        client = SyncServiceClient("127.0.0.1", port, timeout=10.0)
        job_a = submit_with_retry(client, flowshop_spec(instance_a), "alice")
        job_b = submit_with_retry(client, flowshop_spec(instance_b), "bob")
        supervisor.start()

        # Both jobs in flight: each per-job ledger has a snapshot and
        # journalled updates beyond it.
        def both_journalled():
            supervisor.poll()
            return all(
                (ckpt / "jobs" / job / "intervals.json").exists()
                and (ckpt / "jobs" / job / "journal.log").exists()
                and (ckpt / "jobs" / job / "journal.log").stat().st_size > 0
                for job in (job_a, job_b)
            )

        assert wait_until(both_journalled, timeout=90), (
            "both jobs never reached checkpointed in-flight state"
        )

        # kill -9 the real service process, mid-run, both jobs live.
        assert service1.poll() is None, "service died before the kill"
        os.kill(service1.pid, signal.SIGKILL)
        assert service1.wait(timeout=30) == -signal.SIGKILL
        assert not report_json.exists()

        # Successor: same checkpoint dir, --resume, drain when done.
        service2 = subprocess.Popen(
            service_argv(port, ckpt, report_json=report_json, resume=True),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

        assert wait_until(
            lambda: (
                supervisor.poll() or all(s.done for s in supervisor.slots)
            ),
            timeout=150,
        ), "fleet did not drain after service recovery"
        assert all(s.outcome == "clean" for s in supervisor.slots)
        assert service2.wait(timeout=90) == 0
    finally:
        supervisor.stop()
        for proc in (service1, service2):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    report = json.loads(report_json.read_text())
    assert report["aborted"] is False
    assert report["epoch"] == 2
    assert report["jobs_failed"] == 0

    # Both jobs settled with their serial optima — and the recovered
    # solutions really achieve those costs, so no Push was lost across
    # the kill (a lost incumbent would surface as a wrong cost or an
    # unachievable schedule here).
    for job, instance, serial in (
        (job_a, instance_a, serial_a),
        (job_b, instance_b, serial_b),
    ):
        summary = report["jobs"][job]
        assert summary["status"] == "done"
        assert summary["cost"] == serial.cost
        assert makespan(instance, tuple(summary["solution"])) == serial.cost

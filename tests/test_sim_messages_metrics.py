"""Unit tests for protocol messages (wire sizes) and the metrics collector."""

import pytest

from repro.core import Interval
from repro.grid.simulator.messages import (
    IntervalUpdate,
    SolutionAck,
    SolutionPush,
    UpdateReply,
    WorkReply,
    WorkRequest,
    active_list_wire_size,
    interval_wire_size,
    wire_size,
)
from repro.grid.simulator.metrics import MetricsCollector


class TestWireSizes:
    def test_interval_wire_size_constant(self):
        # The headline property: two big integers no matter the span.
        small = interval_wire_size(Interval(0, 10))
        huge = interval_wire_size(Interval(0, 10**64))
        assert small == huge == 64

    def test_none_interval_is_free(self):
        assert interval_wire_size(None) == 0

    def test_active_list_grows_with_cardinality(self):
        assert active_list_wire_size(10, 50) < active_list_wire_size(100, 50)
        assert active_list_wire_size(10, 5) < active_list_wire_size(10, 50)

    def test_interval_beats_active_list_for_real_frontiers(self):
        # a Ta056 frontier has ~P*branching/2 nodes
        assert interval_wire_size(Interval(0, 1)) < active_list_wire_size(2, 50)

    def test_all_messages_have_sizes(self):
        iv = Interval(3, 9)
        messages = [
            WorkRequest("w", 1.0),
            WorkReply(iv, 10.0),
            WorkReply(None, 10.0, terminate=True),
            IntervalUpdate("w", iv, 5, 7),
            UpdateReply(iv, 10.0),
            SolutionPush("w", 9.0, (1, 2, 3)),
            SolutionAck(9.0),
        ]
        for msg in messages:
            assert wire_size(msg) > 0

    def test_terminate_reply_smaller_than_grant(self):
        grant = WorkReply(Interval(0, 10), 1.0)
        term = WorkReply(None, 1.0, terminate=True)
        assert term.wire_size() < grant.wire_size()

    def test_solution_push_scales_with_solution(self):
        short = SolutionPush("w", 1.0, (1,))
        long = SolutionPush("w", 1.0, tuple(range(50)))
        assert long.wire_size() > short.wire_size()


class TestMetricsCollector:
    def test_join_leave_series(self):
        m = MetricsCollector(total_leaves=100)
        m.worker_joined(1.0)
        m.worker_joined(2.0)
        m.worker_left(3.0)
        assert m.series == [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 1)]

    def test_average_and_peak(self):
        m = MetricsCollector(100)
        m.worker_joined(0.0)   # 1 worker from 0
        m.worker_joined(5.0)   # 2 workers from 5
        avg, peak = m.average_and_peak_workers(horizon=10.0)
        assert avg == pytest.approx(1.5)
        assert peak == 2

    def test_exploitation_ratios(self):
        m = MetricsCollector(100)
        m.add_busy("w0", 97.0)
        m.add_available("w0", 100.0)
        m.add_farmer_busy(1.7)
        t2 = m.table2(wall_clock=100.0, best_cost=3679.0, optimum_proved=True)
        assert t2.worker_exploitation == pytest.approx(0.97)
        assert t2.coordinator_exploitation == pytest.approx(0.017)

    def test_redundancy_from_overlap(self):
        m = MetricsCollector(total_leaves=1000)
        m.add_exploration(nodes=10, consumed=1100)
        t2 = m.table2(10.0, 1.0, True)
        assert t2.redundant_node_rate == pytest.approx(100 / 1100)

    def test_no_redundancy_when_under_covered(self):
        m = MetricsCollector(total_leaves=1000)
        m.add_exploration(nodes=10, consumed=400)
        assert m.table2(10.0, 1.0, False).redundant_node_rate == 0.0

    def test_zero_division_guards(self):
        m = MetricsCollector(10)
        t2 = m.table2(wall_clock=0.0, best_cost=float("inf"), optimum_proved=False)
        assert t2.worker_exploitation == 0.0
        assert t2.coordinator_exploitation == 0.0
        assert t2.redundant_node_rate == 0.0

    def test_availability_series_resampled(self):
        m = MetricsCollector(10)
        m.worker_joined(1.0)
        m.worker_joined(2.0)
        samples = m.availability_series(sample_period=1.0, horizon=3.0)
        assert samples == [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 2)]

    def test_message_accounting(self):
        m = MetricsCollector(10)
        m.message_sent(100)
        m.message_sent(50)
        assert m.messages == 2
        assert m.message_bytes == 150

    def test_solution_trajectory(self):
        m = MetricsCollector(10)
        m.solution_improved(1.0, 700.0)
        m.solution_improved(2.0, 650.0)
        assert m.improvements == [(1.0, 700.0), (2.0, 650.0)]

"""Tests for the batched makespan kernel."""

import numpy as np
import pytest

from repro.exceptions import ProblemError
from repro.problems.flowshop import makespan, random_instance
from repro.problems.flowshop.batch import makespans_batch, random_permutations


class TestBatchedMakespan:
    def test_matches_scalar_sweep(self):
        inst = random_instance(9, 5, seed=4)
        perms = random_permutations(9, batch=32, seed=7)
        batch_values = makespans_batch(inst, perms)
        for row, value in zip(perms, batch_values):
            assert makespan(inst, list(row)) == value

    def test_single_row_batch(self):
        inst = random_instance(5, 3, seed=1)
        perm = [[3, 1, 4, 0, 2]]
        assert makespans_batch(inst, perm)[0] == makespan(inst, perm[0])

    def test_identity_batch_all_equal(self):
        inst = random_instance(6, 4, seed=2)
        perms = [list(range(6))] * 8
        values = makespans_batch(inst, perms)
        assert len(set(values.tolist())) == 1

    def test_wrong_width_rejected(self):
        inst = random_instance(5, 3, seed=1)
        with pytest.raises(ProblemError):
            makespans_batch(inst, [[0, 1, 2]])

    def test_non_permutation_row_rejected(self):
        inst = random_instance(4, 2, seed=1)
        with pytest.raises(ProblemError):
            makespans_batch(inst, [[0, 1, 2, 2]])

    def test_dtype_and_shape(self):
        inst = random_instance(6, 3, seed=9)
        out = makespans_batch(inst, random_permutations(6, 10, seed=1))
        assert out.shape == (10,)
        assert out.dtype == np.int64


class TestRandomPermutations:
    def test_rows_are_permutations(self):
        perms = random_permutations(7, batch=20, seed=3)
        expected = list(range(7))
        for row in perms:
            assert sorted(row.tolist()) == expected

    def test_deterministic(self):
        a = random_permutations(6, 5, seed=8)
        b = random_permutations(6, 5, seed=8)
        assert (a == b).all()

    def test_varied(self):
        perms = random_permutations(8, batch=30, seed=2)
        assert len({tuple(r) for r in perms.tolist()}) > 20

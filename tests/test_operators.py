"""Tests for the partitioning and selection policy functions (§4.2)."""

import pytest

from repro.core import Interval
from repro.core.operators import (
    partition_point,
    requester_share_length,
    select_for_request,
)


class TestPartitionPoint:
    def test_equal_powers_split_in_half(self):
        assert partition_point(Interval(0, 100), 1.0, 1.0) == 50

    def test_null_holder_gives_begin(self):
        # "a virtual process which has a null power ... C equals A"
        assert partition_point(Interval(40, 100), 0.0, 1.0) == 40

    def test_both_null_gives_begin(self):
        assert partition_point(Interval(40, 100), 0.0, 0.0) == 40

    def test_powerful_holder_keeps_most(self):
        c = partition_point(Interval(0, 100), 9.0, 1.0)
        assert c == 90

    def test_integer_powers_use_exact_arithmetic(self):
        # With int powers the division is exact big-int floor division.
        huge = 10**30
        c = partition_point(Interval(0, huge), 1, 3)
        assert c == huge // 4

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            partition_point(Interval(0, 10), -1.0, 1.0)

    def test_point_stays_inside_interval(self):
        iv = Interval(10, 20)
        for hp in (0.0, 0.5, 1.0, 10.0):
            for rp in (0.1, 1.0, 5.0):
                assert 10 <= partition_point(iv, hp, rp) <= 20


class TestRequesterShare:
    def test_share_length(self):
        assert requester_share_length(Interval(0, 100), 1.0, 1.0) == 50
        assert requester_share_length(Interval(0, 100), 0.0, 1.0) == 100

    def test_share_plus_keep_equals_length(self):
        iv = Interval(7, 107)
        c = partition_point(iv, 2.0, 3.0)
        assert (c - iv.begin) + requester_share_length(iv, 2.0, 3.0) == iv.length


class TestSelection:
    def test_picks_largest_share_not_largest_interval(self):
        # The paper: "The selection operator does not choose the
        # greatest interval ... but the one which produces the greatest
        # possible interval [C, B)."
        candidates = [
            ("big-held", Interval(0, 1000), 99.0),  # share = 10
            ("small-orphan", Interval(5000, 5200), 0.0),  # share = 200
        ]
        assert select_for_request(candidates, 1.0) == "small-orphan"

    def test_empty_candidates(self):
        assert select_for_request([], 1.0) is None

    def test_single_candidate(self):
        assert select_for_request([("only", Interval(0, 10), 1.0)], 1.0) == "only"

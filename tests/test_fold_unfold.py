"""Tests for the fold and unfold operators (paper §3.4–§3.5).

These are the paper's two central operators; the suite checks the
eq. 10 shortcut against the eq. 8 union, the minimality/uniqueness of
eq. 11, the round-trip laws, and the <P-decompositions cost claim.
"""

import pytest

from repro.core import (
    ActiveList,
    ActiveNode,
    Interval,
    TreeShape,
    fold,
    fold_by_union,
    node_range,
    unfold,
    unfold_with_stats,
)
from repro.exceptions import FoldError


def all_intervals(total: int):
    for begin in range(total + 1):
        for end in range(begin, total + 1):
            yield Interval(begin, end)


class TestFold:
    def test_fold_single_root(self):
        shape = TreeShape.permutation(4)
        active = ActiveList.whole_tree(shape)
        assert fold(active) == Interval(0, 24)

    def test_fold_empty_list_is_empty_interval(self):
        assert fold(ActiveList(TreeShape.binary(3))).is_empty()

    def test_fold_uses_only_first_and_last(self):
        # eq. 10 on the paper's Figure 4 situation: a mid-DFS frontier.
        shape = TreeShape.permutation(3)
        active = ActiveList.from_rank_paths(
            shape, [(0, 1, 0), (1,), (2,)]
        )
        assert fold(active) == Interval(1, 6)

    def test_fold_matches_union_reference(self):
        shape = TreeShape.permutation(4)
        for interval in [Interval(0, 24), Interval(5, 17), Interval(1, 2)]:
            active = unfold(shape, interval)
            assert fold(active) == fold_by_union(active)

    def test_noncontiguous_list_rejected(self):
        shape = TreeShape.permutation(3)
        with pytest.raises(FoldError):
            ActiveList.from_rank_paths(shape, [(0,), (2,)])


class TestUnfold:
    def test_unfold_whole_range_gives_root(self):
        shape = TreeShape.permutation(4)
        active = unfold(shape, Interval(0, 24))
        assert active.rank_paths() == [()]

    def test_unfold_empty_interval(self):
        shape = TreeShape.permutation(4)
        assert unfold(shape, Interval(7, 7)).is_empty()
        assert unfold(shape, Interval(9, 3)).is_empty()

    def test_unfold_clips_to_tree(self):
        shape = TreeShape.binary(3)
        active = unfold(shape, Interval(-5, 100))
        assert fold(active) == Interval(0, 8)

    def test_unfold_single_leaf(self):
        shape = TreeShape.permutation(4)
        active = unfold(shape, Interval(13, 14))
        assert len(active) == 1
        assert active[0].range == Interval(13, 14)

    def test_unfold_covers_exactly_the_interval(self):
        shape = TreeShape.permutation(4)
        for interval in all_intervals(24):
            active = unfold(shape, interval)
            covered = sorted(
                n
                for node in active
                for n in range(node.range.begin, node.range.end)
            )
            assert covered == list(range(interval.begin, interval.end))

    def test_unfold_minimality_eq11(self):
        # Every emitted node's father range must NOT be included in the
        # interval — otherwise the father should have been emitted.
        shape = TreeShape.permutation(4)
        for interval in [Interval(5, 17), Interval(0, 12), Interval(3, 23)]:
            for node in unfold(shape, interval):
                if node.depth == 0:
                    continue
                father = node.ranks[:-1]
                father_range = node_range(shape, father)
                assert not interval.contains_interval(father_range)

    def test_unfold_list_is_sorted_and_contiguous(self):
        # The ActiveList constructor enforces eq. 9; a successful
        # construction is itself the assertion, but double-check order.
        shape = TreeShape([3, 2, 2])
        for interval in all_intervals(12):
            active = unfold(shape, interval)
            numbers = [node.number for node in active]
            assert numbers == sorted(numbers)


class TestRoundTrips:
    def test_fold_after_unfold_is_identity_on_intervals(self):
        shape = TreeShape.permutation(4)
        for interval in all_intervals(24):
            if interval.is_empty():
                assert fold(unfold(shape, interval)).is_empty()
            else:
                assert fold(unfold(shape, interval)) == interval

    def test_unfold_after_fold_is_identity_on_frontiers(self):
        # Build genuine DFS frontiers by unfolding, then round-trip.
        shape = TreeShape([2, 3, 2])
        for interval in all_intervals(shape.total_leaves):
            active = unfold(shape, interval)
            assert unfold(shape, fold(active)) == active


class TestUnfoldCost:
    def test_decomposition_count_below_2P(self):
        # §3.5: "the B&B performs less than P decompositions" per
        # boundary; with two boundaries the bound is 2P.
        shape = TreeShape.permutation(7)
        P = shape.leaf_depth
        for interval in [
            Interval(1, 5039),
            Interval(123, 4567),
            Interval(2519, 2521),
            Interval(0, 1),
        ]:
            _, stats = unfold_with_stats(shape, interval)
            assert stats.decompositions <= 2 * P

    def test_cost_independent_of_interval_length(self):
        shape = TreeShape.permutation(12)
        total = shape.total_leaves
        _, small = unfold_with_stats(shape, Interval(10, 20))
        _, huge = unfold_with_stats(shape, Interval(1, total - 1))
        assert huge.decompositions <= 2 * shape.leaf_depth
        assert small.decompositions <= 2 * shape.leaf_depth

    def test_emitted_count_bounded_by_decomposition_children(self):
        shape = TreeShape.permutation(6)
        active, stats = unfold_with_stats(shape, Interval(37, 650))
        assert stats.nodes_emitted == len(active)
        assert stats.nodes_emitted <= stats.children_examined

"""Property tests: batched child kernels == scalar bounds, exactly.

PR 2's engine fast path prunes children with bounds produced by the
``*_children`` batch kernels instead of per-node ``lower_bound``
calls.  Its correctness argument rests on *exact* (not approximate)
agreement between the two, so these tests quantify over randomized
instances and partial schedules and require equality entry for entry —
and, end to end, that ``solve()`` returns identical optima and
byte-identical ``ExplorationStats`` on both paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import solve
from repro.exceptions import ProblemError
from repro.problems.flowshop import (
    BoundData,
    FlowShopProblem,
    advance_fronts_batch,
    random_instance,
)
from repro.problems.flowshop.makespan import advance_front
from repro.problems.tsp import (
    TSPProblem,
    one_tree_bound,
    one_tree_bound_networkx,
    outgoing_edge_bound,
    outgoing_edge_bound_children,
    random_tsp,
)

PAIR_STRATEGIES = ("adjacent", "adjacent+ends", "all")


@st.composite
def flowshop_node(draw):
    """A random instance plus a random internal node of its tree."""
    jobs = draw(st.integers(3, 9))
    machines = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 10_000))
    instance = random_instance(jobs, machines, seed=seed)
    prefix_len = draw(st.integers(0, jobs - 2))
    prefix = draw(st.permutations(range(jobs)))[:prefix_len]
    strategy = draw(st.sampled_from(PAIR_STRATEGIES))
    return instance, tuple(prefix), strategy


def _node_front_and_remaining(instance, prefix):
    front = np.zeros(instance.machines, dtype=np.int64)
    for job in prefix:
        advance_front(front, instance.processing_times[job], out=front)
    remaining = np.array(
        sorted(set(range(instance.jobs)) - set(prefix)), dtype=np.intp
    )
    return front, remaining


class TestFlowshopKernels:
    @given(flowshop_node())
    @settings(max_examples=60, deadline=None)
    def test_batched_equals_scalar_per_child(self, case):
        instance, prefix, strategy = case
        data = BoundData(instance, pair_strategy=strategy)
        front, remaining = _node_front_and_remaining(instance, prefix)
        fronts = advance_fronts_batch(
            front, instance.processing_times[remaining]
        )
        lb1 = data.one_machine_children(fronts, remaining)
        lb2 = data.two_machine_children(fronts, remaining)
        combined = data.combined_children(fronts, remaining)
        for c in range(remaining.size):
            child_remaining = np.delete(remaining, c)
            child_front = fronts[c]
            assert lb1[c] == data.one_machine(child_front, child_remaining)
            if child_remaining.size and data.pairs:
                assert lb2[c] == data.two_machine(
                    child_front, child_remaining
                )
            assert combined[c] == data.combined(child_front, child_remaining)

    @given(flowshop_node())
    @settings(max_examples=40, deadline=None)
    def test_combined_accepts_prebuilt_p_rem(self, case):
        instance, prefix, strategy = case
        data = BoundData(instance, pair_strategy=strategy)
        front, remaining = _node_front_and_remaining(instance, prefix)
        p_rem = instance.processing_times[remaining]
        fronts = advance_fronts_batch(front, p_rem)
        np.testing.assert_array_equal(
            data.combined_children(fronts, remaining),
            data.combined_children(fronts, remaining, p_rem=p_rem),
        )

    @given(flowshop_node())
    @settings(max_examples=40, deadline=None)
    def test_child_fronts_match_scalar_advance(self, case):
        instance, prefix, _ = case
        front, remaining = _node_front_and_remaining(instance, prefix)
        fronts = advance_fronts_batch(
            front, instance.processing_times[remaining]
        )
        for c, job in enumerate(remaining):
            expected = advance_front(front, instance.processing_times[job])
            np.testing.assert_array_equal(fronts[c], expected)

    def test_single_child_family(self):
        instance = random_instance(4, 3, seed=7)
        data = BoundData(instance)
        front, remaining = _node_front_and_remaining(instance, (0, 1, 2))
        assert remaining.size == 1
        fronts = advance_fronts_batch(
            front, instance.processing_times[remaining]
        )
        # The single child is a leaf-like state: bound == its Cmax.
        assert data.one_machine_children(fronts, remaining)[0] == fronts[0, -1]
        assert data.two_machine_children(fronts, remaining)[0] == fronts[0, -1]
        assert data.combined_children(fronts, remaining)[0] == fronts[0, -1]


class TestTSPKernels:
    @given(
        st.integers(4, 9),
        st.integers(0, 10_000),
        st.integers(0, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_batched_equals_scalar_per_child(self, cities, seed, prefix_len):
        instance = random_tsp(cities, seed=seed)
        prefix_len = min(prefix_len, cities - 3)
        rng = np.random.default_rng(seed)
        others = list(rng.permutation(np.arange(1, cities)))
        path = tuple([0] + [int(c) for c in others[:prefix_len]])
        remaining = tuple(sorted(int(c) for c in others[prefix_len:]))
        cost = sum(
            int(instance.distances[path[i], path[i + 1]])
            for i in range(len(path) - 1)
        )
        batched = outgoing_edge_bound_children(
            instance, path, cost, remaining
        )
        d = instance.distances
        for c, city in enumerate(remaining):
            child_path = path + (city,)
            child_cost = cost + int(d[path[-1], city])
            child_remaining = remaining[:c] + remaining[c + 1 :]
            assert batched[c] == outgoing_edge_bound(
                instance, child_path, child_cost, child_remaining
            )

    def test_rejects_leaf_children(self):
        instance = random_tsp(4, seed=0)
        with pytest.raises(ProblemError):
            outgoing_edge_bound_children(instance, (0, 1, 2), 10, (3,))

    @given(st.integers(5, 10), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_scipy_one_tree_matches_networkx_oracle(self, cities, seed):
        instance = random_tsp(cities, seed=seed)
        for special in range(min(cities, 3)):
            assert one_tree_bound(instance, special) == one_tree_bound_networkx(
                instance, special
            )


class TestSolveParity:
    """Both engine paths must be indistinguishable except for speed."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("pair_strategy", ("adjacent+ends", "all"))
    def test_flowshop(self, seed, pair_strategy):
        instance = random_instance(7, 4, seed=seed)
        results = [
            solve(
                FlowShopProblem(instance, pair_strategy=pair_strategy),
                batched_bounds=batched,
            )
            for batched in (False, True)
        ]
        scalar, batched = results
        assert scalar.cost == batched.cost
        assert scalar.solution == batched.solution
        assert vars(scalar.stats) == vars(batched.stats)

    @pytest.mark.parametrize("seed", range(4))
    def test_tsp(self, seed):
        instance = random_tsp(7, seed=seed)
        results = [
            solve(TSPProblem(instance), batched_bounds=batched)
            for batched in (False, True)
        ]
        scalar, batched = results
        assert scalar.cost == batched.cost
        assert scalar.solution == batched.solution
        assert vars(scalar.stats) == vars(batched.stats)

    @pytest.mark.parametrize("bound", ("lb1", "lb2", "combined"))
    def test_flowshop_bound_variants(self, bound):
        instance = random_instance(7, 3, seed=11)
        results = [
            solve(
                FlowShopProblem(instance, bound=bound),
                batched_bounds=batched,
            )
            for batched in (False, True)
        ]
        scalar, batched = results
        assert scalar.cost == batched.cost
        assert vars(scalar.stats) == vars(batched.stats)

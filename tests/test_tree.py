"""Unit tests for tree shapes and per-depth weights (paper §3.1)."""

import math

import pytest

from repro.core import TreeShape
from repro.exceptions import TreeShapeError


class TestConstruction:
    def test_permutation_branching(self):
        shape = TreeShape.permutation(5)
        assert shape.branching == (5, 4, 3, 2, 1)

    def test_permutation_satisfies_eq4(self):
        # |sons(n)| = |sons(father(n))| - 1 for every non-root node
        shape = TreeShape.permutation(6)
        for depth in range(1, shape.leaf_depth):
            assert shape.num_children(depth) == shape.num_children(depth - 1) - 1

    def test_binary_branching(self):
        assert TreeShape.binary(4).branching == (2, 2, 2, 2)

    def test_uniform_branching(self):
        assert TreeShape.uniform(3, 2).branching == (3, 3)

    def test_custom_branching(self):
        shape = TreeShape([3, 1, 2])
        assert shape.total_leaves == 6

    def test_empty_shape_rejected(self):
        with pytest.raises(TreeShapeError):
            TreeShape([])

    def test_nonpositive_branching_rejected(self):
        with pytest.raises(TreeShapeError):
            TreeShape([2, 0, 2])

    def test_zero_size_permutation_rejected(self):
        with pytest.raises(TreeShapeError):
            TreeShape.permutation(0)

    def test_invalid_binary_depth_rejected(self):
        with pytest.raises(TreeShapeError):
            TreeShape.binary(0)


class TestWeights:
    def test_permutation_weights_are_factorials(self):
        # eq. 3: weight(n) = (P - depth(n))!
        shape = TreeShape.permutation(6)
        for depth in shape.iter_depths():
            assert shape.weight(depth) == math.factorial(6 - depth)

    def test_binary_weights_are_powers_of_two(self):
        # eq. 2: weight(n) = 2 ** (P - depth(n))
        shape = TreeShape.binary(7)
        for depth in shape.iter_depths():
            assert shape.weight(depth) == 2 ** (7 - depth)

    def test_leaf_weight_is_one(self):
        # eq. 1 base case
        for shape in (TreeShape.permutation(4), TreeShape.binary(3)):
            assert shape.weight(shape.leaf_depth) == 1

    def test_weight_vector_matches_recursive_definition(self):
        # eq. 1: weight(internal) = sum of children weights
        shape = TreeShape([3, 2, 4])
        for depth in range(shape.leaf_depth):
            children_total = shape.branching[depth] * shape.weight(depth + 1)
            assert shape.weight(depth) == children_total

    def test_root_weight_is_total_leaves(self):
        shape = TreeShape.permutation(5)
        assert shape.weight(0) == shape.total_leaves == 120

    def test_huge_permutation_weight_exact(self):
        # Ta056's tree: 50! must be exact integer arithmetic.
        shape = TreeShape.permutation(50)
        assert shape.total_leaves == math.factorial(50)

    def test_weight_out_of_range_raises(self):
        shape = TreeShape.binary(3)
        with pytest.raises(TreeShapeError):
            shape.weight(4)
        with pytest.raises(TreeShapeError):
            shape.weight(-1)


class TestGeometry:
    def test_leaf_depth(self):
        assert TreeShape.permutation(4).leaf_depth == 4

    def test_num_children_at_leaf_is_zero(self):
        shape = TreeShape.binary(3)
        assert shape.num_children(3) == 0

    def test_node_count_binary(self):
        # 1 + 2 + 4 + 8 = 15 nodes in a depth-3 binary tree
        assert TreeShape.binary(3).node_count() == 15

    def test_node_count_permutation(self):
        # 1 + 3 + 6 + 6 + 6 nodes for permutation(3)... verify by formula
        shape = TreeShape.permutation(3)
        # depths: 1 root, 3, 6, 6 (last branching=1)
        assert shape.node_count() == 1 + 3 + 6 + 6

    def test_nodes_at_depth(self):
        shape = TreeShape.permutation(4)
        assert [shape.nodes_at_depth(d) for d in shape.iter_depths()] == [
            1,
            4,
            12,
            24,
            24,
        ]

    def test_is_leaf_depth(self):
        shape = TreeShape.uniform(3, 2)
        assert not shape.is_leaf_depth(1)
        assert shape.is_leaf_depth(2)


class TestEqualityAndRepr:
    def test_equality_by_branching(self):
        assert TreeShape([2, 2]) == TreeShape.binary(2)
        assert TreeShape([2, 3]) != TreeShape([3, 2])

    def test_hashable(self):
        assert len({TreeShape.binary(2), TreeShape([2, 2])}) == 1

    def test_repr_roundtrip_families(self):
        assert repr(TreeShape.permutation(5)) == "TreeShape.permutation(5)"
        assert repr(TreeShape.binary(3)) == "TreeShape.binary(3)"
        assert repr(TreeShape.uniform(3, 2)) == "TreeShape.uniform(3, 2)"
        assert "TreeShape([3, 1, 2])" == repr(TreeShape([3, 1, 2]))

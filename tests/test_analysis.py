"""Tests for the analysis helpers (tables, series, records, compare)."""

import pytest

from repro.analysis import (
    Comparison,
    ComparisonSet,
    RECORD_RESOLUTIONS,
    RecordResolution,
    render_table,
    render_table1,
    render_table2,
    render_table3,
    resample,
    series_summary,
    sparkline,
)
from repro.analysis.records import rank_of
from repro.grid.simulator import Table2Stats, paper_platform


def sample_stats(**overrides):
    defaults = dict(
        wall_clock_seconds=25 * 86400.0,
        total_cpu_seconds=22 * 365.25 * 86400.0,
        average_workers=328.0,
        maximum_workers=1195,
        worker_exploitation=0.97,
        coordinator_exploitation=0.017,
        checkpoint_operations=4_094_176,
        work_allocations=129_958,
        explored_nodes=6_508_740_000_000,
        redundant_node_rate=0.0039,
        best_cost=3679.0,
        optimum_proved=True,
    )
    defaults.update(overrides)
    return Table2Stats(**defaults)


class TestRenderTable:
    def test_alignment_and_rule(self):
        out = render_table(["a", "bbb"], [["xx", "y"], ["z", "wwww"]])
        lines = out.splitlines()
        assert lines[0].startswith("a ")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        out = render_table(["h"], [["v"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert "col" in out


class TestTable1:
    def test_paper_rows_total_1889(self):
        out = render_table1()
        assert "Total: 1889" in out
        assert "P4 1.70" in out
        assert "Orsay" in out and "2x216" in out

    def test_platform_spec_variant(self):
        out = render_table1(paper_platform())
        assert "Total: 1889" in out
        assert "Grid5000" in out


class TestTable2:
    def test_paper_values_roundtrip(self):
        # Feeding the paper's own numbers must print the paper's rows.
        out = render_table2(sample_stats())
        assert "25.00 days" in out
        assert "22.0" in out  # years
        assert "97%" in out
        assert "1.7%" in out
        assert "4,094,176" in out
        assert "129,958" in out
        assert "0.39%" in out

    def test_reference_column_present(self):
        out = render_table2(sample_stats())
        assert "Paper (Ta056 run 2)" in out

    def test_scale_note(self):
        out = render_table2(sample_stats(), scale_note="scaled 10x")
        assert "scaled 10x" in out

    def test_rows_order_matches_paper(self):
        labels = [label for label, _ in sample_stats().rows()]
        assert labels == [
            "Running wall clock time",
            "Total cpu time",
            "Average number of workers",
            "Maximum number of workers",
            "Worker CPU exploitation",
            "Coordinator CPU exploitation",
            "Checkpoint operations",
            "Work allocations",
            "Explored nodes",
            "Redundant nodes",
        ]


class TestTable3:
    def test_five_records_in_paper_order(self):
        assert [r.instance for r in RECORD_RESOLUTIONS] == [
            "Sw24978", "Ta056", "D15112", "Nug30", "Usa13509",
        ]

    def test_render_contains_all_instances(self):
        out = render_table3()
        for r in RECORD_RESOLUTIONS:
            assert r.instance in out

    def test_ta056_ranks_second(self):
        # "the second resolution of Ta056 ranks second"
        assert rank_of(22.0) == 2

    def test_extra_record_reranks(self):
        mine = RecordResolution(0, "Flow-Shop", "sim", "simulated", 30.0, "")
        out = render_table3(extra=mine)
        lines = [l for l in out.splitlines() if "sim" in l]
        assert lines[0].startswith("2")  # behind Sw24978's 84 years


class TestSeries:
    def test_resample_step_function(self):
        series = [(0.0, 0), (1.0, 5), (3.0, 2)]
        out = resample(series, horizon=4.0, samples=5)
        assert out == [(0.0, 0), (1.0, 5), (2.0, 5), (3.0, 2), (4.0, 2)]

    def test_resample_single_sample(self):
        assert resample([(0.0, 3)], 10.0, 1) == [(0.0, 3)]

    def test_resample_invalid(self):
        with pytest.raises(ValueError):
            resample([], 1.0, 0)

    def test_series_summary(self):
        series = [(0.0, 10), (5.0, 20)]
        avg, peak = series_summary(series, horizon=10.0)
        assert avg == pytest.approx(15.0)
        assert peak == 20

    def test_series_summary_empty(self):
        assert series_summary([], 10.0) == (0.0, 0)

    def test_sparkline_shape(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert len(line) == 8
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_downsamples(self):
        assert len(sparkline(list(range(1000)), width=50)) == 50

    def test_sparkline_empty_and_flat(self):
        assert sparkline([]) == ""
        assert set(sparkline([0, 0, 0])) == {"▁"}


class TestCompare:
    def test_markdown_table(self):
        cs = ComparisonSet()
        cs.add("Table 2", "worker exploitation", "97%", "99%", True, "")
        md = cs.markdown(title="t")
        assert "| Table 2 |" in md
        assert "✓" in md

    def test_failures_listed(self):
        cs = ComparisonSet()
        cs.add("X", "m", "1", "2", False, "off")
        assert not cs.all_hold()
        assert len(cs.failures()) == 1

    def test_text_rendering(self):
        cs = ComparisonSet()
        cs.add("Fig. 7", "peak", "1195", "1180", True)
        assert "OK " in cs.text()
        assert "Fig. 7" in cs.text()

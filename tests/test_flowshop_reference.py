"""Cross-validation of the Taillard generator against literature optima.

For the fully-solved 20x5 class, the recorded optimum must sit between
our trivial lower bound and our NEH upper bound on the *regenerated*
instance — ten independent checks that the seed table, the generator
and the kernels all agree with thirty years of literature.
"""

import pytest

from repro.problems.flowshop import (
    KNOWN_OPTIMA,
    known_optimum,
    neh,
    optimality_gap,
    taillard_instance,
)


class TestKnownOptima:
    @pytest.mark.parametrize("index", range(1, 11))
    def test_20x5_optimum_bracketed_by_our_bounds(self, index):
        instance = taillard_instance(20, 5, index)
        optimum = known_optimum(20, 5, index)
        _, upper = neh(instance)
        assert instance.trivial_lower_bound() <= optimum <= upper

    @pytest.mark.parametrize("index", range(1, 11))
    def test_neh_gap_in_plausible_range(self, index):
        # NEH's literature reputation: typically within a few percent.
        instance = taillard_instance(20, 5, index)
        _, upper = neh(instance)
        gap = optimality_gap(upper, 20, 5, index)
        assert 0.0 <= gap < 0.10

    def test_ta001_exact_values(self):
        assert known_optimum(20, 5, 1) == 1278
        _, upper = neh(taillard_instance(20, 5, 1))
        assert upper == 1286  # the published NEH result

    def test_ta056_recorded(self):
        assert known_optimum(50, 20, 6) == 3679

    def test_unknown_instance_returns_none(self):
        assert known_optimum(100, 20, 3) is None
        assert optimality_gap(5000, 100, 20, 3) is None

    def test_gap_sign_convention(self):
        assert optimality_gap(1278, 20, 5, 1) == 0.0
        assert optimality_gap(1290, 20, 5, 1) > 0.0
        assert optimality_gap(1270, 20, 5, 1) < 0.0  # red flag

    def test_all_recorded_classes_resolvable(self):
        for jobs, machines, index in KNOWN_OPTIMA:
            instance = taillard_instance(jobs, machines, index)
            assert instance.jobs == jobs

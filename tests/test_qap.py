"""Tests for the QAP substrate and its Gilmore–Lawler bound."""

import itertools

import numpy as np
import pytest

from repro.core import solve
from repro.exceptions import ProblemError
from repro.problems.qap import QAPInstance, QAPProblem, nugent_like, random_qap


def brute_force_qap(inst):
    return min(
        inst.assignment_cost(p)
        for p in itertools.permutations(range(inst.size))
    )


class TestInstance:
    def test_assignment_cost_hand_computed(self):
        flows = [[0, 2], [2, 0]]
        dists = [[0, 3], [3, 0]]
        inst = QAPInstance(flows, dists)
        # both orderings cost 2*3 + 2*3 = 12 (symmetric pair counted twice)
        assert inst.assignment_cost([0, 1]) == 12
        assert inst.assignment_cost([1, 0]) == 12

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ProblemError):
            QAPInstance([[0, 1], [1, 0]], [[0]])

    def test_negative_flow_rejected(self):
        with pytest.raises(ProblemError):
            QAPInstance([[0, -1], [1, 0]], [[0, 1], [1, 0]])

    def test_invalid_permutation_rejected(self):
        inst = random_qap(4, seed=1)
        with pytest.raises(ProblemError):
            inst.assignment_cost([0, 0, 1, 2])

    def test_random_qap_symmetric_hollow(self):
        inst = random_qap(6, seed=2)
        for m in (inst.flows, inst.distances):
            assert np.array_equal(m, m.T)
            assert not np.diagonal(m).any()

    def test_nugent_like_distances_are_manhattan(self):
        inst = nugent_like(2, 3, seed=1)
        # locations 0=(0,0) and 5=(1,2): Manhattan distance 3
        assert inst.distances[0, 5] == 3
        assert inst.size == 6


class TestProblem:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_optimum_matches_brute_force(self, seed):
        inst = random_qap(6, seed=seed)
        result = solve(QAPProblem(inst))
        assert result.cost == brute_force_qap(inst)

    def test_nugent_like_optimum(self):
        inst = nugent_like(2, 3, seed=7)
        result = solve(QAPProblem(inst))
        assert result.cost == brute_force_qap(inst)
        assert inst.assignment_cost(result.solution) == result.cost

    def test_gilmore_lawler_admissible_everywhere(self):
        inst = random_qap(5, seed=3)
        prob = QAPProblem(inst)
        optimum = brute_force_qap(inst)
        # Check the bound at every first- and second-level node.
        root = prob.root_state()
        assert prob.lower_bound(root, 0) <= optimum
        for child in prob.branch(root, 0):
            best_below = min(
                inst.assignment_cost(child.assigned + rest)
                for rest in itertools.permutations(
                    [l for l in range(5) if l not in child.assigned]
                )
            )
            assert prob.lower_bound(child, 1) <= best_below

    def test_gl_bound_prunes(self):
        inst = random_qap(6, seed=5)
        result = solve(QAPProblem(inst))
        import math

        exhaustive_leaves = math.factorial(6)
        assert result.stats.leaves_evaluated < exhaustive_leaves

    def test_leaf_cost_matches_assignment_cost(self):
        inst = random_qap(4, seed=8)
        result = solve(QAPProblem(inst))
        assert inst.assignment_cost(result.solution) == result.cost

"""Edge-case tests for the engine, stats and incumbents."""

import math

import pytest

from repro.core import (
    ExplorationStats,
    Incumbent,
    Interval,
    IntervalExplorer,
    TreeShape,
    fold,
)

from tests.helpers import CountingLeafProblem, PermutationCostProblem, toy_cost_matrix


class TestRestrictStraddle:
    def test_restrict_through_a_frontier_nodes_range(self):
        # Cut the interval at a point strictly inside a frontier node's
        # range: exploration must stop exactly at the cut.
        shape = TreeShape.permutation(4)
        problem = CountingLeafProblem(shape)
        explorer = IntervalExplorer(problem, Interval(0, 24))
        explorer.step(1)  # decompose the root: frontier = 4 children
        explorer.restrict_end(9)  # inside child [1]'s range [6, 12)
        explorer.run()
        assert problem.visited_leaves == list(range(9))

    def test_restrict_to_current_position_finishes(self):
        shape = TreeShape.permutation(4)
        problem = CountingLeafProblem(shape)
        explorer = IntervalExplorer(problem, Interval(0, 24))
        explorer.step(5)
        position = explorer.remaining_interval().begin
        explorer.restrict_end(position)
        report = explorer.step(10)
        assert explorer.is_finished()
        assert max(problem.visited_leaves, default=-1) < position

    def test_repeated_restricts_monotone(self):
        shape = TreeShape.binary(6)
        problem = CountingLeafProblem(shape)
        explorer = IntervalExplorer(problem, Interval(0, 64))
        for end in (60, 50, 50, 33):
            explorer.restrict_end(end)
            assert explorer.end == end
        explorer.run()
        assert max(problem.visited_leaves) == 32


class TestStepSemantics:
    def test_finishing_mid_budget_reports_finished(self):
        problem = CountingLeafProblem(TreeShape.binary(3))
        explorer = IntervalExplorer(problem, Interval(0, 8))
        report = explorer.step(10_000)
        assert report.finished
        assert report.nodes_processed < 10_000

    def test_zero_budget_step_is_noop(self):
        problem = CountingLeafProblem(TreeShape.binary(3))
        explorer = IntervalExplorer(problem)
        report = explorer.step(0)
        assert report.nodes_processed == 0
        assert not report.finished

    def test_run_after_finish_is_harmless(self):
        problem = CountingLeafProblem(TreeShape.binary(3))
        explorer = IntervalExplorer(problem)
        explorer.run()
        explorer.run()
        assert explorer.is_finished()

    def test_improved_flag(self):
        problem = PermutationCostProblem(toy_cost_matrix(5, 3))
        explorer = IntervalExplorer(problem)
        saw_improvement = False
        while not explorer.is_finished():
            if explorer.step(3).improved:
                saw_improvement = True
        assert saw_improvement


class TestFoldConsistencyUnderExploration:
    def test_fold_matches_remaining_interval_every_step(self):
        problem = CountingLeafProblem(TreeShape.permutation(5))
        explorer = IntervalExplorer(problem, Interval(7, 103))
        while not explorer.is_finished():
            active = explorer.active_list()
            if len(active):
                assert fold(active) == explorer.remaining_interval()
            explorer.step(4)


class TestStats:
    def test_merge_adds_counters(self):
        a = ExplorationStats(nodes_explored=5, nodes_pruned=2)
        b = ExplorationStats(nodes_explored=3, leaves_evaluated=1)
        a.merge(b)
        assert a.nodes_explored == 8
        assert a.nodes_pruned == 2
        assert a.leaves_evaluated == 1

    def test_as_dict_roundtrip(self):
        s = ExplorationStats(nodes_explored=7, improvements=2)
        d = s.as_dict()
        assert d["nodes_explored"] == 7
        assert d["improvements"] == 2
        assert set(d) == {
            "nodes_explored", "nodes_decomposed", "nodes_pruned",
            "leaves_evaluated", "improvements", "bound_evaluations",
            "nodes_skipped_out_of_range",
        }

    def test_node_accounting_balances(self):
        problem = PermutationCostProblem(toy_cost_matrix(6, 5))
        explorer = IntervalExplorer(problem)
        explorer.run()
        s = explorer.stats
        assert (
            s.nodes_explored
            == s.nodes_decomposed + s.nodes_pruned + s.leaves_evaluated
        )


class TestIncumbent:
    def test_update_and_improves_on(self):
        a = Incumbent()
        assert a.update(10.0, "x")
        assert not a.update(11.0, "y")
        assert a.solution == "x"
        b = Incumbent(9.0, "z")
        assert b.improves_on(a)

    def test_copy_is_independent(self):
        a = Incumbent(5.0, (1, 2))
        b = a.copy()
        b.update(1.0, (2, 1))
        assert a.cost == 5.0

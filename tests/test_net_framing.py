"""Wire framing: exhaustive encode/decode round-trip properties.

The transports promise that the frame encoding is the identity on
every protocol message — intervals keep their exact (arbitrarily
large) integers, costs keep their exact floats including ``inf``,
tuples come back as tuples.  Hypothesis drives one property per
message type plus the streaming frame parser.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.net.framing import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    FrameBuffer,
    FrameError,
    Heartbeat,
    Hello,
    MessageDecodeError,
    Welcome,
    decode_message,
    encode_frame,
    encode_message,
)
from repro.grid.runtime.protocol import (
    Ack,
    Bye,
    GrantWork,
    Push,
    Reconciled,
    Request,
    Terminate,
    Update,
)

# Leaf numbering reaches 20! and beyond: intervals must survive as
# exact bignums, which is why the payload is JSON and not a fixed-width
# binary layout.
_leaf = st.integers(min_value=0, max_value=10**40)
_interval = st.tuples(_leaf, _leaf)
_cost = st.one_of(
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=True, width=64),
)
_worker = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=30
)
_solution = st.one_of(
    st.none(),
    st.tuples(),
    st.lists(st.integers(0, 10**6), max_size=8).map(tuple),
)
_seq = st.integers(min_value=0, max_value=2**31)
_stats = st.dictionaries(
    st.text(max_size=16),
    st.one_of(
        st.integers(-(10**6), 10**6),
        st.floats(allow_nan=False, allow_infinity=False, width=64),
    ),
    max_size=6,
)

_MESSAGES = st.one_of(
    st.builds(Request, worker=_worker, power=_cost, seq=_seq),
    st.builds(
        Update,
        worker=_worker,
        interval=_interval,
        nodes=st.integers(0, 10**9),
        consumed=st.integers(0, 10**9),
        seq=_seq,
    ),
    st.builds(Push, worker=_worker, cost=_cost, solution=_solution, seq=_seq),
    st.builds(Bye, worker=_worker, stats=_stats, seq=_seq),
    st.builds(GrantWork, interval=_interval, best_cost=_cost, seq=_seq),
    st.builds(Reconciled, interval=_interval, best_cost=_cost, seq=_seq),
    st.builds(Ack, best_cost=_cost, seq=_seq),
    st.builds(Terminate, best_cost=_cost, seq=_seq),
    st.builds(
        Hello,
        worker=_worker,
        power=_cost,
        epoch=st.integers(min_value=0, max_value=9),
    ),
    st.builds(
        Welcome,
        spec=st.one_of(
            st.none(),
            st.fixed_dictionaries(
                {
                    "factory": st.text(max_size=20),
                    "args": st.lists(st.integers(), max_size=3),
                    "kwargs": st.dictionaries(
                        st.text(max_size=8), st.integers(), max_size=3
                    ),
                }
            ),
        ),
        best_cost=_cost,
        epoch=st.integers(min_value=0, max_value=9),
    ),
    st.builds(Heartbeat, worker=_worker),
)


class TestRoundTrip:
    @settings(max_examples=300, deadline=None)
    @given(message=_MESSAGES)
    def test_message_roundtrip_is_identity(self, message):
        assert decode_message(encode_message(message)) == message

    @settings(max_examples=100, deadline=None)
    @given(message=_MESSAGES)
    def test_frame_roundtrip_is_identity(self, message):
        frame = encode_frame(message)
        buf = FrameBuffer()
        payloads = buf.feed(frame)
        assert len(payloads) == 1
        assert decode_message(payloads[0]) == message
        assert buf.pending_bytes() == 0

    def test_version_field_travels(self):
        # Runtime protocol messages are stamped with PROTOCOL_VERSION
        # (still 1); the handshake messages carry WIRE_VERSION, bumped
        # to 2 when the epoch field joined Hello/Welcome.
        payload = encode_message(Request("w", seq=3))
        assert b'"version":1' in payload
        assert decode_message(payload).version == 1
        hello = encode_message(Hello("w", epoch=4))
        assert b'"version":%d' % WIRE_VERSION in hello
        decoded = decode_message(hello)
        assert decoded.version == WIRE_VERSION
        assert decoded.epoch == 4

    def test_interval_bignum_exact(self):
        import math

        big = math.factorial(50)
        msg = Update("w", (big, big + 7), nodes=1, consumed=0, seq=1)
        assert decode_message(encode_message(msg)).interval == (big, big + 7)

    def test_infinite_cost_survives(self):
        msg = Ack(float("inf"), seq=1)
        assert decode_message(encode_message(msg)).best_cost == float("inf")


class TestDecodeErrors:
    def test_unknown_type_refused(self):
        with pytest.raises(MessageDecodeError):
            decode_message(b'{"t":"Nonsense","version":1}')

    def test_future_version_refused(self):
        with pytest.raises(MessageDecodeError, match="future"):
            decode_message(
                b'{"t":"Ack","best_cost":1,"seq":0,"version":%d}'
                % (WIRE_VERSION + 1)
            )

    def test_missing_required_field_refused(self):
        with pytest.raises(MessageDecodeError):
            decode_message(b'{"t":"Update","worker":"w","version":1}')

    def test_garbage_refused(self):
        with pytest.raises(MessageDecodeError):
            decode_message(b"\xff\xfenot json")
        with pytest.raises(MessageDecodeError):
            decode_message(b"[1,2,3]")

    def test_unknown_extra_fields_ignored(self):
        # Forward-compatible within a version: new optional fields from
        # a same-version peer are skipped, not fatal.
        msg = decode_message(
            b'{"t":"Ack","best_cost":2.5,"seq":9,"version":1,"novel":true}'
        )
        assert msg == Ack(2.5, seq=9)

    def test_non_wire_object_refused_at_encode(self):
        with pytest.raises(MessageDecodeError):
            encode_message(object())


class TestFrameBuffer:
    def test_byte_by_byte_reassembly(self):
        messages = [Request("w", seq=i) for i in range(1, 4)]
        stream = b"".join(encode_frame(m) for m in messages)
        buf = FrameBuffer()
        out = []
        for i in range(len(stream)):
            out.extend(buf.feed(stream[i : i + 1]))
        assert [decode_message(p) for p in out] == messages
        assert buf.pending_bytes() == 0

    def test_many_frames_in_one_chunk(self):
        messages = [Ack(float(i), seq=i) for i in range(1, 6)]
        stream = b"".join(encode_frame(m) for m in messages)
        out = FrameBuffer().feed(stream)
        assert [decode_message(p) for p in out] == messages

    def test_partial_frame_stays_pending(self):
        frame = encode_frame(Terminate(1.0, seq=1))
        buf = FrameBuffer()
        assert buf.feed(frame[:-2]) == []
        assert buf.pending_bytes() == len(frame) - 2
        (payload,) = buf.feed(frame[-2:])
        assert decode_message(payload) == Terminate(1.0, seq=1)

    def test_oversized_prefix_poisons_stream(self):
        header = struct.pack("!I", MAX_FRAME_BYTES + 1)
        buf = FrameBuffer()
        with pytest.raises(FrameError):
            buf.feed(header)

"""Tests for the TSP lower bounds (outgoing-edge and Held–Karp 1-tree)."""

import itertools

import pytest

from repro.exceptions import ProblemError
from repro.problems.tsp import TSPInstance, random_tsp
from repro.problems.tsp.bounds import (
    best_one_tree_bound,
    one_tree_bound,
    outgoing_edge_bound,
)


def brute_force_tour(inst):
    return min(
        inst.tour_length([0] + list(p))
        for p in itertools.permutations(range(1, inst.cities))
    )


class TestOneTree:
    @pytest.mark.parametrize("seed", range(6))
    def test_admissible(self, seed):
        inst = random_tsp(7, seed=seed)
        assert one_tree_bound(inst) <= brute_force_tour(inst)

    @pytest.mark.parametrize("seed", range(4))
    def test_admissible_for_every_special_node(self, seed):
        inst = random_tsp(6, seed=seed)
        optimum = brute_force_tour(inst)
        for special in range(6):
            assert one_tree_bound(inst, special) <= optimum

    def test_exact_on_a_cycle_graph(self):
        # When the graph *is* a cycle (off-cycle edges expensive), the
        # minimum 1-tree is the tour itself.
        n = 6
        big = 1000
        d = [[0 if i == j else big for j in range(n)] for i in range(n)]
        for i in range(n):
            d[i][(i + 1) % n] = 10
            d[(i + 1) % n][i] = 10
        inst = TSPInstance(d)
        assert one_tree_bound(inst) == 60
        assert brute_force_tour(inst) == 60

    @pytest.mark.parametrize("seed", range(4))
    def test_dominates_outgoing_edge_bound_at_root(self, seed):
        inst = random_tsp(8, seed=seed)
        oe = outgoing_edge_bound(inst, [0], 0, range(1, 8))
        ot = one_tree_bound(inst)
        assert ot >= oe

    def test_best_over_specials_at_least_single(self):
        inst = random_tsp(7, seed=11)
        assert best_one_tree_bound(inst) >= one_tree_bound(inst, 0)
        assert best_one_tree_bound(inst) <= brute_force_tour(inst)

    def test_invalid_special_rejected(self):
        with pytest.raises(ProblemError):
            one_tree_bound(random_tsp(5, seed=1), special=5)


class TestOutgoingEdge:
    @pytest.mark.parametrize("seed", range(4))
    def test_admissible_at_partial_paths(self, seed):
        inst = random_tsp(6, seed=seed)
        d = inst.distances
        for prefix in itertools.permutations(range(1, 6), 2):
            path = [0] + list(prefix)
            cost = int(d[0, path[1]]) + int(d[path[1], path[2]])
            remaining = [v for v in range(1, 6) if v not in prefix]
            best_completion = min(
                inst.tour_length(path + list(rest))
                for rest in itertools.permutations(remaining)
            )
            assert outgoing_edge_bound(inst, path, cost, remaining) <= best_completion

    def test_complete_path_bound_is_tour_length(self):
        inst = random_tsp(5, seed=3)
        tour = [0, 2, 4, 1, 3]
        d = inst.distances
        cost = sum(int(d[a, b]) for a, b in zip(tour, tour[1:]))
        assert outgoing_edge_bound(inst, tour, cost, []) == inst.tour_length(tour)

"""Smoke test for the PR 4 transport benchmark (quick configuration).

Runs the real benchmark end to end on a tiny instance: both transports
must prove the serial optimum, node accounting must reconcile, and the
report must carry the fields BENCH_PR4.json promises.
"""

from __future__ import annotations

import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from bench_net_transport import run_benchmark  # noqa: E402


def test_quick_benchmark_report_shape():
    report = run_benchmark(quick=True, workers=2)

    assert report["pr"] == 4
    assert report["quick"] is True
    assert report["workload"]["serial_cost"] > 0

    transports = [rec["transport"] for rec in report["runs"]]
    assert transports == ["inprocess", "tcp", "tcp"]
    for rec in report["runs"]:
        # run_benchmark raises if any run misses the serial optimum or
        # its node ledger; these flags record that the checks ran.
        assert rec["serial_identical_optimum"] is True
        assert rec["accounting_consistent"] is True
        assert rec["cost"] == report["workload"]["serial_cost"]
        assert len(rec["worker_breakdown"]) == rec["workers"]
        for row in rec["worker_breakdown"]:
            assert 0.0 <= row["rpc_wait_share"] <= 1.0

    tax = report["transport_tax"]
    assert tax["workers"] == 2
    assert tax["throughput_ratio"] > 0

    probe = report["accounting_probe"]
    assert probe["workers"] == 1
    assert probe["nodes_explored"] > 0

"""The ``repro check`` static-analysis pass: every rule, both ways.

Each rule gets a *positive* fixture (a seeded violation flagged at the
right file:line), a *negative* fixture (idiomatic clean code passes),
and the suppression machinery is exercised end to end (reasoned
ignores silence, reasonless ones become RC00).  A final test runs the
real checker over the live tree exactly like ``make check`` does, so
the repository itself can never drift into violation.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.tools.check import RULES, check_paths
from repro.tools.check.cli import main as check_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_check(tmp_path, rel, source, *, strict=False, select=None):
    """Write ``source`` at a repo-shaped relative path and check it."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return check_paths([path], strict=strict, select=select)


def marker(code, reason=None):
    """Build an ignore comment at runtime.

    Concatenated so the literal marker never appears in *this* file —
    the live-tree test scans it, and the suppression scanner reads raw
    source lines (string literals included).
    """
    tail = f" -- {reason}" if reason else ""
    return "# repro-check: " + f"ignore[{code}]{tail}"


def codes(result):
    return [v.rule for v in result.violations]


# ----------------------------------------------------------------------
# RC01 — int-exact interval arithmetic


def test_rc01_flags_true_division_in_exact_module(tmp_path):
    result = run_check(
        tmp_path,
        "repro/core/tree.py",
        """\
        def subtree_weight(total, fanout):
            return total / fanout
        """,
        select=["RC01"],
    )
    assert codes(result) == ["RC01"]
    assert result.violations[0].line == 2
    assert "//" in result.violations[0].message


def test_rc01_flags_float_literal_and_cast_in_exact_module(tmp_path):
    result = run_check(
        tmp_path,
        "repro/core/numbering.py",
        """\
        SCALE = 1.5

        def approx(n):
            return float(n)
        """,
        select=["RC01"],
    )
    assert codes(result) == ["RC01", "RC01"]
    assert [v.line for v in result.violations] == [1, 4]


def test_rc01_clean_floor_division_passes(tmp_path):
    result = run_check(
        tmp_path,
        "repro/core/interval.py",
        """\
        def midpoint(begin, end):
            return begin + (end - begin) // 2
        """,
        select=["RC01"],
    )
    assert result.clean


def test_rc01_grid_scope_only_flags_interval_touching_expressions(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/runtime/metrics.py",
        """\
        def throughput(nodes, elapsed):
            return nodes / elapsed

        def bad_split(interval):
            return (interval.begin + interval.end) / 2
        """,
        select=["RC01"],
    )
    # Wall-clock division is legal in grid/; interval arithmetic is not.
    assert codes(result) == ["RC01"]
    assert result.violations[0].line == 5


def test_rc01_flags_float_literal_mixed_into_interval_compare(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/runtime/balance.py",
        """\
        def overloaded(weight):
            return weight > 0.5
        """,
        select=["RC01"],
    )
    assert codes(result) == ["RC01"]
    assert result.violations[0].line == 2


# ----------------------------------------------------------------------
# RC02 — launcher-only SharedBound writes


def test_rc02_flags_offer_outside_launcher(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/runtime/bbprocess.py",
        """\
        def report(shared, cost):
            shared.offer(cost)
        """,
        select=["RC02"],
    )
    assert codes(result) == ["RC02"]
    assert result.violations[0].line == 2
    assert "read-only" in result.violations[0].message


def test_rc02_allows_offer_in_launcher(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/runtime/launcher.py",
        """\
        def broadcast(shared, cost):
            shared.offer(cost)
        """,
        select=["RC02"],
    )
    assert result.clean


# ----------------------------------------------------------------------
# RC03 — versioned, codec-registered wire messages


RC03_FRAMING = """\
_WIRE_TYPES = {cls.__name__: cls for cls in (Request, Update, Rogue)}
"""

RC03_PROTOCOL = """\
from dataclasses import dataclass


@dataclass
class Request:
    worker: str
    seq: int = 0
    version: int = 1


@dataclass
class Unversioned:
    worker: str
    seq: int = 0


@dataclass
class Unregistered:
    worker: str
    seq: int = 0
    version: int = 1


@dataclass
class PlainValue:
    payload: str
"""


def _rc03_tree(tmp_path, protocol_source):
    protocol = tmp_path / "repro/grid/runtime/protocol.py"
    framing = tmp_path / "repro/grid/net/framing.py"
    protocol.parent.mkdir(parents=True)
    framing.parent.mkdir(parents=True)
    protocol.write_text(textwrap.dedent(protocol_source))
    framing.write_text(
        RC03_FRAMING.replace("Update", "Unversioned")
    )
    return [protocol, framing]


def test_rc03_flags_unversioned_and_unregistered_messages(tmp_path):
    result = check_paths(_rc03_tree(tmp_path, RC03_PROTOCOL), select=["RC03"])
    found = {(v.line, v.rule): v.message for v in result.violations}
    # Unversioned (registered, no version field) at its class line.
    assert any("Unversioned" in m and "version" in m for m in found.values())
    # Unregistered (has seq, not in _WIRE_TYPES).
    assert any("Unregistered" in m and "_WIRE_TYPES" in m for m in found.values())
    # Request is fine; PlainValue (no seq, not registered) is exempt.
    assert not any("Request" in m for m in found.values())
    assert not any("PlainValue" in m for m in found.values())
    assert len(result.violations) == 2


def test_rc03_violations_anchor_on_the_class_definition(tmp_path):
    result = check_paths(_rc03_tree(tmp_path, RC03_PROTOCOL), select=["RC03"])
    lines = sorted(v.line for v in result.violations)
    text = textwrap.dedent(RC03_PROTOCOL).splitlines()
    assert [text[line - 1] for line in lines] == [
        "class Unversioned:",
        "class Unregistered:",
    ]


def test_rc03_clean_protocol_passes(tmp_path):
    clean = """\
    from dataclasses import dataclass


    @dataclass
    class Request:
        worker: str
        seq: int = 0
        version: int = 1
    """
    protocol = tmp_path / "repro/grid/runtime/protocol.py"
    framing = tmp_path / "repro/grid/net/framing.py"
    protocol.parent.mkdir(parents=True)
    framing.parent.mkdir(parents=True)
    protocol.write_text(textwrap.dedent(clean))
    framing.write_text("_WIRE_TYPES = {cls.__name__: cls for cls in (Request,)}\n")
    assert check_paths([protocol, framing], select=["RC03"]).clean


# ----------------------------------------------------------------------
# RC04 — no raw sends outside the retry helper


def test_rc04_flags_raw_send_but_not_helper_traffic(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/runtime/bbprocess.py",
        """\
        class _RpcChannel:
            def send(self, message):
                self._connection.send(message)


        def worker_loop(connection):
            chan = _RpcChannel()
            chan.send("request")
            connection.send("rogue")
        """,
        select=["RC04"],
    )
    # Inside the helper class and via a helper instance: both fine.
    # The raw connection.send is the one violation.
    assert codes(result) == ["RC04"]
    assert result.violations[0].line == 9


def test_rc04_out_of_scope_module_ignored(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/runtime/launcher.py",
        """\
        def reply(listener, worker):
            listener.send(worker, "grant")
        """,
        select=["RC04"],
    )
    assert result.clean


# ----------------------------------------------------------------------
# RC05 — simulator determinism


def test_rc05_flags_global_rng_and_wall_clock_in_simulator(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/simulator/network.py",
        """\
        import random
        import time


        def jitter():
            return random.random() + time.time()
        """,
        select=["RC05"],
    )
    assert codes(result) == ["RC05", "RC05"]
    assert all(v.line == 6 for v in result.violations)


def test_rc05_seeded_rng_and_virtual_clock_pass(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/simulator/network.py",
        """\
        import random


        def jitter(rng: random.Random, clock):
            return rng.random() + clock.now()
        """,
        select=["RC05"],
    )
    assert result.clean


def test_rc05_strict_extends_to_benchmarks_but_not_wall_clock(tmp_path):
    source = """\
    import random
    import time


    def pick():
        return random.choice([1, 2]), time.time()
    """
    rel = "benchmarks/bench_pick.py"
    relaxed = run_check(tmp_path, rel, source, select=["RC05"])
    strict = run_check(tmp_path, rel, source, strict=True, select=["RC05"])
    assert relaxed.clean  # benchmarks are out of scope without --strict
    # Under --strict the global RNG is flagged; wall time stays legal
    # outside the simulator (benchmarks measure it on purpose).
    assert codes(strict) == ["RC05"]
    assert "random.choice" in strict.violations[0].message


# ----------------------------------------------------------------------
# RC06 — no blocking I/O in async bodies


def test_rc06_flags_blocking_calls_inside_async_def(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/net/tcp.py",
        """\
        import socket
        import time


        async def handle(reader, sock):
            time.sleep(0.1)
            data = sock.recv(4)
            with open("dump.bin", "wb") as fh:
                fh.write(data)


        def sync_path(sock):
            return sock.recv(4)
        """,
        select=["RC06"],
    )
    assert codes(result) == ["RC06", "RC06", "RC06"]
    assert [v.line for v in result.violations] == [6, 7, 8]
    # The same .recv() outside async is untouched.
    assert all(v.line != 13 for v in result.violations)


def test_rc06_asyncio_idioms_pass(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/net/tcp.py",
        """\
        import asyncio


        async def handle(reader, writer):
            data = await reader.readexactly(4)
            writer.write(data)
            await writer.drain()
            await asyncio.sleep(0.1)
        """,
        select=["RC06"],
    )
    assert result.clean


# ----------------------------------------------------------------------
# RC07 — typed-core annotation discipline


def test_rc07_flags_unannotated_defs_in_typed_core(tmp_path):
    result = run_check(
        tmp_path,
        "repro/core/engine.py",
        """\
        def annotated(x: int) -> int:
            return x


        def bare(x):
            return x


        class Engine:
            def __init__(self, depth: int):
                self.depth = depth

            def step(self):
                return self.depth
        """,
        select=["RC07"],
    )
    # bare(): params + return; Engine.step(): return.  __init__ needs
    # no return annotation and self never counts as a parameter.
    assert codes(result) == ["RC07", "RC07", "RC07"]
    assert [v.line for v in result.violations] == [5, 5, 13]


def test_rc07_out_of_scope_module_is_ignored(tmp_path):
    result = run_check(
        tmp_path,
        "repro/analysis/report.py",
        "def untyped(x):\n    return x\n",
        select=["RC07"],
    )
    assert result.clean


# ----------------------------------------------------------------------
# RC08 — durable checkpoint writes


def test_rc08_flags_raw_write_on_checkpoint_paths(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/runtime/coordinator.py",
        """\
        import json


        def persist(store, payload):
            with open(store.intervals_path, "w") as handle:
                json.dump(payload, handle)


        def note_epoch(epoch_path, epoch):
            epoch_path.write_text(str(epoch))
        """,
        select=["RC08"],
    )
    assert codes(result) == ["RC08", "RC08"]
    assert [v.line for v in result.violations] == [5, 10]
    assert "_atomic_write_json" in result.violations[0].message


def test_rc08_reads_and_unrelated_writes_pass(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/runtime/coordinator.py",
        """\
        import json


        def load(store):
            with open(store.intervals_path) as handle:
                return json.load(handle)


        def write_report(report_path, text):
            with open(report_path, "w") as handle:
                handle.write(text)
        """,
        select=["RC08"],
    )
    assert result.clean


def test_rc08_checkpoint_module_itself_is_exempt(tmp_path):
    result = run_check(
        tmp_path,
        "repro/core/checkpoint.py",
        """\
        def rotate(journal_path):
            open(journal_path, "wb").close()
        """,
        select=["RC08"],
    )
    assert result.clean


# ----------------------------------------------------------------------
# RC09 — optional accelerators import lazily


def test_rc09_flags_top_level_accelerator_imports(tmp_path):
    result = run_check(
        tmp_path,
        "repro/problems/flowshop/bounds.py",
        """\
        import numpy as np
        import numba
        from cupy import asarray
        """,
        select=["RC09"],
    )
    assert codes(result) == ["RC09", "RC09"]
    assert [v.line for v in result.violations] == [2, 3]
    assert "numba" in result.violations[0].message
    assert "lazily" in result.violations[0].message


def test_rc09_flags_guarded_probe_outside_the_backends(tmp_path):
    # Even a try/except probe pins availability at import time and
    # forks the source of truth away from BoundKernel.available().
    result = run_check(
        tmp_path,
        "repro/problems/flowshop/kernels_numba.py",
        """\
        try:
            from numba import njit
        except ImportError:
            njit = None
        """,
        select=["RC09"],
    )
    assert codes(result) == ["RC09"]
    assert result.violations[0].line == 2


def test_rc09_function_local_and_type_checking_imports_pass(tmp_path):
    result = run_check(
        tmp_path,
        "repro/problems/flowshop/kernels_numba.py",
        """\
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            import numba


        def jit_kernels():
            from numba import njit

            return njit
        """,
        select=["RC09"],
    )
    assert result.clean


def test_rc09_kernel_backends_are_exempt(tmp_path):
    result = run_check(
        tmp_path,
        "repro/core/kernels/numba_backend.py",
        """\
        import numba
        """,
        select=["RC09"],
    )
    assert result.clean


def test_rc09_applies_to_tests_and_benchmarks(tmp_path):
    result = run_check(
        tmp_path,
        "benchmarks/bench_engine_throughput.py",
        """\
        import cupy
        """,
        select=["RC09"],
    )
    assert codes(result) == ["RC09"]


# ----------------------------------------------------------------------
# RC10 — frontier node numbering stays int-exact


def test_rc10_flags_true_division_on_node_numbers(tmp_path):
    result = run_check(
        tmp_path,
        "repro/core/engine.py",
        """\
        def midpoint(entry, weights, depth):
            child_number = entry.number + entry.rank * weights[depth]
            return child_number / 2
        """,
        select=["RC10"],
    )
    assert codes(result) == ["RC10"]
    assert result.violations[0].line == 3
    assert "//" in result.violations[0].message


def test_rc10_flags_float_conversion_and_mixed_literals(tmp_path):
    result = run_check(
        tmp_path,
        "repro/core/resumable.py",
        """\
        def progress_fraction(interval, total_leaves):
            done = float(total_leaves - interval.length)
            return done


        def stale(number):
            return number > 1e15
        """,
        select=["RC10"],
    )
    assert codes(result) == ["RC10", "RC10"]
    assert "2**53" in result.violations[0].message
    assert "float literal" in result.violations[1].message


def test_rc10_leaves_cost_and_clock_floats_alone(tmp_path):
    # Costs, bounds and wall-clock budgets are float country; the rule
    # only guards the node-number identifiers.
    result = run_check(
        tmp_path,
        "repro/core/engine.py",
        """\
        import math


        def prune_margin(cost, bound):
            return cost / max(bound, 1.0)


        def step(max_nodes=math.inf):
            elapsed = 0.25
            return max_nodes - elapsed
        """,
        select=["RC10"],
    )
    assert result.clean


def test_rc10_scope_is_engine_and_resumable_only(tmp_path):
    # The same expression in grid/ is RC01 territory, not RC10.
    result = run_check(
        tmp_path,
        "repro/grid/runtime/launcher.py",
        """\
        def half(number):
            return number / 2
        """,
        select=["RC10"],
    )
    assert result.clean


# ----------------------------------------------------------------------
# RC11 — job ids are opaque


def test_rc11_flags_ordering_and_arithmetic_on_job_ids(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/service/scheduler.py",
        """\
        def pick(jobs):
            return sorted(jobs)[0]


        def shard(job_id):
            return int(job_id)


        def newer(job, other):
            return job > other


        def successor(job):
            return job + "-next"
        """,
        select=["RC11"],
    )
    assert codes(result) == ["RC11", "RC11", "RC11", "RC11"]
    assert "opaque" in result.violations[0].message


def test_rc11_equality_and_membership_pass(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/service/server.py",
        """\
        def route(job, coordinators):
            if job in coordinators:
                return coordinators[job]
            return None


        def same(job, job_id):
            return job == job_id


        def by_admission(records):
            return sorted(records, key=lambda record: record.order)
        """,
        select=["RC11"],
    )
    assert result.clean


def test_rc11_scope_is_the_service_package_only(tmp_path):
    # The coordinator predates job ids; sorting *worker* ids there is
    # someone else's business.
    result = run_check(
        tmp_path,
        "repro/grid/runtime/coordinator.py",
        """\
        def pick(jobs):
            return sorted(jobs)[0]
        """,
        select=["RC11"],
    )
    assert result.clean


# ----------------------------------------------------------------------
# RC12 — wire-schema changes bump the message version


RC12_FRAMING = """\
_WIRE_TYPES = {cls.__name__: cls for cls in (Request,)}
"""

RC12_PROTOCOL = """\
from dataclasses import dataclass


@dataclass
class Request:
    worker: str
    seq: int = 0
    version: int = 1
"""

RC12_GOLDEN = {
    "messages": {
        "Request": {
            "version": 1,
            "fields": {"worker": "str", "seq": "int", "version": "int"},
        }
    }
}


def _rc12_tree(tmp_path, protocol_source, golden=RC12_GOLDEN, framing=RC12_FRAMING):
    protocol = tmp_path / "repro/grid/runtime/protocol.py"
    framing_path = tmp_path / "repro/grid/net/framing.py"
    schema = tmp_path / "tools/check/schemas/wire.json"
    for path in (protocol, framing_path, schema):
        path.parent.mkdir(parents=True, exist_ok=True)
    protocol.write_text(textwrap.dedent(protocol_source))
    framing_path.write_text(textwrap.dedent(framing))
    schema.write_text(json.dumps(golden))
    return [protocol, framing_path]


def test_rc12_matching_schema_passes(tmp_path):
    result = check_paths(_rc12_tree(tmp_path, RC12_PROTOCOL), select=["RC12"])
    assert result.clean


def test_rc12_field_added_without_version_bump_fails(tmp_path):
    drifted = RC12_PROTOCOL.replace(
        "version: int = 1", "version: int = 1\n    retries: int = 0"
    )
    result = check_paths(_rc12_tree(tmp_path, drifted), select=["RC12"])
    assert codes(result) == ["RC12"]
    violation = result.violations[0]
    assert "without a version bump" in violation.message
    assert "added: retries" in violation.message
    # Anchored on the class definition line.
    assert violation.path.endswith("protocol.py")
    assert violation.line == 5


def test_rc12_field_retyped_without_version_bump_fails(tmp_path):
    drifted = RC12_PROTOCOL.replace("seq: int = 0", "seq: float = 0")
    result = check_paths(_rc12_tree(tmp_path, drifted), select=["RC12"])
    assert codes(result) == ["RC12"]
    assert "retyped: seq" in result.violations[0].message


def test_rc12_drift_with_version_bump_demands_snapshot_refresh(tmp_path):
    drifted = RC12_PROTOCOL.replace(
        "version: int = 1", "version: int = 2\n    retries: int = 0"
    )
    result = check_paths(_rc12_tree(tmp_path, drifted), select=["RC12"])
    assert codes(result) == ["RC12"]
    assert "--update-schemas" in result.violations[0].message
    assert "version bump to 2" in result.violations[0].message


def test_rc12_new_registered_message_must_be_recorded(tmp_path):
    extended = RC12_PROTOCOL + textwrap.dedent(
        """\

        @dataclass
        class Cancel:
            worker: str
            seq: int = 0
            version: int = 1
        """
    )
    framing = "_WIRE_TYPES = {cls.__name__: cls for cls in (Request, Cancel)}\n"
    result = check_paths(
        _rc12_tree(tmp_path, extended, framing=framing), select=["RC12"]
    )
    assert codes(result) == ["RC12"]
    assert "new wire message Cancel" in result.violations[0].message


def test_rc12_message_removed_from_registry_is_flagged_in_framing(tmp_path):
    golden = {
        "messages": {
            **RC12_GOLDEN["messages"],
            "Retired": {"version": 3, "fields": {"worker": "str"}},
        }
    }
    result = check_paths(
        _rc12_tree(tmp_path, RC12_PROTOCOL, golden=golden), select=["RC12"]
    )
    assert codes(result) == ["RC12"]
    assert "Retired" in result.violations[0].message
    assert result.violations[0].path.endswith("framing.py")


def test_rc12_version_via_module_constant_resolves(tmp_path):
    source = RC12_PROTOCOL.replace(
        "from dataclasses import dataclass",
        "from dataclasses import dataclass\n\nPROTOCOL_VERSION = 1",
    ).replace("version: int = 1", "version: int = PROTOCOL_VERSION")
    result = check_paths(_rc12_tree(tmp_path, source), select=["RC12"])
    assert result.clean


def test_rc12_round_trip_update_then_mutate(tmp_path):
    """The full gate lifecycle: snapshot, verify clean, drift, fail."""
    from repro.tools.check.rules import update_wire_schemas

    # Start from an empty tree-local snapshot so the update targets the
    # fixture, never the checker package's own golden file.
    paths = _rc12_tree(tmp_path, RC12_PROTOCOL, golden={"messages": {}})
    assert not check_paths(paths, select=["RC12"]).clean  # unrecorded message
    target, count = update_wire_schemas(paths)
    assert count == 1
    assert target == tmp_path / "tools/check/schemas/wire.json"
    assert check_paths(paths, select=["RC12"]).clean
    # Now a field changes without touching the version: the gate trips.
    protocol = paths[0]
    protocol.write_text(
        protocol.read_text().replace("worker: str", "worker: bytes")
    )
    result = check_paths(paths, select=["RC12"])
    assert codes(result) == ["RC12"]
    assert "retyped: worker" in result.violations[0].message


# ----------------------------------------------------------------------
# RC13 — asyncio concurrency discipline


def test_rc13_flags_await_under_sync_lock(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/service/server.py",
        """\
        import threading


        class Server:
            def __init__(self):
                self._lock = threading.Lock()

            async def pump(self, writer):
                with self._lock:
                    await writer.drain()
        """,
        select=["RC13"],
    )
    assert codes(result) == ["RC13"]
    assert result.violations[0].line == 10
    assert "event loop" in result.violations[0].message


def test_rc13_await_under_lock_tracks_lock_through_assignment(tmp_path):
    # The guard is taint-based: a lock reached through a local alias
    # is still a lock, even though the alias name says nothing.
    result = run_check(
        tmp_path,
        "repro/grid/net/serve.py",
        """\
        import threading


        async def pump(registry, writer):
            guard = registry.state_lock
            with guard:
                await writer.drain()
        """,
        select=["RC13"],
    )
    assert codes(result) == ["RC13"]
    assert result.violations[0].line == 7


def test_rc13_async_lock_and_lock_free_await_pass(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/service/server.py",
        """\
        import asyncio


        class Server:
            def __init__(self):
                self._lock = asyncio.Lock()

            async def pump(self, writer):
                async with self._lock:
                    await writer.drain()

            async def tick(self):
                await asyncio.sleep(0.1)
        """,
        select=["RC13"],
    )
    assert result.clean


def test_rc13_flags_sync_thread_mutation_of_loop_state(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/service/server.py",
        """\
        class Server:
            def __init__(self):
                self.jobs = {}

            async def _on_submit(self, msg):
                self.jobs[msg.job_id] = msg

            def cancel(self, job_id):
                self.jobs.pop(job_id)
        """,
        select=["RC13"],
    )
    assert codes(result) == ["RC13"]
    assert result.violations[0].line == 9
    assert "loop-confined" in result.violations[0].message
    assert "_on_submit" in result.violations[0].message


def test_rc13_marshalled_mutation_and_init_are_exempt(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/service/server.py",
        """\
        class Server:
            def __init__(self):
                self.jobs = {}

            async def _on_submit(self, msg):
                self.jobs[msg.job_id] = msg

            def cancel(self, loop, job_id):
                def _evict():
                    self.jobs.pop(job_id)

                loop.call_soon_threadsafe(_evict)
        """,
        select=["RC13"],
    )
    assert result.clean


def test_rc13_scope_is_net_and_service_only(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/runtime/coordinator.py",
        """\
        import threading


        class Coordinator:
            def __init__(self):
                self._lock = threading.Lock()

            async def pump(self, writer):
                with self._lock:
                    await writer.drain()
        """,
        select=["RC13"],
    )
    assert result.clean


# ----------------------------------------------------------------------
# RC14 — checkpoint writes reach fsync on every branch


def test_rc14_flags_write_that_returns_without_fsync(tmp_path):
    result = run_check(
        tmp_path,
        "repro/core/checkpoint.py",
        """\
        def append(fh, payload):
            fh.write(payload)
            fh.flush()
        """,
        select=["RC14"],
    )
    assert codes(result) == ["RC14"]
    assert result.violations[0].line == 2
    assert "page cache" in result.violations[0].message


def test_rc14_write_followed_by_fsync_passes(tmp_path):
    result = run_check(
        tmp_path,
        "repro/core/checkpoint.py",
        """\
        import os


        def append(fh, payload):
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        """,
        select=["RC14"],
    )
    assert result.clean


def test_rc14_conditional_fsync_does_not_cover_unconditional_write(tmp_path):
    result = run_check(
        tmp_path,
        "repro/core/checkpoint.py",
        """\
        import os


        def append(fh, payload, flush):
            fh.write(payload)
            if flush:
                os.fsync(fh.fileno())
        """,
        select=["RC14"],
    )
    assert codes(result) == ["RC14"]
    assert result.violations[0].line == 5


def test_rc14_fsync_in_finally_covers_the_whole_try(tmp_path):
    result = run_check(
        tmp_path,
        "repro/core/checkpoint.py",
        """\
        import os


        def append(fh, payload):
            try:
                fh.write(payload)
            finally:
                fh.flush()
                os.fsync(fh.fileno())
        """,
        select=["RC14"],
    )
    assert result.clean


def test_rc14_open_for_write_needs_fsync_inside_the_with(tmp_path):
    source = """\
    import os


    def rotate(path):
        with open(path, "wb") as fh:
            fh.flush()
    """
    result = run_check(tmp_path, "repro/core/checkpoint.py", source, select=["RC14"])
    assert codes(result) == ["RC14"]
    assert result.violations[0].line == 5
    fixed = source.replace(
        "fh.flush()", "fh.flush()\n            os.fsync(fh.fileno())"
    )
    assert run_check(
        tmp_path, "repro/core/checkpoint.py", fixed, select=["RC14"]
    ).clean


def test_rc14_read_paths_and_other_modules_are_exempt(tmp_path):
    assert run_check(
        tmp_path,
        "repro/core/checkpoint.py",
        """\
        def load(path):
            with open(path, "rb") as fh:
                return fh.read()
        """,
        select=["RC14"],
    ).clean
    assert run_check(
        tmp_path,
        "repro/grid/runtime/launcher.py",
        "def note(fh, text):\n    fh.write(text)\n",
        select=["RC14"],
    ).clean


# ----------------------------------------------------------------------
# RC15 — handlers never swallow exceptions broadly


def test_rc15_flags_broad_swallow_in_handler(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/runtime/coordinator.py",
        """\
        def handle(self, msg):
            try:
                self.apply(msg)
            except Exception:
                pass
        """,
        select=["RC15"],
    )
    assert codes(result) == ["RC15"]
    assert result.violations[0].line == 4
    assert "silently dropped" in result.violations[0].message


def test_rc15_flags_bare_except_and_broad_tuple(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/service/server.py",
        """\
        async def _on_push(self, msg):
            try:
                self.apply(msg)
            except:
                self.log("dropped")


        def handle_update(self, msg):
            try:
                self.apply(msg)
            except (ValueError, Exception):
                self.log("dropped")
        """,
        select=["RC15"],
    )
    assert codes(result) == ["RC15", "RC15"]
    assert [v.line for v in result.violations] == [4, 11]


def test_rc15_answering_or_narrow_handlers_pass(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/service/server.py",
        """\
        def handle_submit(self, msg):
            try:
                return self.admit(msg)
            except Exception:
                return self.refuse(msg)


        def handle_push(self, msg):
            try:
                self.apply(msg)
            except Exception:
                self.log("failed")
                raise


        def handle_bye(self, msg):
            try:
                self.apply(msg)
            except KeyError:
                pass
        """,
        select=["RC15"],
    )
    assert result.clean


def test_rc15_non_handler_functions_are_not_audited(tmp_path):
    result = run_check(
        tmp_path,
        "repro/grid/runtime/coordinator.py",
        """\
        def best_effort_cleanup(self):
            try:
                self.flush()
            except Exception:
                pass
        """,
        select=["RC15"],
    )
    assert result.clean


# ----------------------------------------------------------------------
# Suppressions and RC00


def test_reasoned_suppression_silences_the_violation(tmp_path):
    source = """\
    def report(shared, cost):
        shared.offer(cost)  MARKER
    """.replace("MARKER", marker("RC02", "fixture exercising the ignore path"))
    result = run_check(
        tmp_path, "repro/grid/runtime/bbprocess.py", source, select=["RC02"]
    )
    assert result.clean


def test_reasoned_suppression_on_preceding_comment_line(tmp_path):
    source = """\
    def report(shared, cost):
        MARKER
        shared.offer(cost)
    """.replace("MARKER", marker("RC02", "fixture exercising the ignore path"))
    result = run_check(
        tmp_path, "repro/grid/runtime/bbprocess.py", source, select=["RC02"]
    )
    assert result.clean


def test_trailing_suppression_does_not_leak_to_the_next_line(tmp_path):
    source = """\
    def report(shared, cost):
        staged = cost  MARKER
        shared.offer(staged)
    """.replace("MARKER", marker("RC02", "anchored to the wrong line"))
    result = run_check(
        tmp_path, "repro/grid/runtime/bbprocess.py", source, select=["RC02"]
    )
    # The violation still fires, and the mis-anchored ignore (which
    # silenced nothing) is itself reported as an unused suppression.
    assert codes(result) == ["RC00", "RC02"]
    assert "unused suppression" in result.violations[0].message


def test_reasonless_suppression_is_rc00_and_does_not_suppress(tmp_path):
    source = """\
    def report(shared, cost):
        shared.offer(cost)  MARKER
    """.replace("MARKER", marker("RC02"))
    result = run_check(
        tmp_path, "repro/grid/runtime/bbprocess.py", source, select=["RC02"]
    )
    assert sorted(codes(result)) == ["RC00", "RC02"]


def test_unknown_rule_code_in_suppression_is_rc00(tmp_path):
    source = "x = 1  MARKER\n".replace(
        "MARKER", marker("RC99", "no such rule")
    )
    result = run_check(
        tmp_path, "repro/core/interval.py", source, select=["RC01"]
    )
    assert codes(result) == ["RC00"]
    assert "RC99" in result.violations[0].message


def test_prose_mention_of_ignore_syntax_is_not_a_suppression(tmp_path):
    source = '"""Docs quoting the marker: MARKER."""\n'.replace(
        "MARKER", marker("RULE")
    )
    result = run_check(
        tmp_path, "repro/core/interval.py", source, select=["RC01"]
    )
    assert result.clean


# ----------------------------------------------------------------------
# Framework behavior


def test_unknown_select_code_raises(tmp_path):
    (tmp_path / "mod.py").write_text("x = 1\n")
    with pytest.raises(ValueError):
        check_paths([tmp_path / "mod.py"], select=["RC42"])


def test_syntax_error_reports_check_error_exit_2(tmp_path):
    bad = tmp_path / "repro/core/interval.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n")
    result = check_paths([bad])
    assert result.errors and result.exit_code() == 2


def test_every_rule_registered_with_metadata():
    assert sorted(RULES) == [f"RC0{i}" for i in range(1, 10)] + [
        "RC10",
        "RC11",
        "RC12",
        "RC13",
        "RC14",
        "RC15",
    ]
    for code, cls in RULES.items():
        assert cls.code == code
        assert cls.title and cls.invariant and cls.scope


# ----------------------------------------------------------------------
# CLI surface


def test_cli_json_format_and_exit_code(tmp_path, capsys):
    target = tmp_path / "repro/grid/runtime/other.py"
    target.parent.mkdir(parents=True)
    target.write_text("def f(shared, cost):\n    shared.offer(cost)\n")
    exit_code = check_main(
        [str(target), "--select", "RC02", "--format", "json"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert payload["files_checked"] == 1
    assert [v["rule"] for v in payload["violations"]] == ["RC02"]
    assert payload["violations"][0]["line"] == 2


def test_cli_sarif_format(tmp_path, capsys):
    target = tmp_path / "repro/grid/runtime/other.py"
    target.parent.mkdir(parents=True)
    target.write_text("def f(shared, cost):\n    shared.offer(cost)\n")
    exit_code = check_main(
        [str(target), "--select", "RC02", "--output", "sarif"]
    )
    sarif = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-check"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert {"RC00", "RC02", "RC12", "RC15"} <= rule_ids
    (found,) = run["results"]
    assert found["ruleId"] == "RC02"
    region = found["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 2


def test_cli_sarif_clean_run_has_no_results(tmp_path, capsys):
    target = tmp_path / "repro/core/interval.py"
    target.parent.mkdir(parents=True)
    target.write_text("x = 1\n")
    assert check_main([str(target), "--format", "sarif"]) == 0
    sarif = json.loads(capsys.readouterr().out)
    assert sarif["runs"][0]["results"] == []


def test_cli_update_schemas_writes_the_golden_file(tmp_path, capsys):
    protocol = tmp_path / "repro/grid/runtime/protocol.py"
    framing = tmp_path / "repro/grid/net/framing.py"
    schema = tmp_path / "tools/check/schemas/wire.json"
    for path in (protocol, framing, schema):
        path.parent.mkdir(parents=True, exist_ok=True)
    protocol.write_text(
        "from dataclasses import dataclass\n\n\n"
        "@dataclass\nclass Request:\n"
        "    worker: str\n    seq: int = 0\n    version: int = 1\n"
    )
    framing.write_text("_WIRE_TYPES = {cls.__name__: cls for cls in (Request,)}\n")
    schema.write_text("{}")
    assert check_main([str(tmp_path / "repro"), "--update-schemas"]) == 0
    out = capsys.readouterr().out
    assert "wrote golden schemas for 1 wire message(s)" in out
    written = json.loads(schema.read_text())
    assert written["messages"]["Request"]["version"] == 1
    assert written["messages"]["Request"]["fields"]["worker"] == "str"


def test_cli_list_rules(capsys):
    assert check_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in RULES:
        assert code in out


def test_cli_rejects_unknown_select_and_missing_path(tmp_path, capsys):
    assert check_main([str(tmp_path), "--select", "RC42"]) == 2
    assert check_main([str(tmp_path / "nowhere")]) == 2


# ----------------------------------------------------------------------
# The live tree stays clean — exactly what `make check` enforces.


def test_live_tree_is_violation_free():
    paths = [
        REPO_ROOT / part
        for part in ("src", "tests", "benchmarks", "examples")
        if (REPO_ROOT / part).exists()
    ]
    result = check_paths(paths, strict=True)
    assert result.files_checked > 100
    assert result.errors == []
    assert [v.format() for v in result.violations] == []

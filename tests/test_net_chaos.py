"""Chaos over real sockets: the §4.1 invariant, now with TCP underneath.

The randomized chaos schedules (lossy channel + coordinator crashes +
worker crashes/hangs) run parameterized over *both* transport backends
— the same seeds, the same proved optimum.  On top, socket-specific
faults that have no queue analogue: a client that RSTs its own
connection mid-run (kill-and-reconnect), a raw peer that dies mid-frame,
a half-open peer that goes silent without closing, and an oversized
frame on the wire.  None of them may cost more than redundant work.
"""

from __future__ import annotations

import socket
import struct
import time

import pytest

from repro.core import solve
from repro.grid.net.framing import encode_frame, Hello
from repro.grid.net.tcp import SocketFaults, TcpClientConnection, TcpListener
from repro.grid.net.transport import TransportTimeout
from repro.grid.runtime import FaultPlan, RuntimeConfig, flowshop_spec, solve_parallel
from repro.grid.runtime.protocol import Ack, Request
from repro.problems.flowshop import FlowShopProblem, random_instance

fs_instance = random_instance(8, 4, seed=51)
serial = solve(FlowShopProblem(fs_instance))

TRANSPORTS = ("inprocess", "tcp")
CHAOS_SEEDS = range(10)


def chaos_config(plan: FaultPlan, transport: str, **overrides) -> RuntimeConfig:
    base = dict(
        workers=3,
        update_nodes=200,
        update_period=0.05,
        max_slice_nodes=400,
        checkpoint_period=0.0,
        deadline=90,
        reply_timeout=0.4,
        max_retries=6,
        lease_seconds=0.6,
        transport=transport,
        fault_plan=plan,
    )
    base.update(overrides)
    return RuntimeConfig(**base)


@pytest.mark.slow
class TestChaosBothTransports:
    """The PR 1 chaos property, now quantified over the wire."""

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_chaos_schedule_still_proves_optimum(self, seed, transport):
        plan = FaultPlan.chaos(seed, workers=3)
        result = solve_parallel(
            flowshop_spec(fs_instance), chaos_config(plan, transport)
        )
        assert result.optimal, f"seed {seed} over {transport} lost the proof"
        assert result.cost == serial.cost, f"seed {seed} over {transport}"


class TestSocketChaos:
    """Faults only a real socket can produce."""

    def test_kill_and_reconnect_mid_slice(self):
        """Workers RST their connection every few frames while slices
        are in flight; reconnect + same-seq retry must recover every
        lost reply and the run still terminates with the optimum."""
        result = solve_parallel(
            flowshop_spec(fs_instance),
            chaos_config(
                FaultPlan(),
                "tcp",
                socket_faults=SocketFaults(reset_after_sends=3),
            ),
        )
        assert result.optimal
        assert result.cost == serial.cost

    def test_lossy_channel_over_tcp(self):
        """Generic channel faults compose with the TCP backend: the
        FaultyListener drops/dups/delays on top of real frames."""
        plan = FaultPlan.chaos(3, workers=3)
        plan.coordinator_crashes = []
        plan.worker_crashes = {}
        plan.worker_hangs = {}
        result = solve_parallel(
            flowshop_spec(fs_instance), chaos_config(plan, "tcp")
        )
        assert result.optimal
        assert result.cost == serial.cost

    def test_mid_frame_reset_poisons_only_that_connection(self):
        listener = TcpListener(peer_timeout=5.0)
        try:
            # A peer that says a valid Hello, then dies mid-frame (RST
            # with half a header on the wire).
            raw = socket.create_connection(listener.address, timeout=2.0)
            raw.sendall(encode_frame(Hello("corpse")))
            time.sleep(0.2)
            frame = encode_frame(Request("corpse", seq=1))
            raw.sendall(frame[: len(frame) // 2])
            raw.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            raw.close()  # RST
            # The server must shrug it off and keep serving others.
            healthy = TcpClientConnection(
                *listener.address, "healthy", heartbeat_interval=None
            )
            try:
                healthy.open(timeout=5.0)
                healthy.send(Request("healthy", seq=1))
                message = listener.recv(timeout=2.0)
                assert message.worker == "healthy"
                listener.send("healthy", Ack(1.0, seq=1))
                assert healthy.recv(timeout=2.0) == Ack(1.0, seq=1)
            finally:
                healthy.close()
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                if "corpse" not in listener.connected_workers():
                    break
                time.sleep(0.05)
            assert "corpse" not in listener.connected_workers()
        finally:
            listener.close()

    def test_half_open_peer_is_reaped_without_heartbeats(self):
        listener = TcpListener(peer_timeout=0.4)
        try:
            silent = TcpClientConnection(
                *listener.address, "silent", heartbeat_interval=None
            )
            try:
                silent.open(timeout=5.0)
                assert listener.connected_workers() == ["silent"]
                # Never closes, never speaks: the read timeout treats it
                # as half-open and drops the connection server-side.
                deadline = time.monotonic() + 3.0
                while time.monotonic() < deadline:
                    if not listener.connected_workers():
                        break
                    time.sleep(0.05)
                assert listener.connected_workers() == []
            finally:
                silent.close()
        finally:
            listener.close()

    def test_heartbeats_keep_an_idle_peer_alive(self):
        listener = TcpListener(peer_timeout=0.6)
        try:
            idle = TcpClientConnection(
                *listener.address, "idle", heartbeat_interval=0.1
            )
            try:
                idle.open(timeout=5.0)
                time.sleep(1.5)  # several peer_timeouts of silence
                assert listener.connected_workers() == ["idle"]
            finally:
                idle.close()
        finally:
            listener.close()

    def test_oversized_frame_drops_the_connection(self):
        listener = TcpListener(peer_timeout=5.0)
        try:
            raw = socket.create_connection(listener.address, timeout=2.0)
            raw.sendall(struct.pack("!I", (16 << 20) + 1))  # absurd length
            raw.settimeout(2.0)
            # Server closes on us rather than buffering 16 MiB of lies.
            deadline = time.monotonic() + 3.0
            closed = False
            while time.monotonic() < deadline:
                try:
                    if raw.recv(4096) == b"":
                        closed = True
                        break
                except socket.timeout:
                    break
                except OSError:
                    closed = True
                    break
            raw.close()
            assert closed, "server kept a poisoned connection open"
            with pytest.raises(TransportTimeout):
                listener.recv(timeout=0.1)  # nothing was delivered
        finally:
            listener.close()

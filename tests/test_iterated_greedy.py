"""Tests for the Iterated Greedy metaheuristic (paper reference [9])."""

import itertools

import pytest

from repro.exceptions import ProblemError
from repro.problems.flowshop import makespan, neh, random_instance
from repro.problems.flowshop.iterated_greedy import IGResult, iterated_greedy


def brute_force_optimum(inst):
    return min(
        makespan(inst, p) for p in itertools.permutations(range(inst.jobs))
    )


class TestBasics:
    def test_result_is_valid_schedule(self):
        inst = random_instance(10, 5, seed=3)
        result = iterated_greedy(inst, iterations=50, seed=1)
        assert sorted(result.sequence) == list(range(10))
        assert makespan(inst, result.sequence) == result.cost

    def test_never_worse_than_neh(self):
        for seed in range(4):
            inst = random_instance(12, 5, seed=seed)
            _, neh_cost = neh(inst)
            result = iterated_greedy(inst, iterations=60, seed=seed)
            assert result.cost <= neh_cost
            assert result.initial_cost == neh_cost

    def test_deterministic_given_seed(self):
        inst = random_instance(10, 4, seed=5)
        a = iterated_greedy(inst, iterations=40, seed=9)
        b = iterated_greedy(inst, iterations=40, seed=9)
        assert a.sequence == b.sequence
        assert a.cost == b.cost

    def test_zero_iterations_returns_initial(self):
        inst = random_instance(8, 4, seed=2)
        _, neh_cost = neh(inst)
        result = iterated_greedy(inst, iterations=0, seed=1)
        assert result.cost == neh_cost

    def test_custom_initial_sequence(self):
        inst = random_instance(8, 4, seed=7)
        start = list(range(8))
        result = iterated_greedy(inst, iterations=30, seed=1, initial=start)
        assert result.initial_cost == makespan(inst, start)
        assert result.cost <= result.initial_cost


class TestQuality:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_reaches_optimum_on_small_instances(self, seed):
        inst = random_instance(7, 4, seed=seed)
        optimum = brute_force_optimum(inst)
        result = iterated_greedy(inst, iterations=150, seed=seed)
        assert result.cost == optimum

    def test_improves_with_more_iterations(self):
        inst = random_instance(14, 5, seed=11)
        short = iterated_greedy(inst, iterations=5, seed=4).cost
        long = iterated_greedy(inst, iterations=200, seed=4).cost
        assert long <= short

    def test_beats_or_matches_neh_on_taillard_class(self):
        from repro.problems.flowshop import known_optimum, taillard_instance

        inst = taillard_instance(20, 5, 1)
        _, neh_cost = neh(inst)
        result = iterated_greedy(inst, iterations=150, seed=3)
        assert result.cost <= neh_cost
        # never below the literature optimum (that would be a bug)
        assert result.cost >= known_optimum(20, 5, 1)


class TestValidation:
    def test_invalid_destruction_size(self):
        inst = random_instance(5, 3, seed=1)
        with pytest.raises(ProblemError):
            iterated_greedy(inst, destruction=0)
        with pytest.raises(ProblemError):
            iterated_greedy(inst, destruction=6)

    def test_negative_iterations(self):
        with pytest.raises(ProblemError):
            iterated_greedy(random_instance(5, 3, seed=1), iterations=-1)

    def test_stats_consistency(self):
        inst = random_instance(10, 4, seed=13)
        result = iterated_greedy(inst, iterations=80, seed=2)
        assert isinstance(result, IGResult)
        assert result.iterations == 80
        assert result.improvements >= 0
        assert result.accepted_worse >= 0

"""Tests for the coordinator's INTERVALS set (paper §4.1–§4.3)."""

import pytest

from repro.core import Interval, IntervalSet
from repro.exceptions import IntervalError


def fresh(length=1000, threshold=0):
    return IntervalSet.initial(Interval(0, length), threshold)


class TestConstruction:
    def test_initial_contains_root_range(self):
        s = fresh(24)
        assert s.cardinality == 1
        assert s.size == 24
        assert s.intervals() == [Interval(0, 24)]

    def test_add_empty_rejected(self):
        with pytest.raises(IntervalError):
            fresh().add(Interval(5, 5))

    def test_negative_threshold_rejected(self):
        with pytest.raises(IntervalError):
            IntervalSet(duplication_threshold=-1)


class TestAssignment:
    def test_first_request_gets_everything(self):
        # Unassigned interval = virtual null-power holder => C == A.
        s = fresh(1000)
        a = s.assign("w1")
        assert a is not None
        assert a.interval == Interval(0, 1000)
        assert not a.duplicated

    def test_second_request_splits_the_holder(self):
        s = fresh(1000)
        s.assign("w1")
        a = s.assign("w2")
        assert a.interval == Interval(500, 1000)  # equal powers => half
        assert s.cardinality == 2
        assert s.size == 1000  # nothing lost

    def test_split_proportional_to_power(self):
        s = fresh(1000)
        s.assign("w1", requester_power=1.0)
        a = s.assign("w2", requester_power=3.0, holder_powers={"w1": 1.0})
        # holder keeps 1/4, requester takes 3/4
        assert a.interval == Interval(250, 1000)

    def test_selection_maximises_requester_share(self):
        # Two intervals: a long one held by a powerful worker and a
        # shorter unassigned one. The unassigned one gives the larger
        # share and must be selected.
        s = IntervalSet()
        s.add(Interval(0, 1000), owners=("strong",))
        s.add(Interval(2000, 2600))
        a = s.assign("w2", requester_power=1.0, holder_powers={"strong": 9.0})
        # splitting the held interval would yield 1000/10 = 100 numbers;
        # taking the orphan yields 600.
        assert a.interval == Interval(2000, 2600)

    def test_empty_set_returns_none(self):
        s = IntervalSet()
        assert s.assign("w1") is None

    def test_requester_never_splits_with_itself(self):
        s = fresh(100)
        s.assign("w1")
        # w1 asks again (it exhausted its work but the copy is stale):
        # its stale ownership must not make it a holder against itself.
        a = s.assign("w1")
        assert a.interval == Interval(0, 100)

    def test_allocation_counter(self):
        s = fresh(1000)
        s.assign("w1")
        s.assign("w2")
        assert s.allocations == 2


class TestDuplication:
    def test_short_interval_duplicated_not_split(self):
        s = IntervalSet.initial(Interval(0, 10), duplication_threshold=50)
        s.assign("w1")
        a = s.assign("w2")
        assert a.duplicated
        assert a.interval == Interval(0, 10)
        # only one coordinator copy survives
        assert s.cardinality == 1
        recs = list(s.records().values())
        assert recs[0].owners == {"w1", "w2"}

    def test_duplication_counter(self):
        s = IntervalSet.initial(Interval(0, 10), duplication_threshold=50)
        s.assign("w1")
        s.assign("w2")
        s.assign("w3")
        assert s.duplications == 2
        assert s.duplicated_length_assigned == 20

    def test_zero_threshold_never_duplicates(self):
        s = fresh(4)
        for w in ("a", "b", "c", "d"):
            s.assign(w)
        assert s.duplications == 0


class TestUpdate:
    def test_update_advances_begin(self):
        s = fresh(1000)
        s.assign("w1")
        merged = s.update("w1", Interval(300, 1000))
        assert merged == Interval(300, 1000)
        assert s.size == 700

    def test_update_applies_eq14_after_split(self):
        # After a split the coordinator copy is [0, C) while the worker
        # still believes [a, B): the reply clips it to [a, C).
        s = fresh(1000)
        s.assign("w1")
        s.assign("w2")  # w1's copy becomes [0, 500)
        merged = s.update("w1", Interval(100, 1000))
        assert merged == Interval(100, 500)

    def test_exhausted_interval_removed(self):
        s = fresh(100)
        s.assign("w1")
        merged = s.update("w1", Interval(100, 100))
        assert merged.is_empty()
        assert s.is_empty()

    def test_update_from_unknown_worker_with_no_match(self):
        s = fresh(100)
        s.assign("w1")
        merged = s.update("ghost", Interval(200, 300))
        assert merged.is_empty()

    def test_update_reclaims_unowned_record_after_recovery(self):
        # Farmer recovery loses ownership; the worker's next update
        # re-attaches it to the overlapping record.
        s = IntervalSet.from_payload([(0, 500), (500, 1000)])
        merged = s.update("w1", Interval(600, 1000))
        assert merged == Interval(600, 1000)
        assert s.record_for_worker("w1") is not None

    def test_recovery_reclaim_carves_not_shrinks(self):
        # After a farmer recovery the snapshot may be one stale record
        # covering several workers' pieces.  A worker's report must
        # claim only its piece; the leftovers stay as unowned work —
        # intersecting the whole record away would LOSE work (the bug
        # class the §4.1 guarantee forbids).
        s = IntervalSet.from_payload([(0, 1000)])
        merged = s.update("w1", Interval(200, 400))
        assert merged == Interval(200, 400)
        assert sorted(iv.as_tuple() for iv in s.intervals()) == [
            (0, 200), (200, 400), (400, 1000),
        ]
        # the other pre-crash worker reclaims its own piece next
        merged2 = s.update("w2", Interval(400, 1000))
        assert merged2 == Interval(400, 1000)
        assert s.covered_union_length() == 1000

    def test_recovery_reclaim_at_record_boundary(self):
        s = IntervalSet.from_payload([(0, 100)])
        merged = s.update("w1", Interval(0, 100))
        assert merged == Interval(0, 100)
        assert s.cardinality == 1  # no empty fragments created

    def test_update_counter(self):
        s = fresh(100)
        s.assign("w1")
        s.update("w1", Interval(10, 100))
        s.update("w1", Interval(20, 100))
        assert s.updates == 2


class TestTermination:
    def test_size_decreases_to_zero(self):
        s = fresh(100)
        s.assign("w1")
        sizes = [s.size]
        for begin in (25, 50, 75, 100):
            s.update("w1", Interval(begin, 100))
            sizes.append(s.size)
        assert sizes == [100, 75, 50, 25, 0]
        assert s.is_empty()

    def test_cardinality_tracks_worker_count(self):
        s = fresh(10**9)
        for w in range(8):
            s.assign(f"w{w}")
        assert s.cardinality == 8


class TestFaultTolerance:
    def test_release_orphans_the_interval(self):
        s = fresh(1000)
        s.assign("w1")
        assert s.release("w1") == 1
        # Interval survives, unowned...
        assert s.cardinality == 1
        # ...and the next requester takes all of it.
        a = s.assign("w2")
        assert a.interval == Interval(0, 1000)

    def test_release_unknown_worker_is_noop(self):
        s = fresh(10)
        assert s.release("nobody") == 0

    def test_no_work_lost_across_failures(self):
        s = fresh(1000)
        s.assign("w1")
        s.update("w1", Interval(100, 1000))
        s.assign("w2")  # splits w1's remainder
        s.release("w1")  # w1 dies
        s.assign("w3")  # w3 picks up the orphan
        # union of all intervals must still cover [100, 1000)
        assert s.covered_union_length() == 900

    def test_payload_roundtrip(self):
        s = fresh(1000)
        s.assign("w1")
        s.update("w1", Interval(250, 1000))
        s.assign("w2")
        restored = IntervalSet.from_payload(s.to_payload())
        assert restored.size == s.size
        assert restored.intervals() == s.intervals()

    def test_payload_skips_empty(self):
        restored = IntervalSet.from_payload([(5, 5), (1, 3)])
        assert restored.cardinality == 1

"""Tests for makespan evaluation, Johnson's algorithm, bounds and NEH."""

import itertools

import numpy as np
import pytest

from repro.exceptions import ProblemError
from repro.problems.flowshop import (
    BoundData,
    FlowShopInstance,
    completion_front,
    johnson_makespan,
    johnson_order,
    machine_pairs,
    makespan,
    neh,
    one_machine_bound,
    partial_makespan,
    random_instance,
    tails_matrix,
    two_machine_bound,
    two_machine_makespan,
)


def brute_force_optimum(inst):
    return min(
        makespan(inst, p) for p in itertools.permutations(range(inst.jobs))
    )


class TestMakespan:
    def test_single_job_single_machine(self):
        inst = FlowShopInstance([[7]])
        assert makespan(inst, [0]) == 7

    def test_hand_computed_two_jobs_two_machines(self):
        # job0: (3, 2), job1: (2, 5).
        inst = FlowShopInstance([[3, 2], [2, 5]])
        # order (0,1): m1 completes 3,5; m2: max(3,0)+2=5, max(5,5)+5=10
        assert makespan(inst, [0, 1]) == 10
        # order (1,0): m1: 2,5; m2: 2+5=7, max(5,7)+2=9
        assert makespan(inst, [1, 0]) == 9

    def test_completion_front_monotone_across_machines(self):
        inst = random_instance(6, 4, seed=3)
        front = completion_front(inst, [2, 0, 5])
        assert all(front[j] < front[j + 1] for j in range(3))

    def test_partial_makespan_empty(self):
        inst = random_instance(4, 3, seed=1)
        assert partial_makespan(inst, []) == 0

    def test_partial_prefix_never_exceeds_full(self):
        inst = random_instance(6, 3, seed=9)
        perm = [3, 1, 4, 0, 5, 2]
        values = [partial_makespan(inst, perm[:k]) for k in range(1, 7)]
        assert values == sorted(values)
        assert values[-1] == makespan(inst, perm)

    def test_non_permutation_rejected(self):
        inst = random_instance(4, 2, seed=1)
        with pytest.raises(ProblemError):
            makespan(inst, [0, 1, 2])
        with pytest.raises(ProblemError):
            makespan(inst, [0, 1, 2, 2])

    def test_repeated_jobs_rejected_in_partial(self):
        inst = random_instance(4, 2, seed=1)
        with pytest.raises(ProblemError):
            partial_makespan(inst, [1, 1])

    def test_tails_matrix_values(self):
        inst = FlowShopInstance([[3, 2, 4]])
        assert tails_matrix(inst).tolist() == [[6, 4, 0]]


class TestJohnson:
    def test_optimal_on_two_machines_exhaustive(self):
        for seed in range(8):
            inst = random_instance(7, 2, seed=seed)
            a = inst.processing_times[:, 0]
            b = inst.processing_times[:, 1]
            value, order = johnson_makespan(a, b)
            assert sorted(order) == list(range(7))
            assert value == brute_force_optimum(inst)

    def test_order_matches_makespan(self):
        a = [3, 5, 1, 6]
        b = [4, 2, 3, 6]
        value, order = johnson_makespan(a, b)
        assert two_machine_makespan(a, b, order) == value

    def test_rule_partition(self):
        # Jobs with a <= b precede jobs with a > b.
        a = [1, 9, 2, 8]
        b = [5, 2, 6, 1]
        order = johnson_order(a, b)
        boundary = [a[i] <= b[i] for i in order]
        assert boundary == sorted(boundary, reverse=True)

    def test_lags_delay_second_machine(self):
        a = [2, 2]
        b = [2, 2]
        no_lag = two_machine_makespan(a, b, [0, 1])
        lagged = two_machine_makespan(a, b, [0, 1], lags=[10, 0])
        assert lagged >= no_lag
        assert lagged == 2 + 10 + 2 + 2  # job0 path dominates

    def test_mismatched_vectors_rejected(self):
        with pytest.raises(ValueError):
            johnson_order([1, 2], [1, 2, 3])

    def test_with_lags_still_a_permutation(self):
        value, order = johnson_makespan([3, 1, 4], [2, 2, 2], lags=[5, 0, 1])
        assert sorted(order) == [0, 1, 2]


class TestBounds:
    @pytest.mark.parametrize("seed", range(6))
    def test_root_bounds_admissible(self, seed):
        inst = random_instance(6, 4, seed=seed)
        optimum = brute_force_optimum(inst)
        front = [0] * 4
        remaining = range(6)
        assert one_machine_bound(inst, front, remaining) <= optimum
        assert two_machine_bound(inst, front, remaining) <= optimum

    @pytest.mark.parametrize("seed", range(4))
    def test_bounds_admissible_at_every_node(self, seed):
        # At each partial schedule, LB must not exceed the best full
        # completion of that prefix.
        inst = random_instance(5, 3, seed=seed)
        data = BoundData(inst, pair_strategy="all")
        jobs = list(range(5))
        for prefix_len in range(5):
            for prefix in itertools.permutations(jobs, prefix_len):
                rest = [j for j in jobs if j not in prefix]
                best_completion = min(
                    makespan(inst, list(prefix) + list(tail))
                    for tail in itertools.permutations(rest)
                )
                front = completion_front(inst, prefix)
                rem = np.array(rest, dtype=np.intp)
                assert data.one_machine(front, rem) <= best_completion
                assert data.two_machine(front, rem) <= best_completion
                assert data.combined(front, rem) <= best_completion

    def test_two_machine_dominates_on_two_machines(self):
        # On an actual 2-machine instance LB2 at the root equals the
        # optimum (Johnson solves it exactly).
        inst = random_instance(6, 2, seed=11)
        optimum = brute_force_optimum(inst)
        assert two_machine_bound(inst, [0, 0], range(6)) == optimum

    def test_bound_with_empty_remaining_is_makespan(self):
        inst = random_instance(4, 3, seed=2)
        perm = [2, 0, 3, 1]
        front = completion_front(inst, perm)
        data = BoundData(inst)
        empty = np.array([], dtype=np.intp)
        assert data.one_machine(front, empty) == makespan(inst, perm)
        assert data.combined(front, empty) == makespan(inst, perm)

    def test_bounds_at_least_trivial(self):
        inst = random_instance(10, 5, seed=4)
        data = BoundData(inst, pair_strategy="all")
        front = np.zeros(5, dtype=np.int64)
        rem = np.arange(10, dtype=np.intp)
        assert data.one_machine(front, rem) >= inst.trivial_lower_bound()

    def test_machine_pairs_strategies(self):
        assert machine_pairs(4, "adjacent") == [(0, 1), (1, 2), (2, 3)]
        assert (0, 3) in machine_pairs(4, "adjacent+ends")
        assert len(machine_pairs(5, "all")) == 10
        assert machine_pairs(1) == []
        assert machine_pairs(2, "adjacent+ends") == [(0, 1)]

    def test_unknown_pair_strategy_rejected(self):
        with pytest.raises(ProblemError):
            machine_pairs(4, "bogus")


class TestNEH:
    def test_neh_is_a_permutation(self):
        inst = random_instance(9, 4, seed=5)
        seq, value = neh(inst)
        assert sorted(seq) == list(range(9))
        assert value == makespan(inst, seq)

    def test_neh_at_least_optimum(self):
        for seed in range(5):
            inst = random_instance(6, 3, seed=seed)
            _, value = neh(inst)
            assert value >= brute_force_optimum(inst)

    def test_neh_close_to_optimum_small(self):
        # NEH is typically within a few percent on small instances.
        gaps = []
        for seed in range(5):
            inst = random_instance(7, 4, seed=100 + seed)
            _, value = neh(inst)
            opt = brute_force_optimum(inst)
            gaps.append(value / opt)
        assert max(gaps) < 1.15

    def test_neh_single_job(self):
        inst = FlowShopInstance([[4, 5, 6]])
        seq, value = neh(inst)
        assert seq == [0]
        assert value == 15

    def test_insertion_scan_matches_naive(self):
        from repro.problems.flowshop import insertion_best_position

        inst = random_instance(7, 3, seed=8)
        sequence = [4, 1, 6, 2]
        job = 0
        pos, value = insertion_best_position(inst, list(sequence), job)
        naive = min(
            (
                partial_makespan(
                    inst, sequence[:q] + [job] + sequence[q:]
                ),
                q,
            )
            for q in range(len(sequence) + 1)
        )
        assert (value, pos) == naive

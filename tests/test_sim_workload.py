"""Tests for the simulator workload models (real B&B and synthetic)."""

import math

import pytest

from repro.core import Interval, solve
from repro.exceptions import SimulationError
from repro.grid.simulator import RealBBWorkload, SyntheticWorkload
from repro.problems.flowshop import FlowShopProblem, random_instance


@pytest.fixture(scope="module")
def small_problem():
    return FlowShopProblem(random_instance(6, 3, seed=77))


class TestRealBBWorkload:
    def test_unit_explores_to_completion(self, small_problem):
        wl = RealBBWorkload(small_problem, nodes_per_second=1000)
        unit = wl.create_unit(Interval(0, wl.total_leaves()), float("inf"))
        total_nodes = 0
        while not unit.is_finished():
            report = unit.advance(1.0, power=1.0)
            total_nodes += report.nodes
        assert total_nodes > 0
        assert unit.remaining_interval().is_empty()

    def test_finds_optimum_and_reports_improvements(self, small_problem):
        expected = solve(small_problem).cost
        wl = RealBBWorkload(small_problem, nodes_per_second=1000)
        unit = wl.create_unit(Interval(0, wl.total_leaves()), float("inf"))
        best = float("inf")
        while not unit.is_finished():
            for cost, _ in unit.advance(10.0, 1.0).improvements:
                best = min(best, cost)
        assert best == expected

    def test_consumed_sums_to_interval_length(self, small_problem):
        wl = RealBBWorkload(small_problem, nodes_per_second=1000)
        iv = Interval(100, 600)
        unit = wl.create_unit(iv, float("inf"))
        consumed = 0
        while not unit.is_finished():
            consumed += unit.advance(0.05, 1.0).consumed
        assert consumed == iv.length

    def test_elapsed_capped_by_budget(self, small_problem):
        wl = RealBBWorkload(small_problem, nodes_per_second=100)
        unit = wl.create_unit(Interval(0, wl.total_leaves()), float("inf"))
        report = unit.advance(0.5, power=1.0)
        assert report.elapsed <= 0.5 + 1e-9

    def test_power_scales_throughput(self, small_problem):
        # Pruning lets both finish the whole interval here; the faster
        # host must simply take proportionally less CPU time for the
        # same nodes.
        wl = RealBBWorkload(small_problem, nodes_per_second=100)
        slow = wl.create_unit(Interval(0, 720), float("inf")).advance(10.0, 1.0)
        fast = wl.create_unit(Interval(0, 720), float("inf")).advance(10.0, 3.0)
        assert fast.nodes == slow.nodes
        assert fast.elapsed == pytest.approx(slow.elapsed / 3.0)

    def test_apply_interval_steals_tail(self, small_problem):
        wl = RealBBWorkload(small_problem, nodes_per_second=1000)
        unit = wl.create_unit(Interval(0, 720), float("inf"))
        unit.advance(0.01, 1.0)
        remaining = unit.remaining_interval()
        cut = remaining.begin + max(1, remaining.length // 2)
        unit.apply_interval(Interval(0, cut))
        assert unit.remaining_interval().end == cut

    def test_invalid_rate_rejected(self, small_problem):
        with pytest.raises(SimulationError):
            RealBBWorkload(small_problem, nodes_per_second=0)


class TestSyntheticWorkload:
    def make(self, **kw):
        defaults = dict(
            leaves=10**9,
            seed=5,
            mean_leaf_rate=1e7,
            irregularity=1.0,
            segments=64,
            nodes_per_second=1e4,
            optimum=100.0,
            initial_gap=5.0,
            improvement_count=6,
        )
        defaults.update(kw)
        return SyntheticWorkload(**defaults)

    def test_unit_finishes_interval(self):
        wl = self.make()
        unit = wl.create_unit(Interval(0, wl.total_leaves()), 105.0)
        while not unit.is_finished():
            unit.advance(10.0, power=1.0)
        assert unit.remaining_interval().is_empty()

    def test_full_sweep_discovers_the_optimum(self):
        wl = self.make()
        unit = wl.create_unit(Interval(0, wl.total_leaves()), 105.0)
        best = 105.0
        while not unit.is_finished():
            for cost, _ in unit.advance(10.0, 1.0).improvements:
                best = min(best, cost)
        assert best == 100.0

    def test_improvements_deterministic_across_units(self):
        # Two units over the same numbers see the same improvements —
        # the property that makes duplicated intervals redundant, not
        # divergent.
        wl = self.make()
        iv = Interval(0, wl.total_leaves())

        def sweep():
            unit = wl.create_unit(iv, 105.0)
            found = []
            while not unit.is_finished():
                found.extend(c for c, _ in unit.advance(7.0, 1.0).improvements)
            return found

        assert sweep() == sweep()

    def test_consumed_conserved_under_split(self):
        wl = self.make()
        total = wl.total_leaves()
        mid = total // 3
        consumed = 0
        for iv in (Interval(0, mid), Interval(mid, total)):
            unit = wl.create_unit(iv, 105.0)
            while not unit.is_finished():
                consumed += unit.advance(10.0, 1.0).consumed
        assert consumed == total

    def test_rate_field_is_irregular_but_mean_preserved(self):
        wl = self.make(irregularity=1.5)
        rates = [wl.rate_at(i * (wl.total_leaves() // 64)) for i in range(64)]
        assert max(rates) / min(rates) > 3  # genuinely irregular
        assert sum(rates) / len(rates) == pytest.approx(1e7, rel=0.05)

    def test_huge_leaf_counts_supported(self):
        # Ta056 scale: 50! leaves.
        wl = self.make(leaves=math.factorial(50), mean_leaf_rate=1e55)
        unit = wl.create_unit(Interval(0, wl.total_leaves()), 105.0)
        report = unit.advance(3600.0, power=2.0)
        assert report.consumed > 0
        assert unit.remaining_interval().begin == report.consumed

    def test_nodes_proportional_to_elapsed(self):
        wl = self.make()
        unit = wl.create_unit(Interval(0, wl.total_leaves()), 105.0)
        report = unit.advance(2.0, power=1.0)
        assert report.nodes == pytest.approx(
            report.elapsed * 1e4, rel=0.01, abs=2
        )

    def test_set_upper_bound_filters_improvements(self):
        wl = self.make()
        unit = wl.create_unit(Interval(0, wl.total_leaves()), 105.0)
        unit.set_upper_bound(100.0)  # already optimal: nothing can improve
        while not unit.is_finished():
            assert unit.advance(10.0, 1.0).improvements == []

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            self.make(leaves=0)
        with pytest.raises(SimulationError):
            self.make(segments=0)

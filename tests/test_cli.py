"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.jobs == 9
        assert args.workers == 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])


class TestSolveCommand:
    def test_sequential_solve(self, capsys):
        assert main(["solve", "--jobs", "7", "--machines", "3", "--seed", "21"]) == 0
        out = capsys.readouterr().out
        assert "optimal makespan: 582" in out
        assert "proof: True" in out

    def test_solve_without_neh(self, capsys):
        assert main(
            ["solve", "--jobs", "6", "--machines", "3", "--seed", "1", "--no-neh"]
        ) == 0
        assert "NEH" not in capsys.readouterr().out

    def test_ig_warm_start(self, capsys):
        assert main(
            ["solve", "--jobs", "8", "--machines", "3", "--seed", "2",
             "--ig-iterations", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "Iterated Greedy upper bound" in out
        assert "proof: True" in out

    def test_checkpointed_solve_and_resume(self, capsys, tmp_path):
        args = [
            "solve", "--jobs", "7", "--machines", "3", "--seed", "21",
            "--checkpoint-dir", str(tmp_path),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "checkpoints written" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "resumed from" in second
        assert "optimal makespan: 582" in second

    def test_parallel_solve(self, capsys):
        assert main(
            [
                "solve", "--jobs", "7", "--machines", "3", "--seed", "21",
                "--workers", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "optimal makespan: 582" in out
        assert "workers=2" in out


class TestOtherCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Total: 1889" in out
        assert "Sw24978" in out

    def test_taillard(self, capsys):
        assert main(
            ["taillard", "--jobs", "20", "--machines", "5", "--index", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "Ta001" in out
        assert "trivial lower bound" in out

    def test_p2p(self, capsys):
        assert main(
            ["p2p", "--peers", "3", "--jobs", "7", "--machines", "3",
             "--seed", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "P2P optimum" in out
        assert "Safra termination: True" in out

    def test_report_all_claims_hold(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "all 12 claims hold" in out
        assert "[FAIL]" not in out

    def test_simulate_small(self, capsys):
        assert main(
            [
                "simulate", "--workers", "8", "--days", "0.01",
                "--seed", "2", "--always-on",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Figure 7" in out
        assert "proof: True" in out

"""Property tests for the PR 3 coordination hot-path machinery.

Three pieces get pinned down here, independently of any OS process:

* :class:`~repro.grid.runtime.bbprocess.AdaptiveSlicer` must converge
  toward its wall-clock period target under any (steady) throughput,
  re-converge after a throughput shift, and never move faster than its
  growth cap or outside its clamp range.
* :class:`~repro.grid.runtime.shared.SharedBound` must be a
  monotonic-min cell: under concurrent writer processes the stored
  value is always exactly the minimum of everything offered.
* The engine's ``bound_provider`` hook must tighten pruning mid-slice
  without ever changing the proved optimum.
"""

import math
import multiprocessing as mp
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Interval, solve
from repro.core.engine import IntervalExplorer
from repro.grid.runtime import AdaptiveSlicer, SharedBound
from repro.problems.flowshop import FlowShopProblem, random_instance


class TestAdaptiveSlicer:
    @given(
        rate=st.floats(1e2, 1e6),
        target=st.floats(0.05, 1.0),
        initial=st.integers(1, 10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_converges_to_period_target(self, rate, target, initial):
        """With steady throughput the slice settles at rate × target."""
        slicer = AdaptiveSlicer(
            initial, target_period=target, min_nodes=1, max_nodes=1 << 40
        )
        for _ in range(60):
            nodes = slicer.next_slice()
            slicer.observe(nodes, nodes / rate)
        period = slicer.next_slice() / rate
        # converged: the implied update period is within 10% of target
        # (int truncation costs at most one node = 1/rate seconds)
        assert abs(period - target) <= 0.1 * target + 1.0 / rate

    @given(
        rate=st.floats(1e3, 1e5),
        shift=st.floats(0.1, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_reconverges_after_throughput_shift(self, rate, shift):
        """A worker that speeds up or slows down re-finds the cadence."""
        target = 0.2
        slicer = AdaptiveSlicer(
            500, target_period=target, min_nodes=1, max_nodes=1 << 40
        )
        for _ in range(40):
            nodes = slicer.next_slice()
            slicer.observe(nodes, nodes / rate)
        new_rate = rate * shift
        for _ in range(60):
            nodes = slicer.next_slice()
            slicer.observe(nodes, nodes / new_rate)
        period = slicer.next_slice() / new_rate
        assert abs(period - target) <= 0.1 * target + 1.0 / new_rate

    @given(
        observations=st.lists(
            st.tuples(st.integers(1, 10_000), st.floats(1e-6, 10.0)),
            max_size=50,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_growth_cap_and_clamps_always_hold(self, observations):
        """No single observation moves the budget more than max_growth×."""
        slicer = AdaptiveSlicer(
            200, target_period=0.25, min_nodes=64, max_nodes=4096
        )
        for nodes, seconds in observations:
            before = slicer.next_slice()
            slicer.observe(nodes, seconds)
            after = slicer.next_slice()
            assert 64 <= after <= 4096
            assert after <= math.ceil(before * 2.0)
            assert after >= math.floor(before / 2.0)

    def test_no_target_means_fixed_slices(self):
        slicer = AdaptiveSlicer(300, target_period=None)
        for _ in range(10):
            slicer.observe(300, 1e-4)  # blazing fast: would grow if adaptive
        assert slicer.next_slice() == 300

    def test_fixed_mode_honors_sizes_below_min_nodes(self):
        # The [min_nodes, max_nodes] clamp only bounds adaptive steps;
        # a fixed-size slicer must run exactly the requested count, so
        # e.g. chaos configs with update_nodes=50 keep their fault
        # schedules keyed on update counts.
        slicer = AdaptiveSlicer(50, target_period=None, min_nodes=64)
        slicer.observe(50, 1e-4)
        assert slicer.next_slice() == 50

    def test_degenerate_observations_ignored(self):
        slicer = AdaptiveSlicer(200, target_period=0.25, min_nodes=64)
        slicer.observe(0, 1.0)
        slicer.observe(100, 0.0)
        assert slicer.next_slice() == 200
        assert slicer.rate is None


def _offer_many(bound, costs, barrier):
    barrier.wait()  # maximise real interleaving across writers
    for cost in costs:
        bound.offer(cost)


class TestSharedBound:
    def test_monotonic_min_under_concurrent_writers(self):
        ctx = mp.get_context("fork")
        bound = SharedBound(ctx=ctx)
        rng = random.Random(7)
        per_writer = [
            [rng.uniform(0.0, 1000.0) for _ in range(200)] for _ in range(4)
        ]
        barrier = ctx.Barrier(4)
        procs = [
            ctx.Process(target=_offer_many, args=(bound, costs, barrier))
            for costs in per_writer
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        expected = min(min(costs) for costs in per_writer)
        assert bound.read() == expected

    @given(st.lists(st.floats(-1e9, 1e9), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_read_never_regresses(self, costs):
        bound = SharedBound()
        low = math.inf
        for cost in costs:
            improved = bound.offer(cost)
            assert improved == (cost < low)
            low = min(low, cost)
            assert bound.read() == (low if low < math.inf else math.inf)

    def test_initial_and_provider(self):
        bound = SharedBound(123.0)
        assert bound.as_provider()() == 123.0
        assert not bound.offer(123.0)  # ties do not rewrite
        assert bound.offer(122.0)


class TestEngineBoundProvider:
    def test_mid_slice_refresh_prunes_but_preserves_optimum(self):
        instance = random_instance(7, 3, seed=5)
        problem = FlowShopProblem(instance)
        baseline = solve(FlowShopProblem(instance))

        # An oracle bound that becomes available mid-exploration: the
        # provider serves the true optimum from the start.
        polls = {"count": 0}

        def provider():
            polls["count"] += 1
            return baseline.cost

        explorer = IntervalExplorer(
            FlowShopProblem(instance),
            Interval(0, problem.total_leaves()),
            bound_provider=provider,
            bound_poll_nodes=16,
        )
        explorer.run()
        assert polls["count"] > 0
        assert explorer.incumbent.cost == baseline.cost
        # pruning can only get tighter with the oracle bound installed
        assert (
            explorer.stats.nodes_explored <= baseline.stats.nodes_explored
        )

    def test_provider_with_inf_changes_nothing(self):
        instance = random_instance(6, 3, seed=9)
        plain = solve(FlowShopProblem(instance))
        explorer = IntervalExplorer(
            FlowShopProblem(instance),
            bound_provider=lambda: math.inf,
            bound_poll_nodes=1,
        )
        explorer.run()
        assert explorer.incumbent.cost == plain.cost
        assert vars(explorer.stats) == vars(plain.stats)

"""Unit tests of the simulated farmer: direct message handling."""

import pytest

from repro.core import Incumbent, Interval
from repro.exceptions import SimulationError
from repro.grid.simulator.events import SimClock
from repro.grid.simulator.failures import FarmerFailurePlan
from repro.grid.simulator.farmer import FarmerConfig, SimFarmer
from repro.grid.simulator.messages import (
    IntervalUpdate,
    SolutionPush,
    UpdateReply,
    WorkReply,
    WorkRequest,
)
from repro.grid.simulator.metrics import MetricsCollector


def make_farmer(length=1000, **config_kw):
    clock = SimClock()
    metrics = MetricsCollector(length)
    farmer = SimFarmer(
        clock,
        Interval(0, length),
        metrics,
        FarmerConfig(**config_kw),
        initial_best=Incumbent(100.0, None),
    )
    return clock, farmer


def rpc(clock, farmer, message):
    """Deliver a message and drain the service event; return the reply."""
    box = []
    farmer.deliver(message, box.append)
    while clock.step() and not box:
        pass
    return box[0] if box else None


class TestHandlers:
    def test_work_request_grants_interval(self):
        clock, farmer = make_farmer()
        reply = rpc(clock, farmer, WorkRequest("w0", 1.0))
        assert isinstance(reply, WorkReply)
        assert reply.interval == Interval(0, 1000)
        assert reply.best_cost == 100.0

    def test_update_reconciles_and_shares_solution(self):
        clock, farmer = make_farmer()
        rpc(clock, farmer, WorkRequest("w0", 1.0))
        rpc(clock, farmer, SolutionPush("w1", 42.0, (0, 1)))
        reply = rpc(clock, farmer, IntervalUpdate("w0", Interval(250, 1000), 250, 9))
        assert isinstance(reply, UpdateReply)
        assert reply.interval == Interval(250, 1000)
        assert reply.best_cost == 42.0

    def test_termination_on_empty(self):
        clock, farmer = make_farmer()
        rpc(clock, farmer, WorkRequest("w0", 1.0))
        rpc(clock, farmer, IntervalUpdate("w0", Interval(1000, 1000), 1000, 1))
        assert farmer.terminated
        reply = rpc(clock, farmer, WorkRequest("w1", 1.0))
        assert reply.terminate

    def test_unknown_message_raises(self):
        clock, farmer = make_farmer()
        with pytest.raises(SimulationError):
            rpc(clock, farmer, object())

    def test_service_time_accumulates_farmer_busy(self):
        clock, farmer = make_farmer(service_time=0.01)
        rpc(clock, farmer, WorkRequest("w0", 1.0))
        rpc(clock, farmer, WorkRequest("w1", 1.0))
        assert farmer.metrics.farmer_busy == pytest.approx(0.02)

    def test_queueing_serialises_service(self):
        # Two simultaneous deliveries: replies come at t=s and t=2s.
        clock, farmer = make_farmer(service_time=1.0)
        times = []
        farmer.deliver(WorkRequest("a", 1.0), lambda r: times.append(clock.now))
        farmer.deliver(WorkRequest("b", 1.0), lambda r: times.append(clock.now))
        # bounded horizon: the farmer's checkpoint timer reschedules
        # itself forever, so an unbounded run() would never drain
        clock.run(until=10.0)
        assert times == [1.0, 2.0]


class TestCheckpointAndFailure:
    def test_periodic_checkpoint_counts(self):
        clock, farmer = make_farmer(checkpoint_period=10.0)
        clock.run(until=35.0)
        assert farmer.checkpoints_taken == 3

    def test_crash_drops_messages(self):
        clock = SimClock()
        metrics = MetricsCollector(1000)
        farmer = SimFarmer(
            clock,
            Interval(0, 1000),
            metrics,
            FarmerConfig(),
            failure_plan=FarmerFailurePlan([(10.0, 5.0)]),
        )
        clock.run(until=12.0)  # farmer is now down
        box = []
        farmer.deliver(WorkRequest("w0", 1.0), box.append)
        clock.run(until=13.0)
        assert box == []
        assert farmer.messages_dropped == 1

    def test_recovery_restores_snapshot(self):
        clock = SimClock()
        metrics = MetricsCollector(1000)
        farmer = SimFarmer(
            clock,
            Interval(0, 1000),
            metrics,
            FarmerConfig(checkpoint_period=5.0),
            failure_plan=FarmerFailurePlan([(12.0, 3.0)]),
        )
        # worker takes everything and reports progress before the crash
        reply = rpc(clock, farmer, WorkRequest("w0", 1.0))
        assert reply.interval == Interval(0, 1000)
        rpc(clock, farmer, IntervalUpdate("w0", Interval(400, 1000), 400, 4))
        clock.run(until=11.0)  # checkpoints at 5 and 10 capture [400,1000)
        clock.run(until=16.0)  # crash at 12, recovery at 15
        assert farmer.recoveries == 1
        assert farmer.intervals.size == 600

    def test_termination_checkpointed_eagerly(self):
        # A crash after termination must not resurrect stale work.
        clock = SimClock()
        metrics = MetricsCollector(1000)
        farmer = SimFarmer(
            clock,
            Interval(0, 1000),
            metrics,
            FarmerConfig(checkpoint_period=1000.0),  # no periodic rescue
            failure_plan=FarmerFailurePlan([(50.0, 10.0)]),
        )
        rpc(clock, farmer, WorkRequest("w0", 1.0))
        rpc(clock, farmer, IntervalUpdate("w0", Interval(1000, 1000), 1000, 1))
        assert farmer.terminated
        clock.run(until=70.0)  # crash + recovery
        assert farmer.intervals.is_empty()

    def test_death_timeout_releases_silent_workers(self):
        clock, farmer = make_farmer(
            checkpoint_period=10.0, death_timeout=15.0
        )
        rpc(clock, farmer, WorkRequest("w0", 1.0))
        clock.run(until=40.0)  # several checkpoint ticks, no contact
        # the orphaned interval goes entirely to the next requester
        reply = rpc(clock, farmer, WorkRequest("w1", 1.0))
        assert reply.interval == Interval(0, 1000)

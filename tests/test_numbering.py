"""Unit tests for node numbers and ranges (paper §3.2–§3.3)."""

import pytest

from repro.core import Interval, TreeShape, leaf_ranks_for_number, node_number, node_range
from repro.core.numbering import ancestor_at_depth, check_rank_path, common_depth
from repro.exceptions import NumberingError


class TestNodeNumber:
    def test_root_number_is_zero(self):
        assert node_number(TreeShape.permutation(4), ()) == 0

    def test_paper_figure2_values(self):
        # Figure 2 shows a permutation tree on 3 elements with the
        # leaves numbered 0..5 left to right.
        shape = TreeShape.permutation(3)
        leaf_numbers = []
        for r0 in range(3):
            for r1 in range(2):
                for r2 in range(1):
                    leaf_numbers.append(node_number(shape, (r0, r1, r2)))
        assert leaf_numbers == [0, 1, 2, 3, 4, 5]

    def test_internal_number_equals_leftmost_leaf(self):
        shape = TreeShape.permutation(4)
        for r0 in range(4):
            n_internal = node_number(shape, (r0,))
            n_leaf = node_number(shape, (r0, 0, 0, 0))
            assert n_internal == n_leaf

    def test_leaf_numbers_form_bijection_binary(self):
        shape = TreeShape.binary(5)
        seen = set()
        for number in range(shape.total_leaves):
            ranks = leaf_ranks_for_number(shape, number)
            assert node_number(shape, ranks) == number
            seen.add(ranks)
        assert len(seen) == 32

    def test_leaf_numbers_form_bijection_permutation(self):
        shape = TreeShape.permutation(5)
        for number in range(shape.total_leaves):
            assert node_number(shape, leaf_ranks_for_number(shape, number)) == number

    def test_mixed_shape_bijection(self):
        shape = TreeShape([3, 2, 4])
        numbers = sorted(
            node_number(shape, (a, b, c))
            for a in range(3)
            for b in range(2)
            for c in range(4)
        )
        assert numbers == list(range(24))

    def test_sibling_numbers_differ_by_child_weight(self):
        # eq. 6: the rank multiplies the weight of the child level.
        shape = TreeShape.permutation(5)
        w1 = shape.weight(1)
        assert node_number(shape, (3,)) - node_number(shape, (2,)) == w1


class TestNodeRange:
    def test_root_range_covers_all_leaves(self):
        shape = TreeShape.permutation(4)
        assert node_range(shape, ()) == Interval(0, 24)

    def test_leaf_range_is_singleton(self):
        shape = TreeShape.binary(3)
        rng = node_range(shape, (1, 0, 1))
        assert rng.length == 1
        assert rng.begin == node_number(shape, (1, 0, 1))

    def test_child_ranges_partition_parent(self):
        shape = TreeShape.permutation(4)
        parent = node_range(shape, (2,))
        child_ranges = [node_range(shape, (2, r)) for r in range(3)]
        assert child_ranges[0].begin == parent.begin
        assert child_ranges[-1].end == parent.end
        for left, right in zip(child_ranges, child_ranges[1:]):
            assert left.is_adjacent_left_of(right)

    def test_range_matches_eq7(self):
        shape = TreeShape.permutation(5)
        ranks = (1, 2)
        number = node_number(shape, ranks)
        assert node_range(shape, ranks) == Interval(number, number + shape.weight(2))


class TestValidation:
    def test_rank_too_large_rejected(self):
        with pytest.raises(NumberingError):
            check_rank_path(TreeShape.permutation(3), (3,))

    def test_negative_rank_rejected(self):
        with pytest.raises(NumberingError):
            check_rank_path(TreeShape.permutation(3), (-1,))

    def test_path_too_deep_rejected(self):
        with pytest.raises(NumberingError):
            check_rank_path(TreeShape.binary(2), (0, 0, 0))

    def test_leaf_number_out_of_range_rejected(self):
        shape = TreeShape.binary(3)
        with pytest.raises(NumberingError):
            leaf_ranks_for_number(shape, 8)
        with pytest.raises(NumberingError):
            leaf_ranks_for_number(shape, -1)


class TestPathHelpers:
    def test_ancestor_at_depth(self):
        assert ancestor_at_depth((1, 2, 0), 2) == (1, 2)
        assert ancestor_at_depth((1, 2, 0), 0) == ()

    def test_ancestor_invalid_depth(self):
        with pytest.raises(NumberingError):
            ancestor_at_depth((1, 2), 3)

    def test_common_depth(self):
        assert common_depth((1, 2, 0), (1, 2, 3)) == 2
        assert common_depth((0,), (1,)) == 0
        assert common_depth((1, 1), (1, 1)) == 2

"""The grid/net transport layer: units and loopback end-to-end runs.

Covers the backoff helper, the wire form of problem specs, both
transport backends against the interface contract, reconnect behavior
under injected socket resets, Bye-stat survival across a coordinator
restart when the goodbye rides a reconnected transport, and the
standalone ``GridServer`` / ``run_worker`` pair.
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.core import solve
from repro.grid.net.backoff import decorrelated_jitter
from repro.grid.net.inprocess import InProcessTransport
from repro.grid.net.serve import GridServer, ServeConfig, run_worker
from repro.grid.net.tcp import (
    SocketFaults,
    TcpClientConnection,
    TcpListener,
    TcpTransport,
)
from repro.grid.net.transport import TransportError, TransportTimeout
from repro.grid.runtime import (
    CoordinatorCrash,
    FaultPlan,
    RuntimeConfig,
    flowshop_spec,
    solve_parallel,
)
from repro.grid.runtime.protocol import (
    Ack,
    Request,
    spec_from_wire,
    spec_to_wire,
)
from repro.problems.flowshop import FlowShopProblem, random_instance

fs_instance = random_instance(8, 4, seed=51)
serial = solve(FlowShopProblem(fs_instance))


def tcp_config(**overrides) -> RuntimeConfig:
    base = dict(
        workers=2,
        update_nodes=200,
        update_period=0.05,
        max_slice_nodes=400,
        deadline=90,
        transport="tcp",
    )
    base.update(overrides)
    return RuntimeConfig(**base)


class TestDecorrelatedJitter:
    def test_stays_within_bounds(self):
        rng = random.Random(7)
        delay = 0.05
        for _ in range(500):
            delay = decorrelated_jitter(rng, 0.05, delay, 2.0)
            assert 0.05 <= delay <= 2.0

    def test_growth_bounded_by_triple(self):
        rng = random.Random(11)
        for _ in range(200):
            prev = rng.uniform(0.05, 10.0)
            nxt = decorrelated_jitter(rng, 0.05, prev, 1e9)
            assert nxt <= max(0.05, prev * 3.0)

    def test_rejects_bad_parameters(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            decorrelated_jitter(rng, 0.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            decorrelated_jitter(rng, 1.0, 1.0, 0.5)

    def test_decorrelates_two_synchronized_clients(self):
        a, b = random.Random(1), random.Random(2)
        seq_a = seq_b = 0.1
        diverged = False
        for _ in range(10):
            seq_a = decorrelated_jitter(a, 0.1, seq_a, 8.0)
            seq_b = decorrelated_jitter(b, 0.1, seq_b, 8.0)
            if abs(seq_a - seq_b) > 1e-9:
                diverged = True
        assert diverged


class TestSpecWire:
    def test_roundtrip_builds_the_same_problem(self):
        spec = flowshop_spec(fs_instance)
        wire = spec_to_wire(spec)
        assert isinstance(wire["factory"], str) and ":" in wire["factory"]
        rebuilt = spec_from_wire(wire)
        assert rebuilt.build().total_leaves() == spec.build().total_leaves()

    def test_non_module_factory_refused(self):
        from repro.grid.runtime.protocol import ProblemSpec

        with pytest.raises(ValueError):
            spec_to_wire(ProblemSpec(lambda: None))

    def test_bad_reference_refused(self):
        with pytest.raises(ValueError):
            spec_from_wire({"factory": "no-colon"})
        with pytest.raises(ValueError):
            spec_from_wire({"factory": "math:not_a_real_name"})


class TestInProcessTransport:
    def test_request_reply_roundtrip(self):
        transport = InProcessTransport()
        listener = transport.listen()
        conn = transport.connector_for("w0").connect("w0")
        conn.send(Request("w0", seq=1))
        message = listener.recv(timeout=1.0)
        assert message == Request("w0", seq=1)
        listener.send("w0", Ack(5.0, seq=1))
        assert conn.recv(timeout=1.0) == Ack(5.0, seq=1)

    def test_recv_timeout(self):
        transport = InProcessTransport()
        listener = transport.listen()
        with pytest.raises(TransportTimeout):
            listener.recv(timeout=0.01)

    def test_unknown_worker_send_raises(self):
        transport = InProcessTransport()
        listener = transport.listen()
        with pytest.raises(TransportError):
            listener.send("ghost", Ack(1.0))


class TestTcpTransport:
    def test_welcome_carries_spec(self):
        spec = flowshop_spec(fs_instance)
        listener = TcpListener(spec_wire=spec_to_wire(spec), peer_timeout=5.0)
        try:
            conn = TcpClientConnection(
                *listener.address, "w0", heartbeat_interval=None
            )
            try:
                conn.open(timeout=5.0)
                assert conn.welcome is not None
                rebuilt = spec_from_wire(conn.welcome.spec)
                assert (
                    rebuilt.build().total_leaves()
                    == spec.build().total_leaves()
                )
            finally:
                conn.close()
        finally:
            listener.close()

    def test_rpc_survives_client_resets(self):
        """Every other send aborts the connection with an RST; a retry
        loop with the same seq still completes every RPC."""
        listener = TcpListener(peer_timeout=5.0)
        server_done = threading.Event()

        def server():
            while not server_done.is_set():
                try:
                    message = listener.recv(timeout=0.05)
                except TransportTimeout:
                    continue
                listener.send(
                    message.worker, Ack(float(message.seq), seq=message.seq)
                )

        thread = threading.Thread(target=server, daemon=True)
        thread.start()
        conn = TcpClientConnection(
            *listener.address,
            "w0",
            heartbeat_interval=None,
            reconnect_base=0.01,
            reconnect_cap=0.1,
            faults=SocketFaults(reset_after_sends=2),
        )
        try:
            for seq in range(1, 8):
                reply = None
                message = Request("w0", seq=seq)
                for _ in range(10):
                    conn.send(message)
                    try:
                        reply = conn.recv(timeout=0.3)
                    except TransportTimeout:
                        continue
                    if reply.seq == seq:
                        break
                assert reply is not None and reply.seq == seq
            assert conn.connects >= 2, "resets should have forced reconnects"
        finally:
            server_done.set()
            conn.close()
            listener.close()
            thread.join(timeout=2.0)

    def test_reconnect_supersedes_stale_connection(self):
        listener = TcpListener(peer_timeout=5.0)
        try:
            old = TcpClientConnection(
                *listener.address, "w0", heartbeat_interval=None
            )
            old.open(timeout=5.0)
            new = TcpClientConnection(
                *listener.address, "w0", heartbeat_interval=None
            )
            new.open(timeout=5.0)
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                if listener.connected_workers() == ["w0"]:
                    break
                time.sleep(0.02)
            # Replies go to the most recent Hello for that worker id.
            listener.send("w0", Ack(1.0, seq=1))
            assert new.recv(timeout=2.0) == Ack(1.0, seq=1)
            old.close()
            new.close()
        finally:
            listener.close()

    def test_unreachable_coordinator_times_out_not_raises(self):
        # Nothing listens on this port: send must drop silently (the
        # retry machinery's job), recv must time out.
        conn = TcpClientConnection(
            "127.0.0.1",
            1,  # reserved port, nothing there
            "w0",
            heartbeat_interval=None,
            connect_timeout=0.2,
            reconnect_base=0.01,
            reconnect_cap=0.05,
        )
        try:
            conn.send(Request("w0", seq=1))  # no exception
            with pytest.raises(TransportTimeout):
                conn.recv(timeout=0.2)
        finally:
            conn.close()


class TestParallelOverTcp:
    def test_same_optimum_as_serial(self):
        result = solve_parallel(flowshop_spec(fs_instance), tcp_config())
        assert result.optimal
        assert result.cost == serial.cost
        assert set(result.worker_stats) == {"worker-0", "worker-1"}

    def test_node_accounting_matches_worker_reports(self):
        result = solve_parallel(
            flowshop_spec(fs_instance), tcp_config(workers=1)
        )
        assert result.optimal and result.cost == serial.cost
        reported = sum(s["nodes"] for s in result.worker_stats.values())
        assert result.nodes_explored == reported

    def test_socket_faults_on_inprocess_transport_refused(self):
        from repro.exceptions import RuntimeProtocolError

        with pytest.raises(RuntimeProtocolError):
            solve_parallel(
                flowshop_spec(fs_instance),
                tcp_config(
                    transport="inprocess",
                    socket_faults=SocketFaults(reset_after_sends=3),
                ),
            )

    def test_unknown_transport_refused(self):
        from repro.exceptions import RuntimeProtocolError

        with pytest.raises(RuntimeProtocolError):
            solve_parallel(
                flowshop_spec(fs_instance), tcp_config(transport="carrier-pigeon")
            )

    def test_bye_stats_survive_restart_over_reconnected_transport(self):
        """Satellite regression: the coordinator crashes mid-run AND the
        workers' connections are being reset — the final Byes arrive
        over reconnected transports at a recovered coordinator, and the
        launcher still reports every worker's stats."""
        plan = FaultPlan(
            coordinator_crashes=[
                CoordinatorCrash(after_messages=6, downtime=0.3)
            ]
        )
        result = solve_parallel(
            flowshop_spec(fs_instance),
            tcp_config(
                reply_timeout=0.4,
                max_retries=8,
                lease_seconds=0.6,
                socket_faults=SocketFaults(reset_after_sends=4),
                fault_plan=plan,
            ),
        )
        assert result.optimal
        assert result.cost == serial.cost
        assert result.coordinator_restarts == 1
        assert set(result.worker_stats) == {"worker-0", "worker-1"}
        for stats in result.worker_stats.values():
            assert stats["nodes"] > 0


class TestGridServer:
    def test_serve_and_workers_loopback(self):
        spec = flowshop_spec(fs_instance)
        server = GridServer(
            spec,
            ServeConfig(port=0, deadline=60, lease_seconds=5.0,
                        linger_seconds=5.0),
        )
        host, port = server.address
        outcome = {}

        def serve():
            outcome["result"] = server.serve_forever()

        server_thread = threading.Thread(target=serve, daemon=True)
        server_thread.start()
        worker_threads = [
            threading.Thread(
                target=run_worker,
                args=(host, port, f"tw-{i}"),
                kwargs=dict(
                    update_nodes=200,
                    update_period=0.05,
                    reply_timeout=2.0,
                    max_retries=4,
                    heartbeat_interval=0.5,
                ),
                daemon=True,
            )
            for i in range(2)
        ]
        for t in worker_threads:
            t.start()
        for t in worker_threads:
            t.join(timeout=60)
        server_thread.join(timeout=60)
        assert not server_thread.is_alive()
        result = outcome["result"]
        assert result.optimal
        assert result.cost == serial.cost
        # The workers got the problem from the Welcome, not from us;
        # node accounting must still reconcile exactly.
        assert set(result.worker_stats) == {"tw-0", "tw-1"}
        reported = sum(s["nodes"] for s in result.worker_stats.values())
        assert result.nodes_explored == reported

    def test_shutdown_stops_an_idle_server(self):
        server = GridServer(
            flowshop_spec(fs_instance), ServeConfig(port=0, deadline=30)
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        time.sleep(0.2)
        server.shutdown()
        thread.join(timeout=5.0)
        assert not thread.is_alive()

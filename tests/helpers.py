"""Shared toy problems and utilities for the test suite."""

from __future__ import annotations

import itertools
import math
from typing import Sequence, Tuple

from repro.core import Problem, TreeShape


class PermutationCostProblem(Problem):
    """Minimise ``sum_pos cost[pos][element]`` over permutations.

    The search tree is the permutation tree; a state is
    ``(placed_elements, cost_so_far, remaining_elements_sorted)``.
    Children place each remaining element, in ascending element order —
    the deterministic rank order the interval coding requires.

    The lower bound is admissible but deliberately weak (cost so far
    plus, for each open position, the cheapest remaining element),
    which keeps plenty of branching alive for engine tests.
    """

    def __init__(self, cost: Sequence[Sequence[float]]):
        self.cost = [list(row) for row in cost]
        self.n = len(self.cost)
        for row in self.cost:
            assert len(row) == self.n, "cost matrix must be square"

    def tree_shape(self) -> TreeShape:
        return TreeShape.permutation(self.n)

    def root_state(self):
        return ((), 0.0, tuple(range(self.n)))

    def branch(self, state, depth: int):
        placed, cost_so_far, remaining = state
        children = []
        for idx, element in enumerate(remaining):
            children.append(
                (
                    placed + (element,),
                    cost_so_far + self.cost[depth][element],
                    remaining[:idx] + remaining[idx + 1 :],
                )
            )
        return children

    def lower_bound(self, state, depth: int) -> float:
        placed, cost_so_far, remaining = state
        bound = cost_so_far
        for pos in range(depth, self.n):
            bound += min(self.cost[pos][e] for e in remaining)
        return bound

    def leaf_cost(self, state) -> float:
        return state[1]

    def leaf_solution(self, state):
        return state[0]

    def brute_force(self) -> Tuple[float, Tuple[int, ...]]:
        best = (math.inf, ())
        for perm in itertools.permutations(range(self.n)):
            total = sum(self.cost[pos][e] for pos, e in enumerate(perm))
            if total < best[0]:
                best = (total, perm)
        return best


class CountingLeafProblem(Problem):
    """Leaf cost == leaf number, over an arbitrary regular tree.

    Makes exploration order and coverage directly observable: the
    minimum over interval ``[A, B)`` is exactly ``A``, and the visited
    set is checkable against the interval.  The bound is ``-inf`` so no
    pruning ever hides a leaf (pass ``pruning=True`` for the exact,
    aggressively-pruning variant).
    """

    def __init__(self, shape: TreeShape, pruning: bool = False):
        self._shape = shape
        self._pruning = pruning
        self.visited_leaves: list = []

    def tree_shape(self) -> TreeShape:
        return self._shape

    def root_state(self):
        return 0  # state = node number of the leftmost leaf below

    def branch(self, state, depth: int):
        w = self._shape.weights()[depth + 1]
        return [state + r * w for r in range(self._shape.branching[depth])]

    def lower_bound(self, state, depth: int) -> float:
        return float(state) if self._pruning else -math.inf

    def leaf_cost(self, state) -> float:
        self.visited_leaves.append(state)
        return float(state)

    def leaf_solution(self, state):
        return state


def toy_cost_matrix(n: int, seed: int = 0) -> list:
    """Deterministic pseudo-random integer cost matrix."""
    values = []
    x = seed * 2654435761 % (2**32) or 1
    for pos in range(n):
        row = []
        for elem in range(n):
            x = (1103515245 * x + 12345) % (2**31)
            row.append(1 + x % 97)
        values.append(row)
    return values

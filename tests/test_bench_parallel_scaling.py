"""Tier-1 smoke test for the parallel-scaling benchmark.

Runs ``benchmarks/bench_parallel_scaling.py`` at its ``--quick`` scale
(2 workers) on every test run: the point is not the timings but the
benchmark's built-in verification — every parallel configuration,
pipelined and legacy, must prove exactly the optimum the serial engine
proves — so the coordination hot path cannot silently rot.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks.bench_parallel_scaling import run_benchmark  # noqa: E402


def test_quick_benchmark_proves_serial_optimum_everywhere():
    report = run_benchmark(quick=True)
    assert report["scaling"], "benchmark produced no configurations"
    serial_cost = report["workload"]["serial_cost"]
    for rec in report["scaling"]:
        # run_benchmark raises on any optimum mismatch; double-check
        # the recorded invariants anyway.
        assert rec["serial_identical_optimum"] is True
        assert rec["cost"] == serial_cost
        assert rec["nodes_explored"] > 0
        assert rec["nodes_per_sec"] > 0
    assert report["scaling"][0]["workers"] == 1
    assert report["scaling"][0]["speedup_vs_1_worker"] == 1.0


def test_quick_benchmark_records_coordination_breakdown():
    report = run_benchmark(quick=True, worker_counts=[2])
    (rec,) = report["scaling"]
    assert len(rec["worker_breakdown"]) == 2
    for row in rec["worker_breakdown"]:
        assert row["explore_seconds"] > 0.0
        assert row["rpc_wait_seconds"] >= 0.0
        assert 0.0 <= row["rpc_wait_share"] <= 1.0
    tax = report["coordination_tax"]
    assert tax["workers"] == 2
    assert tax["legacy_run"]["mode"] == "legacy"
    assert tax["legacy_run"]["cost"] == report["workload"]["serial_cost"]

"""Tests for flow-shop instances and the Taillard generator."""

import numpy as np
import pytest

from repro.exceptions import ProblemError
from repro.problems.flowshop import (
    FlowShopInstance,
    TIME_SEEDS,
    TaillardRNG,
    instance_classes,
    makespan,
    random_instance,
    taillard_instance,
    taillard_matrix,
)

# The optimal Ta056 schedule printed in the paper (§5.3), 1-indexed.
PAPER_TA056_SCHEDULE = [
    14, 37, 3, 18, 8, 33, 11, 21, 42, 5, 13, 49, 50, 20, 28, 45, 43,
    41, 46, 15, 24, 44, 40, 36, 39, 4, 16, 47, 17, 27, 1, 26, 10, 19,
    32, 25, 30, 7, 2, 31, 23, 6, 48, 22, 29, 34, 9, 35, 38, 12,
]


class TestInstanceBasics:
    def test_shape_properties(self):
        inst = FlowShopInstance([[1, 2], [3, 4], [5, 6]])
        assert inst.jobs == 3
        assert inst.machines == 2

    def test_processing_times_read_only(self):
        inst = FlowShopInstance([[1, 2], [3, 4]])
        with pytest.raises(ValueError):
            inst.processing_times[0, 0] = 9

    def test_non_2d_rejected(self):
        with pytest.raises(ProblemError):
            FlowShopInstance([1, 2, 3])

    def test_negative_times_rejected(self):
        with pytest.raises(ProblemError):
            FlowShopInstance([[1, -2]])

    def test_job_and_machine_totals(self):
        inst = FlowShopInstance([[1, 2], [3, 4]])
        assert inst.job_totals().tolist() == [3, 7]
        assert inst.machine_totals().tolist() == [4, 6]

    def test_trivial_lower_bound_is_admissible(self):
        import itertools

        inst = random_instance(6, 3, seed=7)
        optimum = min(
            makespan(inst, p) for p in itertools.permutations(range(6))
        )
        assert inst.trivial_lower_bound() <= optimum

    def test_equality_and_hash(self):
        a = FlowShopInstance([[1, 2], [3, 4]], name="x")
        b = FlowShopInstance([[1, 2], [3, 4]], name="y")
        assert a == b
        assert hash(a) == hash(b)

    def test_random_instance_deterministic(self):
        a = random_instance(5, 3, seed=42)
        b = random_instance(5, 3, seed=42)
        assert a == b
        assert not np.array_equal(
            a.processing_times, random_instance(5, 3, seed=43).processing_times
        )

    def test_random_instance_range(self):
        inst = random_instance(50, 10, seed=1)
        assert inst.processing_times.min() >= 1
        assert inst.processing_times.max() <= 99


class TestTaillardRNG:
    def test_first_values_deterministic(self):
        rng = TaillardRNG(12345)
        values = [rng.next_int(1, 99) for _ in range(5)]
        rng2 = TaillardRNG(12345)
        assert values == [rng2.next_int(1, 99) for _ in range(5)]

    def test_values_in_bounds(self):
        rng = TaillardRNG(873654221)
        for _ in range(10000):
            v = rng.next_int(1, 99)
            assert 1 <= v <= 99

    def test_full_period_state_progression(self):
        # The Lehmer recurrence: state' = 16807 * state mod (2**31 - 1).
        rng = TaillardRNG(1)
        rng.next_float()
        assert rng.seed == 16807
        rng.next_float()
        assert rng.seed == 16807 * 16807 % (2**31 - 1)

    def test_invalid_seed_rejected(self):
        with pytest.raises(ProblemError):
            TaillardRNG(0)
        with pytest.raises(ProblemError):
            TaillardRNG(2**31 - 1)


class TestTaillardInstances:
    def test_ta001_neh_value_is_published_1286(self):
        # The strongest generator check available offline: NEH on the
        # real Ta001 is famously 1286 (optimum 1278).  A single wrong
        # byte in the generator breaks this.
        from repro.problems.flowshop import neh

        seq, value = neh(taillard_instance(20, 5, 1))
        assert value == 1286

    def test_ta056_identity_via_paper_schedule(self):
        # Evaluating the paper's printed optimal schedule on our Ta056
        # gives 3680 — within one unit of the claimed optimum 3679 and
        # ~1000 units below what a random 50x20 instance would give,
        # which pins the time seed (1923497586) uniquely; see
        # EXPERIMENTS.md for the off-by-one discussion (the preprint's
        # printed permutation appears to carry a typo).
        ta56 = taillard_instance(50, 20, 6)
        perm = [j - 1 for j in PAPER_TA056_SCHEDULE]
        value = makespan(ta56, perm)
        assert value == 3680
        # The paper's claim "improves the best known solution (3681)"
        # holds for this schedule as well.
        assert value < 3681

    def test_ta056_name(self):
        assert taillard_instance(50, 20, 6).name == "Ta056"

    def test_instance_numbering_across_classes(self):
        assert taillard_instance(20, 5, 1).name == "Ta001"
        assert taillard_instance(20, 10, 1).name == "Ta011"
        assert taillard_instance(50, 20, 10).name == "Ta060"
        assert taillard_instance(500, 20, 10).name == "Ta120"

    def test_matrix_shape_and_bounds(self):
        p = taillard_matrix(20, 5, 873654221)
        assert p.shape == (20, 5)
        assert p.min() >= 1 and p.max() <= 99

    def test_machine_major_generation_order(self):
        # The first 20 draws fill machine 0 for all jobs.
        seed = 873654221
        rng = TaillardRNG(seed)
        first_draws = [rng.next_int(1, 99) for _ in range(20)]
        p = taillard_matrix(20, 5, seed)
        assert p[:, 0].tolist() == first_draws

    def test_unknown_class_rejected(self):
        with pytest.raises(ProblemError):
            taillard_instance(30, 7, 1)

    def test_index_out_of_range_rejected(self):
        with pytest.raises(ProblemError):
            taillard_instance(20, 5, 0)
        with pytest.raises(ProblemError):
            taillard_instance(20, 5, 11)

    def test_all_classes_have_ten_seeds(self):
        for key, seeds in TIME_SEEDS.items():
            assert len(seeds) == 10, key

    def test_instance_classes_listing(self):
        classes = instance_classes()
        assert classes[0] == (20, 5)
        assert (50, 20) in classes
        assert len(classes) == 12

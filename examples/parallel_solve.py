#!/usr/bin/env python
"""Parallel exact resolution with the farmer–worker runtime (Figure 5).

Spawns real worker processes coordinated through interval work units,
kills one mid-run to demonstrate the §4.1 fault tolerance, and prints
the coordinator-side statistics.

Run:  python examples/parallel_solve.py
"""

import time

from repro.core import solve
from repro.grid.runtime import RuntimeConfig, flowshop_spec, solve_parallel
from repro.problems.flowshop import FlowShopProblem, neh, random_instance


def main() -> None:
    instance = random_instance(jobs=10, machines=5, seed=7)
    schedule, upper_bound = neh(instance)
    print(f"instance: {instance.name}, NEH upper bound {upper_bound}")

    # Sequential reference (the ground truth the parallel run must hit).
    t0 = time.perf_counter()
    reference = solve(
        FlowShopProblem(instance),
        initial_upper_bound=upper_bound,
        initial_solution=tuple(schedule),
    )
    sequential_seconds = time.perf_counter() - t0
    print(
        f"sequential optimum: {reference.cost} "
        f"({reference.stats.nodes_explored} nodes, "
        f"{sequential_seconds:.2f}s)\n"
    )

    spec = flowshop_spec(instance)

    # ---------------------------------------------------------------
    print("=== 4 workers, clean run (the Figure 5 architecture) ===")
    result = solve_parallel(
        spec,
        RuntimeConfig(
            workers=4,
            update_nodes=50,
            initial_upper_bound=upper_bound,
            initial_solution=tuple(schedule),
        ),
    )
    assert result.cost == reference.cost, "parallel must match sequential"
    print(f"optimum {result.cost} proved={result.optimal} "
          f"in {result.wall_seconds:.2f}s")
    print(f"work allocations:      {result.work_allocations}")
    print(f"checkpoint operations: {result.checkpoint_operations}")
    print(f"nodes explored:        {result.nodes_explored}")
    print(f"redundant exploration: {result.redundant_rate:.2%}")

    # ---------------------------------------------------------------
    print("\n=== 3 workers, one crashes after 2 updates (§4.1) ===")
    result = solve_parallel(
        spec,
        RuntimeConfig(
            workers=3,
            update_nodes=50,
            initial_upper_bound=upper_bound,
            initial_solution=tuple(schedule),
            crash_workers={0: 2},
        ),
    )
    assert result.cost == reference.cost
    print(f"optimum {result.cost} proved={result.optimal} despite "
          f"crash of {result.crashed_workers}")
    print("the dead worker's interval was orphaned at the coordinator "
          "and re-assigned to the survivors.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: exactly solve a flow-shop instance with proof.

The 60-second tour of the library: build an instance, get an upper
bound from NEH, run the interval-coded Branch and Bound, and check the
proof of optimality.

Run:  python examples/quickstart.py
"""

from repro.core import solve
from repro.problems.flowshop import (
    FlowShopProblem,
    makespan,
    neh,
    random_instance,
)


def main() -> None:
    # A 10-job, 5-machine instance from Taillard's U[1, 99] distribution.
    instance = random_instance(jobs=10, machines=5, seed=2024)
    print(f"instance: {instance.name}")
    print(f"trivial lower bound: {instance.trivial_lower_bound()}")

    # NEH gives the warm-start upper bound (the paper seeded Ta056 with
    # the best-known metaheuristic solution the same way).
    schedule, upper_bound = neh(instance)
    print(f"NEH schedule: {schedule}  (makespan {upper_bound})")

    # Exact resolution: DFS B&B over the permutation tree with the
    # combined one-machine/two-machine lower bound.
    problem = FlowShopProblem(instance, bound="combined")
    result = solve(
        problem,
        initial_upper_bound=upper_bound,
        initial_solution=tuple(schedule),
    )

    print(f"\noptimal makespan: {result.cost}  (proof: {result.optimal})")
    print(f"optimal schedule: {list(result.solution)}")
    print(f"nodes explored:   {result.stats.nodes_explored}")
    print(f"nodes pruned:     {result.stats.nodes_pruned}")
    gap = (upper_bound - result.cost) / result.cost
    print(f"NEH optimality gap: {gap:.2%}")

    # sanity: re-evaluate the returned schedule
    assert makespan(instance, result.solution) == result.cost
    print("\nschedule re-evaluated: consistent ✓")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Peer-to-peer interval stealing — the paper's future work, prototyped.

No farmer: idle peers steal interval halves from random victims,
improvements spread by gossip, and Safra's counting token detects
global termination.  The run must still prove the true optimum.

Run:  python examples/p2p_stealing.py
"""

from repro.core import solve
from repro.grid.p2p import P2PConfig, P2PSimulation
from repro.grid.simulator import RealBBWorkload, small_platform
from repro.problems.flowshop import FlowShopProblem, random_instance


def main() -> None:
    instance = random_instance(jobs=8, machines=4, seed=12)
    problem = FlowShopProblem(instance)
    expected = solve(problem).cost
    print(f"instance {instance.name}, sequential optimum {expected}\n")

    config = P2PConfig(
        platform=small_platform(workers=8, clusters=2),
        workload=RealBBWorkload(problem, nodes_per_second=200),
        horizon=30 * 86400.0,
        seed=3,
        update_period=1.0,
        steal_backoff=0.5,
    )
    report = P2PSimulation(config).run()

    print(f"P2P optimum: {report.best_cost} "
          f"(termination detected by Safra token: {report.finished})")
    assert report.best_cost == expected
    print(f"peers:              {report.peers}")
    print(f"steals:             {report.steals_succeeded}/"
          f"{report.steals_attempted} succeeded")
    print(f"messages:           {report.messages} "
          f"({report.message_bytes} bytes)")
    print(f"peer exploitation:  {report.peer_exploitation:.0%}")
    print(f"hottest peer's traffic share: "
          f"{report.max_peer_message_share:.0%} "
          f"(the farmer-worker paradigm concentrates 100% on the farmer)")
    print(f"redundant exploration: {report.redundant_rate:.2%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Simulate the paper's 1889-processor grid resolving a Ta056-scale tree.

Rebuilds the Table 1 platform, runs the farmer–worker protocol under
cycle-stealing churn on a synthetic 50!-leaf workload calibrated to a
short virtual duration, and prints Table 2 and the Figure 7 sparkline.

Run:  python examples/grid_simulation.py  (about a minute)
"""

import math

from repro.analysis import render_table2, resample, series_summary, sparkline
from repro.grid.simulator import (
    FarmerConfig,
    paper_availability_model,
    GridSimulation,
    SimulationConfig,
    SyntheticWorkload,
    WorkerConfig,
    paper_platform,
)


def main() -> None:
    platform = paper_platform()
    print(f"platform: {platform.total_processors} processors in "
          f"{len(platform.clusters)} clusters "
          f"(farmer at {platform.farmer_cluster})\n")

    # A 50!-leaf tree (Ta056's search space), calibrated so the pool
    # finishes in ~0.2 virtual days instead of 25 (see DESIGN.md §2:
    # ratios — exploitation, redundancy — are duration-invariant).
    virtual_days = 0.2
    leaves = math.factorial(50)
    expected_power = 350 * 2.1  # calibrated churn keeps ~350 procs busy
    workload = SyntheticWorkload(
        leaves,
        seed=5,
        mean_leaf_rate=leaves / (expected_power * virtual_days * 86400.0),
        irregularity=1.3,
        nodes_per_second=9.4e3,  # paper: 6.5e12 nodes / 22 CPU-years
        optimum=3679.0,
        initial_gap=2.0,  # run 2 started from upper bound 3681
    )
    config = SimulationConfig(
        platform=platform,
        workload=workload,
        horizon=virtual_days * 86400.0 * 8,
        seed=1,
        availability=paper_availability_model(),
        farmer=FarmerConfig(
            service_time=1e-3,
            checkpoint_period=1800.0,  # "every 30 minutes"
            duplication_threshold=leaves // 10**8,
        ),
        worker=WorkerConfig(update_period=120.0),
    )
    report = GridSimulation(config).run()

    print(render_table2(
        report.table2,
        scale_note=f"virtual duration calibrated to ~{virtual_days} days "
        f"(paper: 25 days); rates and ratios are the comparable rows",
    ))

    avg, peak = series_summary(report.series, report.wall_clock)
    print(f"\nFigure 7 — exploited processors over time "
          f"(avg {avg:.0f}, peak {peak}):")
    grid = resample(report.series, report.wall_clock, samples=400)
    print(sparkline([n for _, n in grid], width=76))
    print(f"\nbest cost {report.best_cost}, proof of optimality: "
          f"{report.finished}")
    print(f"farmer checkpoints: {report.farmer_checkpoints}, "
          f"worker crashes survived: {report.worker_crashes}")


if __name__ == "__main__":
    main()

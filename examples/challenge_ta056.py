#!/usr/bin/env python
"""Ta056 — the paper's challenge instance, regenerated and verified.

The paper solved Taillard's Ta056 (50 jobs x 20 machines) exactly for
the first time: optimum 3679, improving the best-known 3681.  This
example regenerates the instance from Taillard's published time seed,
verifies the paper's printed optimal schedule against it, computes the
root lower bounds and NEH upper bound, and exactly solves truncated
sub-instances to show the cost explosion that made the full instance a
22-CPU-year challenge.

Run:  python examples/challenge_ta056.py
"""

import time

from repro.core import solve
from repro.problems.flowshop import (
    FlowShopInstance,
    FlowShopProblem,
    makespan,
    neh,
    taillard_instance,
)

# §5.3 of the paper, 1-indexed jobs.
PAPER_SCHEDULE = [
    14, 37, 3, 18, 8, 33, 11, 21, 42, 5, 13, 49, 50, 20, 28, 45, 43,
    41, 46, 15, 24, 44, 40, 36, 39, 4, 16, 47, 17, 27, 1, 26, 10, 19,
    32, 25, 30, 7, 2, 31, 23, 6, 48, 22, 29, 34, 9, 35, 38, 12,
]


def main() -> None:
    ta056 = taillard_instance(50, 20, 6)
    print(f"{ta056.name}: {ta056.jobs} jobs x {ta056.machines} machines "
          f"(time seed 1923497586, Taillard 1993)")

    value = makespan(ta056, [j - 1 for j in PAPER_SCHEDULE])
    print(f"\npaper's printed optimal schedule evaluates to {value}")
    print("  paper claims 3679; the printed permutation gives 3680 on the")
    print("  genuine instance — within one unit, and < 3681 (the previous")
    print("  best known), so it still improves the record as claimed;")
    print("  see EXPERIMENTS.md for the likely-preprint-typo discussion.")

    seq, ub = neh(ta056)
    lb = ta056.trivial_lower_bound()
    print(f"\nroot bounds: trivial LB {lb}, NEH UB {ub} "
          f"(optimum 3679 sits in between)")

    print(f"\nsearch space: 50! = {ta056.jobs}! ≈ "
          f"{float(FlowShopProblem(ta056).total_leaves()):.2e} leaves")

    print("\nexactly solving truncations Ta056[:k] "
          "(first k jobs, all 20 machines):")
    print(f"{'k':>3} {'optimum':>8} {'NEH':>6} {'nodes':>10} {'seconds':>8}")
    for k in (6, 7, 8, 9):
        sub = FlowShopInstance(
            ta056.processing_times[:k], name=f"Ta056[:{k}]"
        )
        sub_seq, sub_ub = neh(sub)
        t0 = time.perf_counter()
        result = solve(
            FlowShopProblem(sub),
            initial_upper_bound=sub_ub,
            initial_solution=tuple(sub_seq),
        )
        dt = time.perf_counter() - t0
        print(f"{k:>3} {result.cost:>8} {sub_ub:>6} "
              f"{result.stats.nodes_explored:>10} {dt:>8.2f}")
    print("\nnode counts grow ~k-fold per added job: the full 50-job proof")
    print("cost the paper 6.5e12 nodes and 22 CPU-years on ~1900 CPUs.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Chaos engineering against the farmer–worker runtime (§4.1).

Runs seeded fault schedules — coordinator crash-and-recover, lossy
message channels, worker crashes and hangs — over a small flow-shop
instance and shows that every run still terminates with the serial
engine's proved optimum, paying only redundant exploration.

Run:  python examples/chaos_run.py
"""

from repro.core import solve
from repro.grid.runtime import (
    CoordinatorCrash,
    FaultPlan,
    RuntimeConfig,
    WorkerHang,
    flowshop_spec,
    solve_parallel,
)
from repro.problems.flowshop import FlowShopProblem, random_instance

SEEDS = range(6)


def chaos_config(plan: FaultPlan) -> RuntimeConfig:
    return RuntimeConfig(
        workers=3,
        update_nodes=200,
        checkpoint_period=0.0,
        deadline=90,
        reply_timeout=0.4,
        max_retries=6,
        lease_seconds=0.6,
        fault_plan=plan,
    )


def describe(plan: FaultPlan) -> str:
    parts = []
    if plan.coordinator_crashes:
        c = plan.coordinator_crashes[0]
        parts.append(f"farmer†@{c.after_messages}msg/{c.downtime:.2f}s")
    if plan.worker_crashes:
        parts.append(f"crash{sorted(plan.worker_crashes)}")
    if plan.worker_hangs:
        parts.append(f"hang{sorted(plan.worker_hangs)}")
    if plan.channel:
        ch = plan.channel
        parts.append(
            f"lossy(d={ch.drop:.2f},2x={ch.duplicate:.2f},~={ch.delay:.2f})"
        )
    return " ".join(parts)


def main() -> None:
    instance = random_instance(jobs=8, machines=4, seed=33)
    reference = solve(FlowShopProblem(instance))
    print(f"instance {instance.name}: serial optimum {reference.cost}\n")
    spec = flowshop_spec(instance)

    print("=== randomized seeded schedules (FaultPlan.chaos) ===")
    for seed in SEEDS:
        plan = FaultPlan.chaos(seed, workers=3)
        result = solve_parallel(spec, chaos_config(plan))
        assert result.optimal and result.cost == reference.cost
        print(
            f"seed {seed}: optimum {result.cost} proved in "
            f"{result.wall_seconds:4.1f}s  "
            f"redundant {result.redundant_rate:6.2%}  "
            f"restarts {result.coordinator_restarts}  "
            f"dups ignored {result.duplicates_ignored:2d}  "
            f"faults {result.faults_injected}"
        )
        print(f"        {describe(plan)}")

    print("\n=== deterministic kitchen sink ===")
    plan = FaultPlan(
        coordinator_crashes=[CoordinatorCrash(after_messages=12, downtime=0.3)],
        worker_crashes={1: 2},
        worker_hangs={2: WorkerHang(after_updates=1, seconds=1.0)},
        seed=99,
    )
    result = solve_parallel(spec, chaos_config(plan))
    assert result.optimal and result.cost == reference.cost
    print(
        f"farmer crashed and recovered {result.coordinator_restarts}x, "
        f"workers lost {result.crashed_workers}, "
        f"leases expired {result.leases_expired}"
    )
    print(
        f"optimum {result.cost} still proved — the interval-set union "
        f"invariant turned every fault into "
        f"{result.redundant_rate:.1%} redundant exploration, never loss."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The paper's interval coding, step by step (Figures 1–4).

Walks a small permutation tree through the four concepts of §3 —
node weights, node numbers, node ranges, and the fold/unfold operators
— printing the same pictures the paper draws.

Run:  python examples/interval_coding.py
"""

from repro.core import (
    Interval,
    TreeShape,
    fold,
    node_number,
    node_range,
    unfold,
    unfold_with_stats,
)


def walk(shape, ranks=()):
    """Yield (ranks, depth) of every node, DFS order."""
    yield ranks, len(ranks)
    if len(ranks) < shape.leaf_depth:
        for r in range(shape.branching[len(ranks)]):
            yield from walk(shape, ranks + (r,))


def main() -> None:
    shape = TreeShape.permutation(4)
    print(f"permutation tree over 4 elements: {shape.total_leaves} leaves\n")

    # ------------------------------------------------------ Figure 1
    print("Figure 1 — weight per depth (eq. 3: (P - depth)!):")
    for depth in shape.iter_depths():
        print(f"  depth {depth}: weight {shape.weight(depth)}")

    # ------------------------------------------------------ Figure 2/3
    print("\nFigures 2 & 3 — numbers and ranges of the first two levels:")
    for ranks, depth in walk(shape):
        if depth > 2:
            continue
        indent = "  " * (depth + 1)
        print(
            f"{indent}node {list(ranks) if ranks else 'root'}: "
            f"number={node_number(shape, ranks)}, "
            f"range={node_range(shape, ranks)}"
        )

    # ------------------------------------------------------ Figure 4
    print("\nFigure 4 — fold: a DFS active list collapses to 2 integers")
    interval = Interval(5, 17)
    active = unfold(shape, interval)
    print(f"  unfold({interval}) = {[list(n.ranks) for n in active]}")
    for node in active:
        print(f"    node {list(node.ranks)} covers {node.range}")
    print(f"  fold(that list) = {fold(active)}  (round trip ✓)")

    # ------------------------------------------------------ §3.5 cost
    big = TreeShape.permutation(50)  # Ta056's tree: 50! leaves
    interval = Interval(big.total_leaves // 7, big.total_leaves // 3)
    active, stats = unfold_with_stats(big, interval)
    print("\n§3.5 — unfolding a Ta056-sized interval "
          f"({interval.length:.3e} leaves):")
    print(f"  decompositions: {stats.decompositions} "
          f"(bound: 2 x P = {2 * big.leaf_depth})")
    print(f"  active nodes:   {len(active)}")
    print("  the work unit travels as 2 integers either way — that is "
          "the paper's communication optimisation.")


if __name__ == "__main__":
    main()

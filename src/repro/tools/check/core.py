"""Framework of the ``repro check`` static-analysis pass.

The pass is deliberately small and project-specific: it parses every
checked file once with :mod:`ast`, hands the tree to each registered
:class:`Rule` whose path scope matches, and collects
:class:`Violation` records.  Rules encode invariants this repository
learned the hard way (see ``docs/static-analysis.md``); they are not a
general-purpose linter and they lean on the repository's layout and
naming conventions on purpose.

Two-phase runs
--------------
Some invariants are cross-file (RC03 needs the wire-codec registry in
``framing.py`` while it checks ``protocol.py``), so a run makes two
passes: every matching rule first gets :meth:`Rule.collect` over every
file, then :meth:`Rule.check`.

Suppressions
------------
A violation is silenced by a trailing (or immediately preceding)
comment::

    channel.send(message)  # repro-check: ignore[RC04] -- best-effort farewell

Suppressions are **line-scoped**: a trailing comment covers exactly
its own line, a comment alone on a line covers exactly the next line.
They are found by tokenizing the file, so the marker spelled inside a
string or docstring (as above) is prose, not a suppression.  The
reason after ``--`` is **mandatory**: an ignore without one, or one
naming an unknown rule, is itself reported as an ``RC00`` violation —
and so is a suppression that no active rule consumed, so a stale
ignore cannot linger to hide a future regression.  ``RC00`` cannot be
suppressed.
"""

from __future__ import annotations

import ast
import fnmatch
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "CheckError",
    "CheckResult",
    "FileContext",
    "Rule",
    "RULES",
    "Suppression",
    "Violation",
    "check_paths",
    "iter_python_files",
    "register",
]

#: Directories never descended into when a directory path is checked.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", "build", ".pytest_cache"})

# Codes must look like RC## — a malformed code is not a suppression at
# all (the underlying violation still fires), while a well-formed but
# unregistered code is reported as RC00.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-check:\s*ignore\[(?P<codes>RC[0-9]{2}(?:\s*,\s*RC[0-9]{2})*)\]"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Violation:
    """One rule violation at a precise source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class CheckError:
    """A file that could not be checked at all (unreadable / bad syntax)."""

    path: str
    message: str


@dataclass
class Suppression:
    """One ``# repro-check: ignore[...]`` comment.

    ``own_line`` records whether the comment stands alone (covering the
    next line) or trails code (covering its own line only); ``used``
    accumulates the codes a rule actually consumed, so the run can
    report suppressions that silenced nothing.
    """

    line: int
    codes: Tuple[str, ...]
    reason: Optional[str]
    own_line: bool = False
    used: Set[str] = field(default_factory=set)

    @property
    def well_formed(self) -> bool:
        return bool(self.reason) and all(code in RULES for code in self.codes)


def _scan_suppressions(source: str) -> Dict[int, Suppression]:
    """Tokenize ``source`` and collect real suppression *comments*.

    Tokenizing (rather than regex-scanning raw lines) means the marker
    quoted inside a string or docstring is never mistaken for a live
    suppression — essential now that unused suppressions are reported.
    """
    found: Dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            lineno, col = tok.start
            codes = tuple(
                code.strip().upper()
                for code in match.group("codes").split(",")
                if code.strip()
            )
            own_line = not tok.line[:col].strip()
            found[lineno] = Suppression(
                lineno, codes, match.group("reason"), own_line
            )
    except tokenize.TokenError:  # pragma: no cover - ast.parse succeeded
        pass
    return found


class FileContext:
    """Everything a rule may need about one checked file."""

    def __init__(self, path: Path, rel: str, source: str, tree: ast.Module):
        self.path = path
        #: Posix-style path used both for reporting and scope matching.
        self.rel = rel
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.suppressions: Dict[int, Suppression] = _scan_suppressions(source)

    def suppresses(self, rule: str, line: int) -> bool:
        """True when ``rule`` is ignored at ``line`` (same or previous line)."""
        for candidate in (line, line - 1):
            sup = self.suppressions.get(candidate)
            if sup is None or rule not in sup.codes:
                continue
            if candidate == line - 1 and not sup.own_line:
                continue  # a trailing comment only covers its own line
            if sup.reason:
                sup.used.add(rule)
                return True
        return False


class Rule:
    """Base class for one project-specific invariant.

    Subclasses set the class attributes and implement :meth:`check`
    (and optionally :meth:`collect` for cross-file state).  ``scope``
    and ``strict_scope`` are fnmatch patterns matched against the end
    of the file's posix path; ``strict_scope`` only participates when
    the run passes ``--strict``.
    """

    code: ClassVar[str] = "RC??"
    title: ClassVar[str] = ""
    invariant: ClassVar[str] = ""
    scope: ClassVar[Tuple[str, ...]] = ()
    strict_scope: ClassVar[Tuple[str, ...]] = ()

    def applies_to(self, ctx: FileContext, strict: bool) -> bool:
        patterns = self.scope + (self.strict_scope if strict else ())
        return any(_match(ctx.rel, pattern) for pattern in patterns)

    def collect(self, ctx: FileContext) -> None:
        """Phase 1: gather cross-file state (default: nothing)."""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=self.code,
            path=ctx.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def _match(rel: str, pattern: str) -> bool:
    """Match ``pattern`` against the path or any suffix of it.

    Patterns are written repository-relative (``repro/core/tree.py``,
    ``benchmarks/*.py``); checked files may carry absolute or
    tmpdir-prefixed paths, so a pattern also matches when prefixed by
    any directories.
    """
    return fnmatch.fnmatch(rel, pattern) or fnmatch.fnmatch(rel, "*/" + pattern)


#: Registry of every rule, keyed by code, in code order.
RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


@dataclass
class CheckResult:
    """Outcome of one :func:`check_paths` run."""

    violations: List[Violation] = field(default_factory=list)
    errors: List[CheckError] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations and not self.errors

    def exit_code(self) -> int:
        if self.errors:
            return 2
        return 1 if self.violations else 0


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files and directories into the sorted set of .py files."""
    seen = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(
                p
                for p in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _relativize(path: Path) -> str:
    """Best-effort repository-relative posix path for reporting."""
    resolved = path.resolve()
    for parent in resolved.parents:
        if (parent / "pyproject.toml").exists() or (parent / ".git").exists():
            return resolved.relative_to(parent).as_posix()
    return path.as_posix()


def load_context(path: Path) -> FileContext:
    """Parse one file into a :class:`FileContext` (raises on bad syntax)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(path, _relativize(path), source, tree)


def _suppression_violations(ctx: FileContext) -> Iterator[Violation]:
    """RC00: malformed suppression comments (missing reason, bad code)."""
    for sup in ctx.suppressions.values():
        if not sup.reason:
            yield Violation(
                rule="RC00",
                path=ctx.rel,
                line=sup.line,
                col=1,
                message=(
                    "suppression without a reason: write "
                    "'# repro-check: ignore[RULE] -- why this is safe'"
                ),
            )
        for code in sup.codes:
            if code not in RULES:
                yield Violation(
                    rule="RC00",
                    path=ctx.rel,
                    line=sup.line,
                    col=1,
                    message=f"suppression names unknown rule {code!r}",
                )


def _unused_suppression_violations(
    ctx: FileContext, active: Sequence[Rule], strict: bool
) -> Iterator[Violation]:
    """RC00: well-formed suppressions that silenced nothing this run.

    Only codes whose rule both ran and applied to this file count —
    under ``--select`` (or outside a rule's scope) a suppression is
    not provably stale, so it is left alone.
    """
    applicable = {
        rule.code for rule in active if rule.applies_to(ctx, strict)
    }
    for sup in ctx.suppressions.values():
        if not sup.well_formed:
            continue  # already an RC00 above
        for code in sup.codes:
            if code in applicable and code not in sup.used:
                yield Violation(
                    rule="RC00",
                    path=ctx.rel,
                    line=sup.line,
                    col=1,
                    message=(
                        f"unused suppression: no {code} violation on "
                        "the covered line — delete the ignore (stale "
                        "ignores hide future regressions)"
                    ),
                )


def check_paths(
    paths: Sequence[Path],
    *,
    strict: bool = False,
    select: Optional[Sequence[str]] = None,
) -> CheckResult:
    """Run every (selected) rule over every Python file under ``paths``."""
    # Import for the side effect of populating RULES; late so that the
    # registry is complete even when callers import core directly.
    from repro.tools.check import rules as _rules  # noqa: F401

    result = CheckResult()
    contexts: List[FileContext] = []
    for path in iter_python_files(list(paths)):
        try:
            contexts.append(load_context(path))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            result.errors.append(CheckError(_relativize(path), str(exc)))
    result.files_checked = len(contexts)

    wanted = None if select is None else {code.upper() for code in select}
    active = [
        cls()
        for code, cls in sorted(RULES.items())
        if wanted is None or code in wanted
    ]
    if wanted is not None:
        unknown = wanted - set(RULES)
        if unknown:
            raise ValueError(f"unknown rule code(s): {sorted(unknown)}")

    for rule in active:
        for ctx in contexts:
            if rule.applies_to(ctx, strict):
                rule.collect(ctx)

    for ctx in contexts:
        result.violations.extend(_suppression_violations(ctx))
        for rule in active:
            if not rule.applies_to(ctx, strict):
                continue
            for violation in rule.check(ctx):
                if not ctx.suppresses(violation.rule, violation.line):
                    result.violations.append(violation)
        result.violations.extend(
            _unused_suppression_violations(ctx, active, strict)
        )

    result.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return result

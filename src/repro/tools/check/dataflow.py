"""Intraprocedural dataflow for ``repro check``.

PR 5's rules matched *identifier names* inside a single expression:
``interval / 2`` was caught, but ``b = interval[0]; b / 2`` was not,
because ``b`` carries no interval-ish name.  This module closes that
gap with a small, honest dataflow layer:

* a per-scope **symbol table** (:class:`SymbolTable`) of definition
  sites and uses, with flow-insensitive def-use chains;
* a two-point **taint lattice** (``CLEAN < TAINTED``, join = or) run
  to a fixpoint over each function, so taint introduced by a seeded
  identifier survives assignments, tuple unpacking, ``for`` targets,
  calls and returns *within* that function;
* a :class:`TaintPolicy` describing what seeds taint (a name set or
  predicate) and which calls sanitize it (``len``, ``str``, ``bool``,
  ... — calls whose result is no longer the guarded value).

The analysis is deliberately intraprocedural and flow-insensitive
inside a scope ("is this name *ever* bound to a tainted value here"),
which is the right trade for a zero-tolerated-violations gate: it
never forgets a taint across a join point, and the suppression
machinery absorbs the rare deliberate exception.  Nested functions are
their own scopes and inherit the enclosing function's final taint set
(closure reads see the outer binding).

Scopes and walking
------------------
:func:`taint_scopes` returns one :class:`ScopeTaint` per module /
function / lambda; ``scope.walk()`` yields exactly the nodes owned by
that scope (it does not descend into nested function bodies, which
belong to their own scope), so a rule can pair every expression with
the taint environment that governs it.

Constants
---------
:func:`module_constants` resolves simple module-level constants
(``PROTOCOL_VERSION = 1``, ``WIRE_VERSION = 2``, ``X = Y + 1``) so the
wire-schema gate (RC12) can read a dataclass's ``version`` default
even when it is spelled as a named constant.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

__all__ = [
    "DEFAULT_SANITIZERS",
    "DefSite",
    "MUTATING_METHODS",
    "ScopeTaint",
    "SymbolTable",
    "TaintPolicy",
    "is_unresolved",
    "module_constants",
    "resolve_constant",
    "scope_walk",
    "taint_scopes",
]

#: Calls whose result is never the guarded value itself: sizes, flags,
#: strings, types.  ``range`` is included because loop indices are
#: ranks, not interval values (``number + rank * weight`` stays caught
#: through ``weight``).
DEFAULT_SANITIZERS: FrozenSet[str] = frozenset(
    {"bool", "bytes", "format", "hash", "id", "isinstance", "issubclass",
     "len", "range", "repr", "str", "type"}
)

#: Method names that mutate their receiver in place (used by callers
#: such as RC13 to treat ``self._writers.add(...)`` as a write).
MUTATING_METHODS: FrozenSet[str] = frozenset(
    {"add", "append", "appendleft", "clear", "discard", "extend",
     "insert", "pop", "popleft", "remove", "setdefault", "update"}
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass(frozen=True)
class TaintPolicy:
    """What introduces taint and what washes it off.

    ``seeds`` are identifier names (Name ids and Attribute attrs) that
    are tainted wherever they appear; ``seed_predicate`` extends that
    to computed membership (e.g. "any name containing 'lock'").
    """

    seeds: FrozenSet[str] = frozenset()
    seed_predicate: Optional[Callable[[str], bool]] = None
    sanitizers: FrozenSet[str] = DEFAULT_SANITIZERS

    def is_seed(self, name: str) -> bool:
        if name in self.seeds:
            return True
        return self.seed_predicate is not None and self.seed_predicate(name)


@dataclass(frozen=True)
class DefSite:
    """One binding of ``name`` within a scope."""

    name: str
    node: ast.AST
    #: The bound expression when one exists (None for e.g. ``except``
    #: targets and parameters).
    value: Optional[ast.expr]
    #: assign | aug | for | with | walrus | arg | comprehension
    kind: str


class SymbolTable:
    """Definition sites and uses of every local name in one scope."""

    def __init__(self, scope: ast.AST):
        self.scope = scope
        self.defs: Dict[str, List[DefSite]] = {}
        self.uses: Dict[str, List[ast.Name]] = {}
        self._build()

    def _add(self, site: DefSite) -> None:
        self.defs.setdefault(site.name, []).append(site)

    def _bind_target(
        self, target: ast.expr, value: Optional[ast.expr], kind: str
    ) -> None:
        if isinstance(target, ast.Name):
            self._add(DefSite(target.id, target, value, kind))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, value, kind)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, value, kind)
        # Attribute / Subscript targets mutate an object, not a local
        # name — expression taint reaches them via the seeds instead.

    def _build(self) -> None:
        scope = self.scope
        if isinstance(scope, _SCOPE_NODES):
            args = scope.args
            for arg in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ):
                self._add(DefSite(arg.arg, arg, None, "arg"))
        for node in scope_walk(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._bind_target(target, node.value, "assign")
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind_target(node.target, node.value, "assign")
            elif isinstance(node, ast.AugAssign):
                self._bind_target(node.target, node.value, "aug")
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                self._bind_target(node.target, node.iter, "for")
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        self._bind_target(
                            item.optional_vars, item.context_expr, "with"
                        )
            elif isinstance(node, ast.NamedExpr):
                self._bind_target(node.target, node.value, "walrus")
            elif isinstance(node, ast.comprehension):
                self._bind_target(node.target, node.iter, "comprehension")
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                self.uses.setdefault(node.id, []).append(node)

    def def_use(self) -> Dict[str, List[Tuple[ast.Name, List[DefSite]]]]:
        """Flow-insensitive def-use chains: every use paired with every
        def of its name in this scope."""
        chains: Dict[str, List[Tuple[ast.Name, List[DefSite]]]] = {}
        for name, sites in self.uses.items():
            reaching = self.defs.get(name, [])
            chains[name] = [(use, reaching) for use in sites]
        return chains


def scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Descendants of ``scope`` that belong to its scope.

    Does not descend into nested function/lambda/class bodies (their
    nodes belong to the nested scope), but does yield the nested def
    node itself plus its decorators, default expressions and base
    classes, which evaluate in the enclosing scope.
    """
    stack: List[ast.AST] = list(_scope_children(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (*_SCOPE_NODES, ast.ClassDef)):
            stack.extend(_header_children(node))
        else:
            stack.extend(ast.iter_child_nodes(node))


def _scope_children(scope: ast.AST) -> List[ast.AST]:
    if isinstance(scope, ast.Lambda):
        return [scope.body]
    if isinstance(
        scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module, ast.ClassDef)
    ):
        return list(scope.body)
    return list(ast.iter_child_nodes(scope))


def _header_children(node: ast.AST) -> List[ast.AST]:
    """The parts of a nested def/class evaluated in the *enclosing* scope."""
    if isinstance(node, ast.Lambda):
        return []
    if isinstance(node, ast.ClassDef):
        return [*node.decorator_list, *node.bases, *(kw.value for kw in node.keywords)]
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    out: List[ast.AST] = list(node.decorator_list)
    out.extend(node.args.defaults)
    out.extend(d for d in node.args.kw_defaults if d is not None)
    return out


class ScopeTaint:
    """The fixpoint taint environment of one scope.

    ``names`` is the set of local names ever bound to a tainted value;
    :meth:`tainted` evaluates an arbitrary expression against it.
    """

    def __init__(
        self,
        node: ast.AST,
        policy: TaintPolicy,
        inherited: FrozenSet[str] = frozenset(),
    ):
        self.node = node
        self.policy = policy
        self.symbols = SymbolTable(node)
        self.names = self._fixpoint(inherited)

    # ------------------------------------------------------------------
    def walk(self) -> Iterator[ast.AST]:
        return scope_walk(self.node)

    def tainted(self, expr: ast.AST) -> bool:
        """Is ``expr``'s value (possibly) derived from a seed?"""
        return self._eval(expr, self.names)

    # ------------------------------------------------------------------
    def _fixpoint(self, inherited: FrozenSet[str]) -> FrozenSet[str]:
        tainted: Set[str] = set(inherited)
        # Two-point lattice, join = union; iterate until no binding
        # adds a new tainted name (loops feed assignments backwards).
        changed = True
        while changed:
            changed = False
            for name, sites in self.symbols.defs.items():
                if name in tainted:
                    continue
                for site in sites:
                    if site.value is None:
                        # Parameters: tainted only by their own name
                        # (the seeds catch `def f(interval): ...`).
                        continue
                    value_tainted = self._eval(site.value, frozenset(tainted))
                    if site.kind in ("for", "comprehension"):
                        value_tainted = self._iter_taint(
                            site.value, frozenset(tainted)
                        )
                    elif site.kind == "with":
                        # `with open(p) as fh` — the manager, not the
                        # guarded value; only seeds taint it.
                        value_tainted = self._eval(
                            site.value, frozenset(tainted)
                        )
                    if value_tainted:
                        tainted.add(name)
                        changed = True
                        break
        return frozenset(tainted)

    def _iter_taint(self, iterable: ast.expr, env: FrozenSet[str]) -> bool:
        """Taint of one element drawn from ``iterable``.

        ``enumerate(xs)`` yields ``(rank, x)`` — the rank is clean, but
        distinguishing tuple slots through a for-target is beyond this
        lattice, so the element inherits the iterable's taint.
        """
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "enumerate"
            and iterable.args
        ):
            return self._eval(iterable.args[0], env)
        return self._eval(iterable, env)

    # ------------------------------------------------------------------
    def _eval(self, expr: ast.AST, env: FrozenSet[str]) -> bool:
        """Expression-level taint under environment ``env``."""
        policy = self.policy
        if isinstance(expr, ast.Name):
            return expr.id in env or policy.is_seed(expr.id)
        if isinstance(expr, ast.Attribute):
            return policy.is_seed(expr.attr) or self._eval(expr.value, env)
        if isinstance(expr, ast.Subscript):
            return self._eval(expr.value, env)
        if isinstance(expr, ast.BinOp):
            return self._eval(expr.left, env) or self._eval(expr.right, env)
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand, env)
        if isinstance(expr, (ast.BoolOp, ast.Compare)):
            return False  # booleans are not interval values
        if isinstance(expr, ast.IfExp):
            return self._eval(expr.body, env) or self._eval(expr.orelse, env)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self._eval(elt, env) for elt in expr.elts)
        if isinstance(expr, ast.Dict):
            return any(
                self._eval(v, env) for v in expr.values if v is not None
            )
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, env)
        if isinstance(expr, ast.NamedExpr):
            return self._eval(expr.value, env)
        if isinstance(expr, ast.Await):
            return self._eval(expr.value, env)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return any(
                self._iter_taint(gen.iter, env) for gen in expr.generators
            )
        if isinstance(expr, ast.DictComp):
            return any(
                self._iter_taint(gen.iter, env) for gen in expr.generators
            )
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            if name is not None and name in policy.sanitizers:
                return False
            if isinstance(expr.func, ast.Attribute) and self._eval(
                expr.func.value, env
            ):
                return True  # interval.split(...) returns interval stuff
            if name is not None and policy.is_seed(name):
                return True
            return any(self._eval(a, env) for a in expr.args) or any(
                self._eval(kw.value, env) for kw in expr.keywords
            )
        if isinstance(expr, (ast.Constant, ast.Lambda, ast.JoinedStr)):
            return False
        # Unknown shapes: conservative — any seed mention taints.
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and (
                sub.id in env or policy.is_seed(sub.id)
            ):
                return True
            if isinstance(sub, ast.Attribute) and policy.is_seed(sub.attr):
                return True
        return False


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def taint_scopes(
    tree: ast.Module, policy: TaintPolicy
) -> List[ScopeTaint]:
    """One :class:`ScopeTaint` per scope in ``tree``, outermost first.

    Nested functions inherit the enclosing function's final taint set.
    Class bodies are their own scope: they read the enclosing names,
    but what they bind does not leak into methods — a method skips the
    class scope and inherits straight from the class's enclosing scope,
    exactly as Python name resolution does.
    """
    scopes: List[ScopeTaint] = []

    def _visit(node: ast.AST, inherited: FrozenSet[str]) -> None:
        scope = ScopeTaint(node, policy, inherited)
        scopes.append(scope)
        nested_inherited = (
            inherited if isinstance(node, ast.ClassDef) else scope.names
        )
        for sub in scope.walk():
            if isinstance(sub, ast.ClassDef):
                _visit(sub, scope.names)
            elif isinstance(sub, _SCOPE_NODES):
                _visit(sub, nested_inherited)

    _visit(tree, frozenset())
    return scopes


_CONST_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
}


def module_constants(tree: ast.Module) -> Dict[str, object]:
    """Module-level constant bindings resolvable without execution.

    Handles literals, references to earlier constants, and ``+ - *`` of
    those — enough to resolve ``version: int = PROTOCOL_VERSION`` and
    ``WIRE_VERSION = BASE + 1`` style defaults for the schema gate.
    """
    constants: Dict[str, object] = {}
    for node in tree.body:
        targets: List[str] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            targets = [node.target.id]
            value = node.value
        if not targets or value is None:
            continue
        resolved = resolve_constant(value, constants)
        if resolved is not _UNRESOLVED:
            for name in targets:
                constants[name] = resolved
    return constants


class _Unresolved:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unresolved>"


_UNRESOLVED = _Unresolved()


def resolve_constant(
    expr: ast.expr, constants: Dict[str, object]
) -> object:
    """Evaluate ``expr`` against known constants; ``_UNRESOLVED`` on miss."""
    if isinstance(expr, ast.Constant):
        return expr.value
    if isinstance(expr, ast.Name):
        return constants.get(expr.id, _UNRESOLVED)
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.USub):
        inner = resolve_constant(expr.operand, constants)
        if isinstance(inner, (int, float)):
            return -inner
        return _UNRESOLVED
    if isinstance(expr, ast.BinOp):
        op = _CONST_BINOPS.get(type(expr.op))
        left = resolve_constant(expr.left, constants)
        right = resolve_constant(expr.right, constants)
        if (
            op is not None
            and isinstance(left, (int, float))
            and isinstance(right, (int, float))
        ):
            return op(left, right)
    return _UNRESOLVED


def is_unresolved(value: object) -> bool:
    return value is _UNRESOLVED

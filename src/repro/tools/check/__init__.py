"""``repro check`` — AST-based enforcement of the runtime's invariants.

The checker is a small rule engine (:mod:`repro.tools.check.core`)
with an intraprocedural dataflow layer
(:mod:`repro.tools.check.dataflow`: symbol tables, def-use chains and
a taint lattice) plus the project-specific rules
(:mod:`repro.tools.check.rules`) that pin invariants earlier PRs of
this repository learned the hard way: int-exact interval arithmetic,
the launcher-only write rule on the shared incumbent, versioned wire
messages and their golden schemas, the at-least-once RPC discipline,
simulator determinism, non-blocking asyncio bodies, the
strictly-typed core perimeter, checkpoint fsync coverage and
handler exception safety.  ``docs/static-analysis.md`` documents
every rule with the bug that motivated it.
"""

from repro.tools.check.core import (
    CheckError,
    CheckResult,
    FileContext,
    RULES,
    Rule,
    Suppression,
    Violation,
    check_paths,
)
from repro.tools.check.dataflow import (
    ScopeTaint,
    SymbolTable,
    TaintPolicy,
    taint_scopes,
)

# Importing the rules module registers every rule in RULES.
from repro.tools.check import rules as _rules  # noqa: F401
from repro.tools.check.rules import compute_wire_schema, update_wire_schemas

__all__ = [
    "CheckError",
    "CheckResult",
    "FileContext",
    "RULES",
    "Rule",
    "ScopeTaint",
    "Suppression",
    "SymbolTable",
    "TaintPolicy",
    "Violation",
    "check_paths",
    "compute_wire_schema",
    "taint_scopes",
    "update_wire_schemas",
]

"""``repro check`` — AST-based enforcement of the runtime's invariants.

The checker is a small rule engine (:mod:`repro.tools.check.core`)
plus the project-specific rules (:mod:`repro.tools.check.rules`) that
pin invariants earlier PRs of this repository learned the hard way:
int-exact interval arithmetic, the launcher-only write rule on the
shared incumbent, versioned wire messages, the at-least-once RPC
discipline, simulator determinism, non-blocking asyncio bodies, and
the strictly-typed core perimeter.  ``docs/static-analysis.md``
documents every rule with the bug that motivated it.
"""

from repro.tools.check.core import (
    CheckError,
    CheckResult,
    FileContext,
    RULES,
    Rule,
    Suppression,
    Violation,
    check_paths,
)

# Importing the rules module registers every rule in RULES.
from repro.tools.check import rules as _rules  # noqa: F401

__all__ = [
    "CheckError",
    "CheckResult",
    "FileContext",
    "RULES",
    "Rule",
    "Suppression",
    "Violation",
    "check_paths",
]

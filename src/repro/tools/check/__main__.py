"""``python -m repro.tools.check`` — run the checker without installing."""

from repro.tools.check.cli import main

raise SystemExit(main())

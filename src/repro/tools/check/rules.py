"""The project-specific rules of ``repro check``.

Each rule pins an invariant that an earlier PR of this repository
learned the hard way — see ``docs/static-analysis.md`` for the full
story behind every code.  Rules are deliberately narrow: they match
this repository's layout and naming conventions, which is what makes
them precise enough to run with zero tolerated violations.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Any, ClassVar, Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.tools.check.core import FileContext, Rule, Violation, _match, register
from repro.tools.check.dataflow import (
    MUTATING_METHODS,
    ScopeTaint,
    TaintPolicy,
    is_unresolved,
    module_constants,
    resolve_constant,
    scope_walk,
    taint_scopes,
)

__all__ = [
    "IntExactIntervals",
    "SharedBoundWriteDiscipline",
    "VersionedWireMessages",
    "RawSendOutsideRetryHelper",
    "SimulatorDeterminism",
    "NoBlockingIOInAsync",
    "TypedCoreDiscipline",
    "DurableCheckpointWrites",
    "LazyAcceleratorImports",
    "FrontierIntExactness",
    "OpaqueJobIds",
    "WireSchemaCompatibility",
    "AsyncioConcurrencyDiscipline",
    "CheckpointFsyncCoverage",
    "HandlerExceptionSafety",
    "compute_wire_schema",
    "update_wire_schemas",
]


def _identifiers(node: ast.AST) -> Set[str]:
    """Every Name id and Attribute attr mentioned under ``node``."""
    found: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            found.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            found.add(sub.attr)
    return found


def _is_float_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class IntExactIntervals(Rule):
    """RC01 — interval/number arithmetic must stay int-exact.

    The wire format and the checkpoint files carry leaf numbers up to
    ``50!``; a single float creeping into an interval endpoint or a
    tree weight silently rounds it (floats hold 53 bits) and the
    §4.1 covering invariant is gone.  In the pure number-coding
    modules *any* ``/``, ``float()`` or float literal is flagged; in
    the wider grid/ scope only expressions touching interval-ish
    identifiers are, so wall-clock floats stay legal there.

    Since the dataflow upgrade the "touching" is taint-based, not just
    lexical: ``b = interval[0]; b / 2`` is caught because ``b`` is
    bound from an interval-derived value, even though the division
    itself mentions no interval-ish name.  The old identifier
    heuristic is retained as a floor, so everything PR 5 caught is
    still caught.
    """

    code: ClassVar[str] = "RC01"
    title: ClassVar[str] = "interval arithmetic must stay int-exact"
    invariant: ClassVar[str] = (
        "interval endpoints and tree weights are exact bignum ints "
        "(PAPER eq. 1-9; floats round above 2**53)"
    )
    #: Modules where numbers are leaf counts by definition: zero floats.
    exact_scope: ClassVar[Tuple[str, ...]] = (
        "repro/core/interval.py",
        "repro/core/tree.py",
        "repro/core/numbering.py",
        "repro/core/fold.py",
        "repro/core/unfold.py",
    )
    #: Modules where floats are legal (clocks, costs) but must not mix
    #: with interval-ish values.
    tainted_scope: ClassVar[Tuple[str, ...]] = (
        "repro/core/interval_set.py",
        "repro/grid/*.py",
    )
    scope: ClassVar[Tuple[str, ...]] = exact_scope + tainted_scope

    #: Identifiers that mark a value as an interval endpoint / weight.
    TAINTED: ClassVar[FrozenSet[str]] = frozenset(
        {
            "begin",
            "end",
            "interval",
            "intervals",
            "root_interval",
            "remaining_interval",
            "consumed",
            "weight",
            "weights",
            "leaves",
            "total_leaves",
            "leaf_number",
        }
    )

    def _lexical(self, node: ast.AST) -> bool:
        """PR 5's identifier-name heuristic, kept as the floor: the
        dataflow upgrade widens what is caught, never narrows it."""
        return bool(_identifiers(node) & self.TAINTED)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        exact = any(_match(ctx.rel, p) for p in self.exact_scope)
        policy = TaintPolicy(seeds=self.TAINTED)
        for scope in taint_scopes(ctx.tree, policy):
            yield from self._check_scope(ctx, scope, exact)

    def _check_scope(
        self, ctx: FileContext, scope: ScopeTaint, exact: bool
    ) -> Iterator[Violation]:
        for node in scope.walk():
            if isinstance(node, (ast.BinOp, ast.AugAssign)) and isinstance(
                node.op, ast.Div
            ):
                operands = (
                    [node.left, node.right]
                    if isinstance(node, ast.BinOp)
                    else [node.target, node.value]
                )
                if exact or self._lexical(node) or any(
                    scope.tainted(op) for op in operands
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "true division on interval arithmetic — "
                        "use // to stay int-exact",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                if exact or any(
                    self._lexical(arg) or scope.tainted(arg)
                    for arg in node.args
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "float() conversion of an interval-valued "
                        "expression loses exactness above 2**53",
                    )
            elif exact and _is_float_constant(node):
                yield self.violation(
                    ctx,
                    node,
                    f"float literal {node.value!r} in an int-exact "
                    "number-coding module",
                )
            elif not exact and isinstance(node, (ast.BinOp, ast.Compare)):
                operands = (
                    [node.left, node.right]
                    if isinstance(node, ast.BinOp)
                    else [node.left, *node.comparators]
                )
                floats = [op for op in operands if _is_float_constant(op)]
                others = [op for op in operands if not _is_float_constant(op)]
                if floats and any(
                    self._lexical(op) or scope.tainted(op) for op in others
                ):
                    yield self.violation(
                        ctx,
                        floats[0],
                        "float literal mixed into interval arithmetic",
                    )


@register
class SharedBoundWriteDiscipline(Rule):
    """RC02 — only the launcher writes the shared incumbent.

    Pins the PR 3 post-review fix: a worker that offered its own cost
    before the Push round-trip could crash in the window and leave a
    bound that prunes the equal-cost optimum everywhere while the
    solution died with it.  Workers are strictly readers; the launcher
    broadcasts ``SOLUTION``'s cost only after the Push is handled.
    """

    code: ClassVar[str] = "RC02"
    title: ClassVar[str] = "SharedBound writes are launcher-only"
    invariant: ClassVar[str] = (
        "the advisory incumbent cell never holds a cost whose solution "
        "the coordinator lacks (PR 3 lost-solution fix)"
    )
    scope: ClassVar[Tuple[str, ...]] = ("repro/grid/*.py",)
    #: The sole legitimate writer, and the defining module itself.
    allowed: ClassVar[Tuple[str, ...]] = (
        "repro/grid/runtime/launcher.py",
        "repro/grid/runtime/shared.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if any(_match(ctx.rel, p) for p in self.allowed):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "offer"
            ):
                yield self.violation(
                    ctx,
                    node,
                    ".offer() outside the launcher — workers are "
                    "read-only on the shared incumbent (a crash between "
                    "offer() and Push loses the solution)",
                )


@register
class VersionedWireMessages(Rule):
    """RC03 — wire dataclasses carry ``version`` and are codec-registered.

    PR 4's framing refuses frames from the future by reading each
    message's explicit ``version`` field; a message without one decodes
    as v1 forever, and one missing from ``_WIRE_TYPES`` cannot travel
    over TCP at all (it only works over fork, a mixed-transport trap).
    """

    code: ClassVar[str] = "RC03"
    title: ClassVar[str] = "protocol messages are versioned and registered"
    invariant: ClassVar[str] = (
        "every wire dataclass has an explicit version field and a "
        "_WIRE_TYPES registration (PR 4 framing contract)"
    )
    scope: ClassVar[Tuple[str, ...]] = (
        "repro/grid/runtime/protocol.py",
        "repro/grid/net/framing.py",
    )

    def __init__(self) -> None:
        self._registry: Optional[Set[str]] = None

    # -------------------------------------------------------- phase 1
    def collect(self, ctx: FileContext) -> None:
        if _match(ctx.rel, "*framing.py"):
            registry = self._parse_registry(ctx.tree)
            if registry is not None:
                self._registry = registry

    @staticmethod
    def _parse_registry(tree: ast.Module) -> Optional[Set[str]]:
        """Names registered in the ``_WIRE_TYPES`` codec dict."""
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "_WIRE_TYPES" not in targets:
                continue
            names: Set[str] = set()
            if isinstance(node.value, ast.DictComp):
                source: ast.AST = node.value.generators[0].iter
            else:
                source = node.value
            for sub in ast.walk(source):
                if isinstance(sub, ast.Name) and sub.id != "cls":
                    names.add(sub.id)
            return names
        return None

    # -------------------------------------------------------- phase 2
    def _registry_for(self, ctx: FileContext) -> Optional[Set[str]]:
        if self._registry is not None:
            return self._registry
        # Checking protocol.py alone: resolve the sibling framing.py.
        framing = ctx.path.resolve().parent.parent / "net" / "framing.py"
        if framing.exists():
            try:
                self._registry = self._parse_registry(
                    ast.parse(framing.read_text(encoding="utf-8"))
                )
            except (OSError, SyntaxError):
                self._registry = None
        return self._registry

    @staticmethod
    def _dataclasses(tree: ast.Module) -> Iterator[ast.ClassDef]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for deco in node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                name = (
                    target.id
                    if isinstance(target, ast.Name)
                    else target.attr
                    if isinstance(target, ast.Attribute)
                    else None
                )
                if name == "dataclass":
                    yield node
                    break

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        registry = self._registry_for(ctx)
        for cls in self._dataclasses(ctx.tree):
            fields = {
                stmt.target.id
                for stmt in cls.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            }
            registered = registry is not None and cls.name in registry
            # A dataclass is a wire message when the codec knows it or
            # when it carries the protocol's ``seq`` field; plain value
            # types (e.g. ProblemSpec) are neither.
            if not registered and "seq" not in fields:
                continue
            if "version" not in fields:
                yield self.violation(
                    ctx,
                    cls,
                    f"wire message {cls.name} lacks an explicit "
                    "'version' field (decoders cannot refuse future "
                    "frames without one)",
                )
            if registry is not None and not registered:
                yield self.violation(
                    ctx,
                    cls,
                    f"wire message {cls.name} is not registered in "
                    "_WIRE_TYPES — it cannot travel over the network "
                    "transports",
                )


@register
class RawSendOutsideRetryHelper(Rule):
    """RC04 — worker RPCs go through the ``_RpcChannel`` retry helper.

    PR 1's at-least-once discipline (same-seq retries, the
    coordinator's reply cache) only holds if every message is stamped
    and retried by the helper; a raw ``connection.send`` bypasses the
    seq counter and can wedge the single-outstanding pipeline.
    """

    code: ClassVar[str] = "RC04"
    title: ClassVar[str] = "no raw sends outside the RPC retry helper"
    invariant: ClassVar[str] = (
        "every worker->coordinator message is an at-least-once RPC "
        "(PR 1 seq/retry discipline)"
    )
    scope: ClassVar[Tuple[str, ...]] = ("repro/grid/runtime/bbprocess.py",)
    helper_class: ClassVar[str] = "_RpcChannel"

    @classmethod
    def _helper_names(cls, tree: ast.Module) -> Set[str]:
        """Local names bound to a ``_RpcChannel(...)`` instance.

        ``chan.send(...)`` *is* the retry helper (its ``send`` stamps a
        seq and arms ``collect``); only sends on anything else bypass
        the at-least-once machinery.
        """
        names: Set[str] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id == cls.helper_class
            ):
                names.update(
                    t.id for t in node.targets if isinstance(t, ast.Name)
                )
        return names

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        helpers = self._helper_names(ctx.tree)
        yield from self._walk(ctx, ctx.tree, helpers, inside_helper=False)

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        helpers: Set[str],
        inside_helper: bool,
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            inside = inside_helper or (
                isinstance(child, ast.ClassDef)
                and child.name == self.helper_class
            )
            if (
                not inside
                and isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "send"
                and not (
                    isinstance(child.func.value, ast.Name)
                    and child.func.value.id in helpers
                )
            ):
                yield self.violation(
                    ctx,
                    child,
                    "raw .send() outside _RpcChannel — unstamped, "
                    "unretried messages break the at-least-once protocol",
                )
            yield from self._walk(ctx, child, helpers, inside)


@register
class SimulatorDeterminism(Rule):
    """RC05 — the simulator draws no unseeded randomness or wall time.

    Chaos schedules and Table 2 reproductions replay byte-identically
    only because every stochastic source is a seeded ``random.Random``
    and every clock is virtual.  ``random.<fn>()`` module calls share
    one ambient global state, and ``time.time()`` reads the host.
    """

    code: ClassVar[str] = "RC05"
    title: ClassVar[str] = "simulator determinism discipline"
    invariant: ClassVar[str] = (
        "simulation runs replay exactly from their seed (Table 2 / "
        "chaos schedules)"
    )
    scope: ClassVar[Tuple[str, ...]] = ("repro/grid/simulator/*.py",)
    #: --strict extends the no-global-randomness part to benchmarks
    #: and examples, whose results are committed / copy-pasted.
    strict_scope: ClassVar[Tuple[str, ...]] = (
        "benchmarks/*.py",
        "examples/*.py",
    )

    UNSEEDED: ClassVar[FrozenSet[str]] = frozenset(
        {
            "betavariate",
            "choice",
            "choices",
            "expovariate",
            "gauss",
            "getrandbits",
            "lognormvariate",
            "normalvariate",
            "paretovariate",
            "randint",
            "random",
            "randrange",
            "sample",
            "seed",
            "shuffle",
            "triangular",
            "uniform",
            "vonmisesvariate",
            "weibullvariate",
        }
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        in_simulator = any(_match(ctx.rel, p) for p in self.scope)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
            ):
                continue
            owner, attr = node.func.value.id, node.func.attr
            if owner == "random" and attr in self.UNSEEDED:
                yield self.violation(
                    ctx,
                    node,
                    f"random.{attr}() uses the ambient global RNG — "
                    "thread a seeded random.Random instance instead",
                )
            elif in_simulator and owner == "time" and attr == "time":
                yield self.violation(
                    ctx,
                    node,
                    "time.time() reads the wall clock inside the "
                    "simulator — use the virtual clock",
                )


@register
class NoBlockingIOInAsync(Rule):
    """RC06 — no blocking socket/file I/O inside ``async def`` bodies.

    The TCP listener runs one asyncio loop for *every* connected
    worker; one blocking call inside a coroutine stalls heartbeat
    processing for the whole fleet and turns the half-open-peer
    detector into a half-open-server generator.
    """

    code: ClassVar[str] = "RC06"
    title: ClassVar[str] = "async bodies never block"
    invariant: ClassVar[str] = (
        "the listener's event loop services every peer; blocking calls "
        "freeze heartbeats fleet-wide"
    )
    scope: ClassVar[Tuple[str, ...]] = (
        "repro/grid/net/*.py",
        "repro/grid/service/*.py",
    )

    #: module-level calls that always block
    BLOCKING_MODULE_CALLS: ClassVar[Dict[str, FrozenSet[str]]] = {
        "time": frozenset({"sleep"}),
        "socket": frozenset(
            {
                "socket",
                "create_connection",
                "getaddrinfo",
                "gethostbyname",
                "gethostbyaddr",
            }
        ),
        "subprocess": frozenset({"run", "call", "check_call", "check_output"}),
    }
    #: method names that only exist on blocking socket/file objects
    BLOCKING_METHODS: ClassVar[FrozenSet[str]] = frozenset(
        {"accept", "makefile", "recv", "recv_into", "recvfrom", "sendall"}
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._walk(ctx, ctx.tree, in_async=False)

    def _walk(
        self, ctx: FileContext, node: ast.AST, in_async: bool
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            inside = in_async or isinstance(child, ast.AsyncFunctionDef)
            if in_async and isinstance(child, ast.Call):
                yield from self._check_call(ctx, child)
            yield from self._walk(ctx, child, inside)

    def _check_call(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Violation]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            yield self.violation(
                ctx, node, "blocking open() inside an async def"
            )
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                blocked = self.BLOCKING_MODULE_CALLS.get(func.value.id)
                if blocked is not None and func.attr in blocked:
                    yield self.violation(
                        ctx,
                        node,
                        f"blocking {func.value.id}.{func.attr}() inside "
                        "an async def stalls the whole listener loop",
                    )
                    return
            if func.attr in self.BLOCKING_METHODS:
                yield self.violation(
                    ctx,
                    node,
                    f"blocking .{func.attr}() inside an async def — "
                    "use the asyncio stream APIs",
                )


@register
class TypedCoreDiscipline(Rule):
    """RC07 — the strictly-typed core keeps complete annotations.

    ``mypy --strict`` guards these modules in CI, but mypy is an
    optional dev dependency; this rule keeps the biggest strict-mode
    regression class (untyped defs creeping in) catchable by
    ``make check`` alone, offline images included.
    """

    code: ClassVar[str] = "RC07"
    title: ClassVar[str] = "typed-core functions are fully annotated"
    invariant: ClassVar[str] = (
        "the engine/interval/runtime/net perimeter stays mypy-strict "
        "clean; unannotated defs are its largest regression class"
    )
    scope: ClassVar[Tuple[str, ...]] = (
        "repro/core/engine.py",
        "repro/core/interval.py",
        "repro/core/tree.py",
        "repro/core/operators.py",
        "repro/core/stats.py",
        "repro/core/problem.py",
        "repro/core/kernels/*.py",
        "repro/grid/runtime/*.py",
        "repro/grid/net/*.py",
        "repro/grid/service/*.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            params: List[ast.arg] = [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
            ]
            if params and params[0].arg in ("self", "cls"):
                params = params[1:]
            if args.vararg is not None:
                params.append(args.vararg)
            if args.kwarg is not None:
                params.append(args.kwarg)
            missing = [p.arg for p in params if p.annotation is None]
            if missing:
                yield self.violation(
                    ctx,
                    node,
                    f"def {node.name}: parameter(s) "
                    f"{', '.join(missing)} lack type annotations "
                    "(typed-core module)",
                )
            if node.returns is None and node.name != "__init__":
                yield self.violation(
                    ctx,
                    node,
                    f"def {node.name}: missing return annotation "
                    "(typed-core module)",
                )


@register
class DurableCheckpointWrites(Rule):
    """RC08 — checkpoint state reaches disk only through the durable API.

    PR 6's crash-only recovery holds because every checkpoint artifact
    is either written atomically (tmpfile + fsync + ``os.replace`` in
    ``_atomic_write_json``) or appended with a per-record CRC through
    ``CheckpointJournal``.  A raw ``open(path, "w")`` on a checkpoint
    path can be torn by a ``kill -9`` mid-write, and a torn INTERVALS
    file silently drops sub-intervals — lost work the §4.1 invariant
    can never detect.
    """

    code: ClassVar[str] = "RC08"
    title: ClassVar[str] = "checkpoint writes go through the durable API"
    invariant: ClassVar[str] = (
        "INTERVALS/SOLUTION/journal/epoch files survive kill -9 "
        "mid-write (atomic replace or CRC-framed append only)"
    )
    scope: ClassVar[Tuple[str, ...]] = (
        "repro/core/*.py",
        "repro/grid/*.py",
    )
    #: The durable API's own implementation — the one place raw file
    #: writes on checkpoint paths are the point.
    allowed: ClassVar[Tuple[str, ...]] = ("repro/core/checkpoint.py",)

    #: Identifiers that mark an expression as a checkpoint artifact.
    TAINTED: ClassVar[FrozenSet[str]] = frozenset(
        {
            "checkpoint",
            "checkpoint_dir",
            "checkpoint_path",
            "intervals_path",
            "solution_path",
            "journal_path",
            "epoch_path",
            "snapshot_path",
        }
    )
    WRITE_MODES: ClassVar[FrozenSet[str]] = frozenset(
        {"w", "w+", "wb", "w+b", "wt", "a", "a+", "ab", "a+b", "at", "x", "xb"}
    )

    def _tainted(self, node: ast.AST) -> bool:
        return bool(_identifiers(node) & self.TAINTED)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if any(_match(ctx.rel, p) for p in self.allowed):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "open"
                and node.args
                and self._tainted(node.args[0])
                and self._write_mode(node)
            ):
                yield self.violation(
                    ctx,
                    node,
                    "raw open(..., 'w'/'a') on a checkpoint path — a "
                    "kill -9 mid-write tears the file; use "
                    "_atomic_write_json or the CheckpointJournal API",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in ("write_text", "write_bytes")
                and self._tainted(func.value)
            ):
                yield self.violation(
                    ctx,
                    node,
                    f".{func.attr}() on a checkpoint path is not "
                    "atomic — use _atomic_write_json or the "
                    "CheckpointJournal API",
                )

    def _write_mode(self, node: ast.Call) -> bool:
        mode: Optional[ast.AST] = None
        if len(node.args) > 1:
            mode = node.args[1]
        else:
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = kw.value
        if mode is None:
            return False  # bare open(path) is read-only
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value in self.WRITE_MODES
        return True  # dynamic mode: assume the worst


@register
class LazyAcceleratorImports(Rule):
    """RC09 — optional accelerators (numba, cupy) import lazily.

    The kernel backends (PR 7) are *optional*: every module in this
    repository must import cleanly on a machine without numba or cupy,
    because that is the machine the fallback path exists for.  One
    top-level ``import numba`` outside ``repro/core/kernels/`` turns a
    missing accelerator into an ``ImportError`` at package import time
    — the CLI, the grid workers and the test suite all die before any
    backend fallback can run.  Even ``try: import numba`` probes
    belong in the backend modules, so availability has exactly one
    source of truth (``BoundKernel.available``) instead of per-module
    flags that can disagree.  Everywhere else the accelerator is
    imported inside the function that uses it (see
    ``flowshop/kernels_numba.jit_kernels``), where a failure is
    catchable and the fallback decides.
    """

    code: ClassVar[str] = "RC09"
    title: ClassVar[str] = "optional accelerators import lazily"
    invariant: ClassVar[str] = (
        "every module imports cleanly without numba/cupy; only the "
        "kernel backends probe them, lazily, inside functions"
    )
    scope: ClassVar[Tuple[str, ...]] = (
        "repro/*.py",
        "tests/*.py",
        "benchmarks/*.py",
        "examples/*.py",
    )
    #: The backends are where lazy probes live; within this package
    #: the imports are still function-local by convention, but the
    #: rule leaves the how to code review.
    allowed: ClassVar[Tuple[str, ...]] = ("repro/core/kernels/*.py",)

    ACCELERATORS: ClassVar[FrozenSet[str]] = frozenset({"numba", "cupy"})

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if any(_match(ctx.rel, p) for p in self.allowed):
            return
        yield from self._walk(ctx, ctx.tree.body)

    def _walk(
        self, ctx: FileContext, body: List[ast.stmt]
    ) -> Iterator[Violation]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # function bodies run lazily — that is the point
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self.ACCELERATORS:
                        yield self._flag(ctx, node, root)
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root in self.ACCELERATORS:
                    yield self._flag(ctx, node, root)
            elif isinstance(node, ast.If):
                if "TYPE_CHECKING" in _identifiers(node.test):
                    continue  # never executes at runtime
                yield from self._walk(ctx, node.body)
                yield from self._walk(ctx, node.orelse)
            elif isinstance(node, ast.Try):
                yield from self._walk(ctx, node.body)
                for handler in node.handlers:
                    yield from self._walk(ctx, handler.body)
                yield from self._walk(ctx, node.orelse)
                yield from self._walk(ctx, node.finalbody)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                yield from self._walk(ctx, node.body)
            elif isinstance(node, ast.ClassDef):
                yield from self._walk(ctx, node.body)

    def _flag(
        self, ctx: FileContext, node: ast.stmt, root: str
    ) -> Violation:
        return self.violation(
            ctx,
            node,
            f"top-level import of optional accelerator {root!r} — "
            f"import it lazily inside the function that uses it (or a "
            f"repro/core/kernels/ backend) so machines without it "
            f"still run",
        )


@register
class FrontierIntExactness(Rule):
    """RC10 — frontier node numbering must stay int-exact.

    PR 8's wave frontier multiplied the places that *compute* node
    numbers: the DFS body, the wave loop, the spill path and the pool
    refill all derive ``child_number = number + rank * weight`` from
    tree weights as large as ``50!``.  RC01 protects the number-coding
    modules; this rule extends the same discipline to the engine and
    the resumable wrapper, where exploration statistics and wall-clock
    floats live *beside* the exact arithmetic.  Any ``/``, ``float()``
    or float literal touching a node-number identifier in these
    modules is a rounding bug waiting for a tree deeper than 2**53 —
    both frontier strategies fold to ``[stack[-1].number, end)``, so
    one rounded number corrupts the checkpoint, not just a bound.
    """

    code: ClassVar[str] = "RC10"
    title: ClassVar[str] = "frontier node numbering stays int-exact"
    invariant: ClassVar[str] = (
        "node numbers, tree weights and fold endpoints in the engine "
        "are exact bignum ints on every frontier strategy "
        "(PAPER eq. 6-9; floats round above 2**53)"
    )
    scope: ClassVar[Tuple[str, ...]] = (
        "repro/core/engine.py",
        "repro/core/resumable.py",
    )

    #: Identifiers that hold node numbers / weights / fold endpoints.
    #: Deliberately excludes cost/bound/seconds names: those are float
    #: country, and mixing them here would drown the signal.
    TAINTED: ClassVar[FrozenSet[str]] = frozenset(
        {
            "number",
            "child_number",
            "numbers",
            "child_weight",
            "weights",
            "_weights",
            "_end",
            "new_end",
            "begin",
            "end",
            "interval",
            "remaining_interval",
            "total_leaves",
        }
    )

    def _lexical(self, node: ast.AST) -> bool:
        return bool(_identifiers(node) & self.TAINTED)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        policy = TaintPolicy(seeds=self.TAINTED)
        for scope in taint_scopes(ctx.tree, policy):
            yield from self._check_scope(ctx, scope)

    def _check_scope(
        self, ctx: FileContext, scope: ScopeTaint
    ) -> Iterator[Violation]:
        for node in scope.walk():
            if isinstance(node, (ast.BinOp, ast.AugAssign)) and isinstance(
                node.op, ast.Div
            ):
                operands = (
                    [node.left, node.right]
                    if isinstance(node, ast.BinOp)
                    else [node.target, node.value]
                )
                if self._lexical(node) or any(
                    scope.tainted(op) for op in operands
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "true division on a node-number expression — "
                        "use // so frontier folds stay int-exact",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                if any(
                    self._lexical(arg) or scope.tainted(arg)
                    for arg in node.args
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "float() conversion of a node number loses "
                        "exactness above 2**53",
                    )
            elif isinstance(node, (ast.BinOp, ast.Compare)):
                operands = (
                    [node.left, node.right]
                    if isinstance(node, ast.BinOp)
                    else [node.left, *node.comparators]
                )
                floats = [op for op in operands if _is_float_constant(op)]
                others = [
                    op for op in operands if not _is_float_constant(op)
                ]
                if floats and any(
                    self._lexical(op) or scope.tainted(op) for op in others
                ):
                    yield self.violation(
                        ctx,
                        floats[0],
                        "float literal mixed into node-number "
                        "arithmetic",
                    )


@register
class OpaqueJobIds(Rule):
    """RC11 — job ids are opaque tokens, never numbers.

    The multi-tenant service (PR 9) identifies jobs by random hex
    strings precisely so that nothing can *mean* anything: scheduling
    order comes from the admission counter (``record.order``), fair
    share from ``(active / priority)``, and recovery from the
    directory listing.  The moment scheduler code does arithmetic on a
    job id, orders by it, or coerces it to a number, submission order
    leaks back in through the id generator and every fairness property
    silently depends on how ids happen to sort.  Equality (routing a
    message to its ledger) and hashing (dict keys) are the only
    operations a job id supports.
    """

    code: ClassVar[str] = "RC11"
    title: ClassVar[str] = "job ids are opaque"
    invariant: ClassVar[str] = (
        "scheduling never depends on how job ids sort or parse — "
        "fairness comes from the admission counter and priorities "
        "alone (PR 9 multi-tenant contract)"
    )
    scope: ClassVar[Tuple[str, ...]] = ("repro/grid/service/*.py",)

    #: Names that hold job ids in the service modules by convention.
    TAINTED: ClassVar[FrozenSet[str]] = frozenset(
        {"job", "job_id", "jobs", "job_ids"}
    )
    ORDERING_CALLS: ClassVar[FrozenSet[str]] = frozenset(
        {"sorted", "min", "max", "int", "float"}
    )

    @classmethod
    def _tainted_name(cls, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in cls.TAINTED

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and (
                self._tainted_name(node.left)
                or self._tainted_name(node.right)
            ):
                yield self.violation(
                    ctx,
                    node,
                    "arithmetic on a job id — ids are opaque tokens; "
                    "derive scheduling from record.order / priority",
                )
            elif isinstance(node, ast.Compare) and any(
                self._tainted_name(op)
                for op in [node.left, *node.comparators]
            ):
                if all(
                    isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn, ast.Is, ast.IsNot))
                    for op in node.ops
                ):
                    continue  # equality/membership is the id's one job
                yield self.violation(
                    ctx,
                    node,
                    "ordering comparison on a job id — ids are opaque; "
                    "order by record.order, not by how ids sort",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self.ORDERING_CALLS
                and node.args
                and self._tainted_name(node.args[0])
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"{node.func.id}() over job ids — ids are opaque "
                    "tokens; any order or numeric reading of them is "
                    "scheduler state leaking through the id generator",
                )


# ---------------------------------------------------------------------------
# Wire-schema snapshot gate (RC12)
# ---------------------------------------------------------------------------

#: Relative location of the golden wire-schema snapshot, both inside
#: this package and inside any checked tree that ships its own.
_SCHEMA_RELPATH = ("tools", "check", "schemas", "wire.json")


def _schema_fields(cls: ast.ClassDef) -> Dict[str, str]:
    """``{field: annotation-source}`` for one wire dataclass."""
    fields: Dict[str, str] = {}
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            fields[stmt.target.id] = ast.unparse(stmt.annotation)
    return fields


def _schema_version(
    cls: ast.ClassDef, constants: Dict[str, object]
) -> Optional[int]:
    """The resolved default of the ``version`` field, when resolvable."""
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "version"
            and stmt.value is not None
        ):
            value = resolve_constant(stmt.value, constants)
            if not is_unresolved(value) and isinstance(value, int):
                return value
    return None


@register
class WireSchemaCompatibility(Rule):
    """RC12 — wire-schema changes must bump the message version.

    RC03 guarantees every wire dataclass *has* a ``version`` field;
    nothing guaranteed anyone ever changed it.  Adding, removing or
    retyping a field while the version stays put means an old worker
    (or a checkpoint journal written by one) decodes the new frame as
    the old shape — silent field loss across a crash/resume epoch.
    The golden schemas under ``tools/check/schemas/wire.json`` make
    the wire contract a reviewed, diffable artifact: this rule fails
    when the live dataclasses drift from the snapshot without a
    version bump, and ``repro check --update-schemas`` refreshes the
    snapshot once the bump (or the revert) is in place.
    """

    code: ClassVar[str] = "RC12"
    title: ClassVar[str] = "wire-schema changes bump the message version"
    invariant: ClassVar[str] = (
        "every _WIRE_TYPES dataclass matches its golden schema or "
        "carries a bumped version (WIRE_VERSION for framing-level "
        "messages) — old decoders must be able to refuse new shapes"
    )
    scope: ClassVar[Tuple[str, ...]] = (
        "repro/grid/runtime/protocol.py",
        "repro/grid/net/framing.py",
    )

    def __init__(self) -> None:
        self._registry: Optional[Set[str]] = None
        #: message name -> (defining rel path, classdef, fields, version)
        self._classes: Dict[
            str, Tuple[str, ast.ClassDef, Dict[str, str], Optional[int]]
        ] = {}

    # -------------------------------------------------------- phase 1
    def collect(self, ctx: FileContext) -> None:
        if _match(ctx.rel, "*framing.py"):
            registry = VersionedWireMessages._parse_registry(ctx.tree)
            if registry is not None:
                self._registry = registry
        constants = module_constants(ctx.tree)
        for cls in VersionedWireMessages._dataclasses(ctx.tree):
            self._classes[cls.name] = (
                ctx.rel,
                cls,
                _schema_fields(cls),
                _schema_version(cls, constants),
            )

    # -------------------------------------------------------- schema IO
    @staticmethod
    def locate_schema(start: Path) -> Optional[Path]:
        """Find the golden snapshot governing a checked file.

        Walks up from the file so a fixture tree can carry its own
        snapshot; falls back to the one shipped next to this module.
        """
        for parent in start.resolve().parents:
            candidate = parent.joinpath(*_SCHEMA_RELPATH)
            if candidate.exists():
                return candidate
        fallback = Path(__file__).resolve().parent / "schemas" / "wire.json"
        return fallback if fallback.exists() else None

    def snapshot(self) -> Dict[str, Any]:
        """The golden-schema document for the collected wire types."""
        registry = self._registry or set()
        messages: Dict[str, Any] = {}
        for name, (_rel, _cls, fields, version) in self._classes.items():
            if name in registry:
                messages[name] = {"version": version, "fields": fields}
        return {
            "_comment": (
                "Golden wire-message schemas enforced by repro check "
                "RC12; refresh with `repro check --update-schemas` "
                "after bumping the changed message's version."
            ),
            "messages": messages,
        }

    # -------------------------------------------------------- phase 2
    def check(self, ctx: FileContext) -> Iterator[Violation]:
        registry = self._registry
        if registry is None:
            registry = self._sibling_registry(ctx)
        if registry is None:
            return
        schema_path = self.locate_schema(ctx.path)
        local = [
            (name, cls, fields, version)
            for name, (rel, cls, fields, version) in self._classes.items()
            if rel == ctx.rel and name in registry
        ]
        if schema_path is None:
            if local:
                yield self.violation(
                    ctx,
                    local[0][1],
                    "no golden wire schema found "
                    "(tools/check/schemas/wire.json) — run "
                    "`repro check --update-schemas` to create it",
                )
            return
        try:
            golden = json.loads(schema_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            yield Violation(
                rule=self.code,
                path=ctx.rel,
                line=1,
                col=1,
                message=f"unreadable golden wire schema at {schema_path}",
            )
            return
        recorded: Dict[str, Any] = golden.get("messages", {})
        for name, cls, fields, version in sorted(local):
            yield from self._check_message(
                ctx, name, cls, fields, version, recorded.get(name)
            )
        if _match(ctx.rel, "*framing.py"):
            for name in sorted(set(recorded) - registry):
                yield Violation(
                    rule=self.code,
                    path=ctx.rel,
                    line=1,
                    col=1,
                    message=(
                        f"wire message {name} left _WIRE_TYPES but is "
                        "still in the golden schema — deployed peers "
                        "may still speak it; if the removal is "
                        "deliberate, run `repro check --update-schemas`"
                    ),
                )

    def _check_message(
        self,
        ctx: FileContext,
        name: str,
        cls: ast.ClassDef,
        fields: Dict[str, str],
        version: Optional[int],
        gold: Optional[Dict[str, Any]],
    ) -> Iterator[Violation]:
        if gold is None:
            yield self.violation(
                ctx,
                cls,
                f"new wire message {name} is not in the golden schema "
                "— run `repro check --update-schemas` to record it",
            )
            return
        gold_fields: Dict[str, str] = gold.get("fields", {})
        gold_version = gold.get("version")
        if fields != gold_fields:
            drift = self._describe_drift(fields, gold_fields)
            if version == gold_version or version is None:
                yield self.violation(
                    ctx,
                    cls,
                    f"wire schema of {name} changed ({drift}) without "
                    f"a version bump (still {gold_version!r}) — old "
                    "decoders will mis-read the new shape; bump the "
                    "message's version (WIRE_VERSION for framing-level "
                    "messages), then run `repro check --update-schemas`",
                )
            else:
                yield self.violation(
                    ctx,
                    cls,
                    f"wire schema of {name} changed ({drift}) with a "
                    f"version bump to {version} — refresh the golden "
                    "snapshot: `repro check --update-schemas`",
                )
        elif version != gold_version:
            yield self.violation(
                ctx,
                cls,
                f"version of {name} is {version!r} but the golden "
                f"schema records {gold_version!r} — stale snapshot; "
                "run `repro check --update-schemas`",
            )

    @staticmethod
    def _describe_drift(
        fields: Dict[str, str], gold_fields: Dict[str, str]
    ) -> str:
        added = sorted(set(fields) - set(gold_fields))
        removed = sorted(set(gold_fields) - set(fields))
        retyped = sorted(
            name
            for name in set(fields) & set(gold_fields)
            if fields[name] != gold_fields[name]
        )
        parts = []
        if added:
            parts.append(f"added: {', '.join(added)}")
        if removed:
            parts.append(f"removed: {', '.join(removed)}")
        if retyped:
            parts.append(f"retyped: {', '.join(retyped)}")
        return "; ".join(parts) or "reordered"

    @staticmethod
    def _sibling_registry(ctx: FileContext) -> Optional[Set[str]]:
        framing = ctx.path.resolve().parent.parent / "net" / "framing.py"
        if framing.exists():
            try:
                return VersionedWireMessages._parse_registry(
                    ast.parse(framing.read_text(encoding="utf-8"))
                )
            except (OSError, SyntaxError):
                return None
        return None


def compute_wire_schema(
    paths: Sequence[Path],
) -> Tuple[Dict[str, Any], Optional[Path]]:
    """Extract the live wire schema from the trees under ``paths``.

    Returns the snapshot document plus the golden file it should be
    written to (an existing snapshot governing the tree, else the
    checker package's own ``schemas/`` directory).
    """
    from repro.tools.check.core import iter_python_files, load_context

    rule = WireSchemaCompatibility()
    target: Optional[Path] = None
    for path in iter_python_files(list(paths)):
        ctx = load_context(path)
        if not any(_match(ctx.rel, p) for p in rule.scope):
            continue
        rule.collect(ctx)
        if target is None:
            target = rule.locate_schema(ctx.path)
    if target is None:
        target = Path(__file__).resolve().parent / "schemas" / "wire.json"
    return rule.snapshot(), target


def update_wire_schemas(paths: Sequence[Path]) -> Tuple[Path, int]:
    """The ``--update-schemas`` flow: rewrite the golden snapshot.

    Returns the file written and the number of messages recorded.
    """
    snapshot, target = compute_wire_schema(paths)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target, len(snapshot["messages"])


# ---------------------------------------------------------------------------
# Asyncio concurrency discipline (RC13)
# ---------------------------------------------------------------------------


def _lock_name(name: str) -> bool:
    parts = name.lower().split("_")
    return any(
        part in ("lock", "locks", "rlock", "mutex", "semaphore")
        for part in parts
    )


@register
class AsyncioConcurrencyDiscipline(Rule):
    """RC13 — the service/net event loop is a single-threaded world.

    Two hazards, both learned from the PR 4/PR 9 listener design
    (asyncio loop on a daemon thread, synchronous callers marshalling
    in via ``loop.call_soon_threadsafe``):

    * ``await`` while holding a *synchronous* lock parks the coroutine
      with the lock held; every other coroutine on the loop that wants
      the lock then blocks the loop thread itself — instant deadlock
      under load, invisible in single-connection tests.
    * an attribute mutated by async handlers is loop-confined by
      contract; mutating the same attribute from a synchronous method
      (which runs on the caller's thread) is a data race that Python's
      GIL hides until a dict resize or a reconnect interleaves.
      ``__init__`` is exempt (it happens-before the loop thread
      starts), as are closures handed to ``call_soon_threadsafe`` /
      ``run_coroutine_threadsafe`` (they run *on* the loop).
    """

    code: ClassVar[str] = "RC13"
    title: ClassVar[str] = "asyncio concurrency discipline"
    invariant: ClassVar[str] = (
        "no await under a held sync lock; loop-confined state is "
        "mutated only from the event-loop thread (PR 9 service "
        "threading contract)"
    )
    scope: ClassVar[Tuple[str, ...]] = (
        "repro/grid/net/*.py",
        "repro/grid/service/*.py",
    )

    _LOCK_POLICY: ClassVar[TaintPolicy] = TaintPolicy(
        seeds=frozenset(
            {"Lock", "RLock", "Semaphore", "BoundedSemaphore", "Condition"}
        ),
        seed_predicate=_lock_name,
        sanitizers=frozenset(),
    )
    _MARSHALLERS: ClassVar[FrozenSet[str]] = frozenset(
        {"call_soon_threadsafe", "run_coroutine_threadsafe"}
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._await_under_lock(ctx)
        yield from self._loop_confinement(ctx)

    # ----------------------------------------------- await under lock
    def _await_under_lock(self, ctx: FileContext) -> Iterator[Violation]:
        for scope in taint_scopes(ctx.tree, self._LOCK_POLICY):
            if not isinstance(scope.node, ast.AsyncFunctionDef):
                continue
            for node in scope.walk():
                if isinstance(node, ast.With) and any(
                    scope.tainted(item.context_expr) for item in node.items
                ):
                    for body_stmt in node.body:
                        yield from self._awaits_in(ctx, body_stmt)

    def _awaits_in(
        self, ctx: FileContext, root: ast.AST
    ) -> Iterator[Violation]:
        stack: List[ast.AST] = [root]
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue  # a nested def does not run under the lock
            if isinstance(node, ast.Await):
                yield self.violation(
                    ctx,
                    node,
                    "await while holding a synchronous lock — the "
                    "coroutine parks with the lock held and any other "
                    "coroutine contending for it wedges the whole "
                    "event loop; release first or use asyncio.Lock "
                    "with `async with`",
                )
            stack.extend(ast.iter_child_nodes(node))

    # ----------------------------------------------- loop confinement
    def _loop_confinement(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Violation]:
        methods = [
            stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        async_methods = [
            m for m in methods if isinstance(m, ast.AsyncFunctionDef)
        ]
        if not async_methods:
            return
        loop_owned: Dict[str, str] = {}
        for method in async_methods:
            for attr, _node, _closure in self._self_mutations(method):
                loop_owned.setdefault(attr, method.name)
        sync_methods = [
            m for m in methods if isinstance(m, ast.FunctionDef)
        ]
        # Closures a sync method hands to the loop run loop-side: their
        # mutations *define* loop-owned state rather than violating it.
        scheduled: Dict[str, Set[str]] = {
            m.name: self._scheduled_closures(m) for m in sync_methods
        }
        for method in sync_methods:
            for attr, _node, closure in self._self_mutations(method):
                if closure is not None and closure in scheduled[method.name]:
                    loop_owned.setdefault(attr, f"{method.name}.{closure}")
        for method in sync_methods:
            if method.name == "__init__":
                continue  # happens-before the loop thread exists
            for attr, node, closure in self._self_mutations(method):
                if closure is not None and closure in scheduled[method.name]:
                    continue
                if attr in loop_owned:
                    yield self.violation(
                        ctx,
                        node,
                        f"self.{attr} is loop-confined (mutated by "
                        f"async {loop_owned[attr]}() on the event-loop "
                        f"thread) but sync {method.name}() mutates it "
                        "from the caller's thread — marshal the write "
                        "through loop.call_soon_threadsafe",
                    )

    def _scheduled_closures(self, func: ast.FunctionDef) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._MARSHALLERS
            ):
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        names.add(arg.id)
                    elif isinstance(arg, ast.Call) and isinstance(
                        arg.func, ast.Name
                    ):
                        names.add(arg.func.id)
        return names

    def _self_mutations(
        self, func: ast.AST
    ) -> Iterator[Tuple[str, ast.AST, Optional[str]]]:
        """``(attr, node, enclosing-closure-name)`` for self.* writes."""

        def _walk(
            node: ast.AST, closure: Optional[str]
        ) -> Iterator[Tuple[str, ast.AST, Optional[str]]]:
            for child in ast.iter_child_nodes(node):
                child_closure = closure
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    child_closure = closure or child.name
                for attr in self._mutated_attrs(child):
                    yield attr, child, child_closure
                yield from _walk(child, child_closure)

        yield from _walk(func, None)

    @classmethod
    def _mutated_attrs(cls, node: ast.AST) -> Iterator[str]:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                yield from cls._target_attrs(target)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            yield from cls._target_attrs(node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                yield from cls._target_attrs(target)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
        ):
            owner = node.func.value
            if (
                isinstance(owner, ast.Attribute)
                and isinstance(owner.value, ast.Name)
                and owner.value.id == "self"
            ):
                yield owner.attr

    @staticmethod
    def _target_attrs(target: ast.AST) -> Iterator[str]:
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id == "self":
            yield target.attr
        elif isinstance(target, ast.Subscript):
            inner = target.value
            if (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
            ):
                yield inner.attr
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from AsyncioConcurrencyDiscipline._target_attrs(elt)


# ---------------------------------------------------------------------------
# Checkpoint fsync coverage (RC14)
# ---------------------------------------------------------------------------


@register
class CheckpointFsyncCoverage(Rule):
    """RC14 — every checkpoint write path reaches an fsync.

    RC08 forces checkpoint writers *outside* ``core/checkpoint.py`` to
    go through the durable API; this rule audits the API itself.  A
    write (or truncate) that can return without ``os.fsync`` is only
    as durable as the page cache — a power cut after ``close()`` but
    before writeback silently unwinds the journal, and PR 6's
    crash-only recovery then replays work the epoch stamp says is
    done.  Coverage is branch-aware: the fsync must sit in the same or
    a strictly weaker branch context than the write (an fsync inside
    ``if flush:`` does not cover an unconditional write; one in a
    ``finally`` covers the whole try).
    """

    code: ClassVar[str] = "RC14"
    title: ClassVar[str] = "checkpoint writes reach fsync on every branch"
    invariant: ClassVar[str] = (
        "journal/snapshot bytes are on disk, not in the page cache, "
        "before the durable API returns (PR 6 crash-only contract)"
    )
    scope: ClassVar[Tuple[str, ...]] = ("repro/core/checkpoint.py",)

    WRITE_MODES: ClassVar[FrozenSet[str]] = frozenset(
        {"w", "w+", "wb", "w+b", "wt", "a", "a+", "ab", "a+b", "at", "x", "xb"}
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: FileContext, func: ast.AST
    ) -> Iterator[Violation]:
        parents: Dict[int, ast.AST] = {}
        for node in scope_walk(func):
            for child in ast.iter_child_nodes(node):
                parents.setdefault(id(child), node)
        writes: List[Tuple[ast.AST, str]] = []
        fsyncs: List[ast.AST] = []
        for node in scope_walk(func):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            if (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Name)
                and fn.value.id == "os"
                and fn.attr == "fsync"
            ):
                fsyncs.append(node)
            elif isinstance(fn, ast.Attribute) and fn.attr in (
                "write", "truncate"
            ):
                writes.append((node, fn.attr))
            elif (
                isinstance(fn, ast.Attribute)
                and isinstance(fn.value, ast.Name)
                and fn.value.id == "json"
                and fn.attr == "dump"
            ):
                writes.append((node, "json.dump"))
            elif (
                isinstance(fn, ast.Name)
                and fn.id == "open"
                and self._write_mode(node)
            ):
                writes.append((node, "open-for-write"))
        if not writes:
            return
        sync_ancestry = [
            (node, self._branch_ancestry(node, func, parents, drop_finally=True))
            for node in fsyncs
        ]
        for node, kind in writes:
            write_anc = self._branch_ancestry(
                node, func, parents, drop_finally=False
            )
            enclosing_with = self._enclosing_with(node, func, parents)
            covered = False
            for sync_node, sync_anc in sync_ancestry:
                if not sync_anc <= write_anc:
                    continue
                if enclosing_with is not None and kind == "open-for-write":
                    # the handle dies with the `with`; the fsync must
                    # happen inside it, on the still-open descriptor.
                    if not self._inside(sync_node, enclosing_with, parents):
                        continue
                elif getattr(sync_node, "lineno", 0) < getattr(
                    node, "lineno", 0
                ):
                    continue
                covered = True
                break
            if not covered:
                yield self.violation(
                    ctx,
                    node,
                    f"checkpoint {kind} can return without os.fsync on "
                    "this branch — bytes sit in the page cache and a "
                    "power cut after close() silently unwinds the "
                    "journal; fsync the descriptor before returning",
                )

    def _write_mode(self, node: ast.Call) -> bool:
        mode: Optional[ast.AST] = None
        if len(node.args) > 1:
            mode = node.args[1]
        else:
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = kw.value
        if mode is None:
            return False
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value in self.WRITE_MODES
        return True

    @staticmethod
    def _branch_ancestry(
        node: ast.AST,
        func: ast.AST,
        parents: Dict[int, ast.AST],
        *,
        drop_finally: bool,
    ) -> Set[Tuple[int, str]]:
        """The set of conditional arms ``node`` sits inside.

        An fsync covers a write iff its arms are a subset of the
        write's: it executes whenever the write did.  ``finally`` arms
        are dropped from fsync ancestries because a finally block runs
        on every path through its try.
        """
        arms: Set[Tuple[int, str]] = set()
        current = node
        while id(current) in parents:
            parent = parents[id(current)]
            arm: Optional[str] = None
            if isinstance(parent, ast.If):
                arm = "body" if current in parent.body else "orelse"
            elif isinstance(parent, (ast.While, ast.For, ast.AsyncFor)):
                arm = "body" if current in parent.body else "orelse"
            elif isinstance(parent, ast.Try):
                if current in parent.body:
                    arm = "body"
                elif current in parent.orelse:
                    arm = "orelse"
                elif current in parent.finalbody:
                    arm = None if drop_finally else "finally"
                else:
                    arm = "handler"
            elif isinstance(parent, ast.ExceptHandler):
                arm = "except"
            if arm is not None:
                arms.add((id(parent), arm))
            current = parent
            if current is func:
                break
        return arms

    @staticmethod
    def _enclosing_with(
        node: ast.AST, func: ast.AST, parents: Dict[int, ast.AST]
    ) -> Optional[ast.AST]:
        """The ``with`` statement whose *items* contain ``node``."""
        current = node
        while id(current) in parents:
            parent = parents[id(current)]
            if isinstance(parent, (ast.With, ast.AsyncWith)):
                for item in parent.items:
                    if any(sub is node for sub in ast.walk(item)):
                        return parent
            current = parent
            if current is func:
                break
        return None

    @staticmethod
    def _inside(
        node: ast.AST, container: ast.AST, parents: Dict[int, ast.AST]
    ) -> bool:
        current = node
        while id(current) in parents:
            current = parents[id(current)]
            if current is container:
                return True
        return False


# ---------------------------------------------------------------------------
# Handler exception safety (RC15)
# ---------------------------------------------------------------------------


@register
class HandlerExceptionSafety(Rule):
    """RC15 — message handlers may not swallow exceptions broadly.

    The coordinator's ``handle()`` and the service's ``_on_*`` methods
    are the single point where a worker's ``Push`` (an improved
    solution) or a ``Reconciled`` (interval accounting) takes effect.
    A ``except:`` / ``except Exception: pass`` around that dispatch
    turns any bug into silently dropped state: the worker got its ACK
    (or will retry into the same black hole), the coordinator recorded
    nothing, and the §4.1 covering invariant can't see the loss.  A
    broad handler is legal only when it *answers* (``return`` an error
    reply, e.g. ``JobRefused``) or re-raises; narrowing the exception
    type is always legal.
    """

    code: ClassVar[str] = "RC15"
    title: ClassVar[str] = "handlers never swallow exceptions broadly"
    invariant: ClassVar[str] = (
        "a failing Push/Reconciled/Submit is answered or re-raised, "
        "never silently dropped by a bare/over-broad except"
    )
    scope: ClassVar[Tuple[str, ...]] = (
        "repro/grid/runtime/coordinator.py",
        "repro/grid/service/server.py",
        "repro/grid/net/serve.py",
    )

    HANDLER_PREFIXES: ClassVar[Tuple[str, ...]] = (
        "handle",
        "_handle",
        "on_",
        "_on_",
    )
    BROAD: ClassVar[FrozenSet[str]] = frozenset(
        {"Exception", "BaseException"}
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.name.startswith(self.HANDLER_PREFIXES):
                yield from self._check_handler(ctx, node)

    def _check_handler(
        self, ctx: FileContext, func: ast.AST
    ) -> Iterator[Violation]:
        for node in scope_walk(func):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if not self._broad(handler.type):
                    continue
                if self._answers(handler):
                    continue
                yield self.violation(
                    ctx,
                    handler,
                    f"broad except in message handler "
                    f"{getattr(func, 'name', '?')}() neither replies "
                    "nor re-raises — a failing Push/Reconciled would "
                    "be silently dropped; return an error reply, "
                    "raise, or narrow the exception type",
                )

    @classmethod
    def _broad(cls, expr: Optional[ast.expr]) -> bool:
        if expr is None:
            return True
        if isinstance(expr, ast.Name):
            return expr.id in cls.BROAD
        if isinstance(expr, ast.Tuple):
            return any(cls._broad(elt) for elt in expr.elts)
        return False

    @staticmethod
    def _answers(handler: ast.ExceptHandler) -> bool:
        """True when the handler re-raises or returns (an error reply)."""
        stack: List[ast.AST] = list(handler.body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(node, (ast.Raise, ast.Return)):
                return True
            stack.extend(ast.iter_child_nodes(node))
        return False

"""Command-line entry point of the static-analysis pass.

Reached three ways, all equivalent:

* ``repro check [PATHS...]`` — subcommand of the main CLI;
* ``python -m repro.tools.check`` — no install needed;
* ``make check`` — the default paths, as CI runs it.

Exit codes: 0 clean, 1 violations found, 2 a file could not be
checked at all (unreadable or syntax error) or bad usage.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.tools.check.core import RULES, check_paths
from repro.tools.check.reporting import (
    render_json,
    render_rule_list,
    render_sarif,
    render_text,
)

__all__ = ["add_check_arguments", "main", "run_check"]

#: What ``repro check`` (and ``make check``) scans with no arguments.
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``check`` options on ``parser`` (shared with repro CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to check (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="extend determinism rules to benchmarks/ and examples/",
    )
    parser.add_argument(
        "--output",
        "--format",
        dest="format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text); sarif feeds GitHub "
        "code-scanning so violations annotate PR diffs",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RC01,RC02",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="describe the registered rules and exit",
    )
    parser.add_argument(
        "--update-schemas",
        action="store_true",
        help="rewrite the golden wire schemas (RC12) from the live "
        "wire dataclasses and exit",
    )


def run_check(args: argparse.Namespace) -> int:
    """Execute a parsed ``check`` invocation; returns the exit code."""
    # Importing rules populates the registry before --list-rules reads it.
    from repro.tools.check import rules as _rules  # noqa: F401

    select = (
        [code.strip() for code in args.select.split(",") if code.strip()]
        if args.select
        else None
    )
    if args.list_rules:
        print(render_rule_list([cls() for cls in RULES.values()], select))
        return 0
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"repro-check: no such path(s): {', '.join(missing)}")
        return 2
    if getattr(args, "update_schemas", False):
        from repro.tools.check.rules import update_wire_schemas

        target, count = update_wire_schemas([Path(p) for p in args.paths])
        print(
            f"repro-check: wrote golden schemas for {count} wire "
            f"message(s) to {target}"
        )
        return 0
    try:
        result = check_paths(
            [Path(p) for p in args.paths], strict=args.strict, select=select
        )
    except ValueError as exc:  # unknown --select code
        print(f"repro-check: {exc}")
        return 2
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result, [cls() for cls in RULES.values()]))
    else:
        print(render_text(result))
    return result.exit_code()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="project-specific static analysis for this repository",
    )
    add_check_arguments(parser)
    return run_check(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Reporters for ``repro check`` results: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.tools.check.core import CheckResult, Rule

__all__ = ["render_text", "render_json", "render_rule_list"]


def render_text(result: CheckResult, *, verbose: bool = False) -> str:
    """One ``path:line:col: CODE message`` line per violation + summary."""
    lines = [violation.format() for violation in result.violations]
    for error in result.errors:
        lines.append(f"{error.path}: error: {error.message}")
    if result.clean:
        lines.append(
            f"repro-check: {result.files_checked} file(s) clean"
        )
    else:
        lines.append(
            f"repro-check: {len(result.violations)} violation(s), "
            f"{len(result.errors)} error(s) in "
            f"{result.files_checked} file(s)"
        )
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    return json.dumps(
        {
            "files_checked": result.files_checked,
            "violations": [v.as_dict() for v in result.violations],
            "errors": [
                {"path": e.path, "message": e.message} for e in result.errors
            ],
        },
        indent=2,
        sort_keys=True,
    )


def render_rule_list(rules: Sequence[Rule], select: Optional[Sequence[str]] = None) -> str:
    """The ``--list-rules`` table: code, title, and the invariant."""
    wanted = None if select is None else {code.upper() for code in select}
    lines = []
    for rule in rules:
        if wanted is not None and rule.code not in wanted:
            continue
        lines.append(f"{rule.code}  {rule.title}")
        lines.append(f"      {rule.invariant}")
    return "\n".join(lines)

"""Reporters for ``repro check``: human text, machine JSON, and SARIF.

The SARIF output (``repro check --output sarif``) is a SARIF 2.1.0
log that ``github/codeql-action/upload-sarif`` ingests, so violations
annotate the exact changed lines of a pull-request diff instead of
living in a CI log nobody opens.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.tools.check.core import CheckResult, Rule

__all__ = ["render_text", "render_json", "render_rule_list", "render_sarif"]


def render_text(result: CheckResult, *, verbose: bool = False) -> str:
    """One ``path:line:col: CODE message`` line per violation + summary."""
    lines = [violation.format() for violation in result.violations]
    for error in result.errors:
        lines.append(f"{error.path}: error: {error.message}")
    if result.clean:
        lines.append(
            f"repro-check: {result.files_checked} file(s) clean"
        )
    else:
        lines.append(
            f"repro-check: {len(result.violations)} violation(s), "
            f"{len(result.errors)} error(s) in "
            f"{result.files_checked} file(s)"
        )
    return "\n".join(lines)


def render_json(result: CheckResult) -> str:
    return json.dumps(
        {
            "files_checked": result.files_checked,
            "violations": [v.as_dict() for v in result.violations],
            "errors": [
                {"path": e.path, "message": e.message} for e in result.errors
            ],
        },
        indent=2,
        sort_keys=True,
    )


#: The RC00 meta-rule is emitted by the engine, not the registry, so
#: the SARIF rule table describes it by hand.
_META_RULES = {
    "RC00": (
        "suppression hygiene",
        "every inline ignore carries a reason, names a real rule, and "
        "actually silences a violation",
    ),
}


def render_sarif(result: CheckResult, rules: Sequence[Rule]) -> str:
    """A SARIF 2.1.0 log of the run (GitHub code-scanning dialect)."""
    rule_meta: Dict[str, Dict[str, object]] = {}
    for code, (title, invariant) in _META_RULES.items():
        rule_meta[code] = _sarif_rule(code, title, invariant)
    for rule in rules:
        rule_meta[rule.code] = _sarif_rule(
            rule.code, rule.title, rule.invariant
        )
    results: List[Dict[str, object]] = [
        {
            "ruleId": v.rule,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": v.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": v.line,
                            "startColumn": max(v.col, 1),
                        },
                    }
                }
            ],
        }
        for v in result.violations
    ]
    for error in result.errors:
        results.append(
            {
                "ruleId": "RC-ERROR",
                "level": "error",
                "message": {"text": f"file could not be checked: {error.message}"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": error.path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {"startLine": 1, "startColumn": 1},
                        }
                    }
                ],
            }
        )
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri": (
                            "docs/static-analysis.md"
                        ),
                        "rules": [
                            rule_meta[code] for code in sorted(rule_meta)
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def _sarif_rule(code: str, title: str, invariant: str) -> Dict[str, object]:
    return {
        "id": code,
        "shortDescription": {"text": title},
        "fullDescription": {"text": invariant},
        "helpUri": "docs/static-analysis.md",
        "defaultConfiguration": {"level": "error"},
    }


def render_rule_list(rules: Sequence[Rule], select: Optional[Sequence[str]] = None) -> str:
    """The ``--list-rules`` table: code, title, and the invariant."""
    wanted = None if select is None else {code.upper() for code in select}
    lines = []
    for rule in rules:
        if wanted is not None and rule.code not in wanted:
            continue
        lines.append(f"{rule.code}  {rule.title}")
        lines.append(f"      {rule.invariant}")
    return "\n".join(lines)

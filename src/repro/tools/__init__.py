"""Developer tooling that ships with the repository.

Unlike :mod:`repro.core` and :mod:`repro.grid`, nothing under this
package runs inside a resolution — these are build-time tools (the
``repro check`` static-analysis pass) that keep the runtime's
invariants enforceable as the codebase is refactored.
"""

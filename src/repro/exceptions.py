"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing the common cases.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TreeShapeError(ReproError):
    """A tree shape is malformed (empty, non-positive branching, ...)."""


class NumberingError(ReproError):
    """A node address (rank path) or node number is invalid for a shape."""


class IntervalError(ReproError):
    """An interval operation received inconsistent operands."""


class FoldError(ReproError):
    """An active list violates the DFS contiguity invariant (eq. 9)."""


class EngineError(ReproError):
    """The branch-and-bound engine was driven into an invalid state."""


class ProblemError(ReproError):
    """A :class:`~repro.core.problem.Problem` implementation misbehaved."""


class CheckpointError(ReproError):
    """A checkpoint file is missing, truncated or inconsistent."""


class SimulationError(ReproError):
    """The discrete-event grid simulator hit an invalid configuration."""


class RuntimeProtocolError(ReproError):
    """The multiprocessing runtime observed a protocol violation."""

"""Time-series helpers for Figure 7 (processor availability over time).

The simulator emits an event series ``[(time, active_count), ...]``;
these helpers resample it onto a regular grid, summarise it the way
the paper quotes it (average 328, maximum 1195), and render a
terminal sparkline so the benchmark output *is* the figure.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["resample", "series_summary", "sparkline"]

_BARS = "▁▂▃▄▅▆▇█"


def resample(
    series: Sequence[Tuple[float, int]], horizon: float, samples: int
) -> List[Tuple[float, int]]:
    """Step-function resampling of an event series onto a regular grid."""
    if samples < 1:
        raise ValueError("need at least one sample")
    out: List[Tuple[float, int]] = []
    idx = 0
    current = 0
    for k in range(samples):
        t = horizon * k / max(1, samples - 1) if samples > 1 else 0.0
        while idx < len(series) and series[idx][0] <= t:
            current = series[idx][1]
            idx += 1
        out.append((t, current))
    return out


def series_summary(
    series: Sequence[Tuple[float, int]], horizon: float
) -> Tuple[float, int]:
    """Time-weighted average and maximum of a step series."""
    if not series or horizon <= 0:
        return 0.0, 0
    total = 0.0
    peak = 0
    points = list(series) + [(horizon, series[-1][1])]
    for (t0, n), (t1, _) in zip(points, points[1:]):
        span = max(0.0, min(t1, horizon) - min(t0, horizon))
        total += n * span
        peak = max(peak, n)
    return total / horizon, peak


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Unicode sparkline of a value sequence, downsampled to ``width``."""
    if not values:
        return ""
    if len(values) > width:
        chunk = len(values) / width
        values = [
            max(values[int(i * chunk): max(int(i * chunk) + 1, int((i + 1) * chunk))])
            for i in range(width)
        ]
    top = max(values)
    if top <= 0:
        return _BARS[0] * len(values)
    return "".join(
        _BARS[min(len(_BARS) - 1, int(v / top * (len(_BARS) - 1) + 0.5))]
        for v in values
    )

"""One-shot reproduction sweep: every checkable claim, in under a minute.

``repro report`` (or :func:`quick_report`) runs scaled-down versions of
the paper's experiments back to back and reduces them to a
:class:`~repro.analysis.compare.ComparisonSet` — the same judgements
the full benchmark harness makes, sized for a smoke run.
"""

from __future__ import annotations

import math

from repro.analysis.compare import ComparisonSet

__all__ = ["quick_report", "PAPER_TA056_SCHEDULE"]

PAPER_TA056_SCHEDULE = [
    14, 37, 3, 18, 8, 33, 11, 21, 42, 5, 13, 49, 50, 20, 28, 45, 43,
    41, 46, 15, 24, 44, 40, 36, 39, 4, 16, 47, 17, 27, 1, 26, 10, 19,
    32, 25, 30, 7, 2, 31, 23, 6, 48, 22, 29, 34, 9, 35, 38, 12,
]


def quick_report(seed: int = 1) -> ComparisonSet:
    """Run the quick sweep; return the paper-vs-measured comparisons."""
    cs = ComparisonSet()
    _check_instance_identity(cs)
    _check_interval_coding(cs)
    _check_parallel_equivalence(cs, seed)
    _check_grid_statistics(cs, seed)
    _check_fault_tolerance(cs, seed)
    return cs


# ----------------------------------------------------------------------
def _check_instance_identity(cs: ComparisonSet) -> None:
    from repro.problems.flowshop import makespan, neh, taillard_instance

    ta001 = taillard_instance(20, 5, 1)
    _, neh001 = neh(ta001)
    cs.add("§5.1", "Ta001 NEH makespan (generator check)", "1286",
           str(neh001), neh001 == 1286)

    ta056 = taillard_instance(50, 20, 6)
    printed = makespan(ta056, [j - 1 for j in PAPER_TA056_SCHEDULE])
    cs.add("§5.3", "Ta056 printed schedule", "3679",
           str(printed), printed in (3679, 3680),
           "preprint permutation scores 3680; see EXPERIMENTS.md")
    cs.add("§5.3", "improves best known (3681)", "< 3681",
           str(printed), printed < 3681)


def _check_interval_coding(cs: ComparisonSet) -> None:
    from repro.core import Interval, TreeShape, fold, unfold, unfold_with_stats
    from repro.grid.simulator.messages import (
        active_list_wire_size,
        interval_wire_size,
    )

    shape = TreeShape.permutation(50)
    total = shape.total_leaves
    interval = Interval(total // 7, total // 3)
    active, stats = unfold_with_stats(shape, interval)
    cs.add("§3.4-3.5", "fold(unfold(I)) == I at 50! scale", "identity",
           "identity" if fold(active) == interval else "BROKEN",
           fold(active) == interval)
    cs.add("§3.5", "unfold decompositions", f"< P per boundary (P={shape.leaf_depth})",
           str(stats.decompositions), stats.decompositions <= 2 * shape.leaf_depth)
    iv_bytes = interval_wire_size(interval)
    al_bytes = active_list_wire_size(len(active), shape.leaf_depth)
    cs.add("abstract", "work unit wire size", "interval << node list",
           f"{iv_bytes}B vs {al_bytes}B ({al_bytes / iv_bytes:.0f}x)",
           iv_bytes * 4 <= al_bytes)


def _check_parallel_equivalence(cs: ComparisonSet, seed: int) -> None:
    from repro.core import solve
    from repro.grid.runtime import RuntimeConfig, flowshop_spec, solve_parallel
    from repro.problems.flowshop import FlowShopProblem, random_instance

    instance = random_instance(8, 4, seed=seed)
    expected = solve(FlowShopProblem(instance)).cost
    result = solve_parallel(
        flowshop_spec(instance),
        RuntimeConfig(workers=3, update_nodes=300, deadline=120,
                      crash_workers={0: 3}),
    )
    cs.add("§4", "parallel == sequential optimum (with a real crash)",
           "same cost + proof",
           f"{result.cost} (proof={result.optimal}, "
           f"crashed={len(result.crashed_workers)})",
           result.optimal and result.cost == expected)


def _check_grid_statistics(cs: ComparisonSet, seed: int) -> None:
    from repro.grid.simulator import (
        FarmerConfig,
        GridSimulation,
        SimulationConfig,
        SyntheticWorkload,
        WorkerConfig,
        small_platform,
    )

    leaves = 10**8
    workers = 16
    workload = SyntheticWorkload(
        leaves, seed=seed,
        mean_leaf_rate=leaves / (workers * 2.0 * 900.0),
        irregularity=1.2, segments=256, nodes_per_second=1e4,
        optimum=3679.0, initial_gap=2.0,
    )
    config = SimulationConfig(
        platform=small_platform(workers=workers, clusters=4),
        workload=workload, horizon=30 * 86400.0, seed=seed,
        farmer=FarmerConfig(duplication_threshold=leaves // 10**4),
        worker=WorkerConfig(update_period=30.0),
    )
    report = GridSimulation(config).run()
    t2 = report.table2
    cs.add("Table 2", "optimum found with proof", "3679 proved",
           f"{t2.best_cost:.0f} proved={report.finished}",
           report.finished and t2.best_cost == 3679.0)
    cs.add("Table 2", "worker vs coordinator exploitation", "97% vs 1.7%",
           f"{t2.worker_exploitation:.0%} vs {t2.coordinator_exploitation:.1%}",
           t2.worker_exploitation > 5 * t2.coordinator_exploitation)
    cs.add("Table 2", "redundant nodes", "0.39%",
           f"{t2.redundant_node_rate:.2%}", t2.redundant_node_rate < 0.05)
    cs.add("Table 2", "checkpoints >> allocations", "31x",
           f"{t2.checkpoint_operations / max(1, t2.work_allocations):.0f}x",
           t2.checkpoint_operations > t2.work_allocations)


def _check_fault_tolerance(cs: ComparisonSet, seed: int) -> None:
    from repro.core import solve
    from repro.grid.simulator import (
        FarmerConfig,
        FarmerFailurePlan,
        GridSimulation,
        RealBBWorkload,
        SimulationConfig,
        WorkerConfig,
        small_platform,
    )
    from repro.problems.flowshop import FlowShopProblem, random_instance

    instance = random_instance(7, 3, seed=seed + 100)
    problem = FlowShopProblem(instance)
    expected = solve(problem).cost
    config = SimulationConfig(
        platform=small_platform(workers=4),
        workload=RealBBWorkload(problem, nodes_per_second=0.3),
        horizon=3000 * 86400.0, always_on=True, seed=seed,
        farmer=FarmerConfig(checkpoint_period=10.0, duplication_threshold=100),
        worker=WorkerConfig(update_period=2.0),
        farmer_failures=FarmerFailurePlan([(10.0, 8.0), (40.0, 8.0)]),
    )
    report = GridSimulation(config).run()
    cs.add("§4.1", "proof survives farmer failures", "recovery from 2 files",
           f"optimum {report.best_cost} after "
           f"{report.farmer_recoveries} recoveries",
           report.finished and report.best_cost == expected
           and report.farmer_recoveries >= 1)

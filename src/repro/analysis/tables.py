"""Plain-text table renderers for the paper's tables.

Benchmarks print through these so every regenerated table shares one
format: a header, aligned columns, and (for Table 2) a paper-reference
column next to the measured value.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.grid.simulator.metrics import Table2Stats
from repro.grid.simulator.platform import PAPER_POOL_ROWS, PlatformSpec

__all__ = ["render_table", "render_table1", "render_table2"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table with a rule under the header."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_table1(platform: Optional[PlatformSpec] = None) -> str:
    """Table 1: the computational pool, row per CPU type."""
    if platform is None:
        rows = [
            (cpu, f"{ghz:.2f}", f"{cluster} ({domain})",
             f"{count}" if procs == 1 else f"2x{count}")
            for cpu, ghz, cluster, domain, count, procs in PAPER_POOL_ROWS
        ]
        total = sum(count * procs for *_, count, procs in PAPER_POOL_ROWS)
        table = render_table(
            ["CPU", "GHz", "Domain", "No."],
            rows,
            title="Table 1: The computational pool",
        )
        return f"{table}\nTotal: {total}"
    rows = [
        (c.name, c.domain, c.processors) for c in platform.clusters
    ]
    table = render_table(
        ["Cluster", "Domain", "Processors"],
        rows,
        title="Table 1 (platform spec)",
    )
    return f"{table}\nTotal: {platform.total_processors}"


# Paper's Table 2 values for the reference column.
PAPER_TABLE2 = {
    "Running wall clock time": "25 days",
    "Total cpu time": "22 years",
    "Average number of workers": "328",
    "Maximum number of workers": "1,195",
    "Worker CPU exploitation": "97%",
    "Coordinator CPU exploitation": "1.7%",
    "Checkpoint operations": "4,094,176",
    "Work allocations": "129,958",
    "Explored nodes": "6.5087e+12",
    "Redundant nodes": "0.39%",
}


def render_table2(
    stats: Table2Stats, scale_note: Optional[str] = None
) -> str:
    """Table 2: execution statistics, measured vs paper."""
    rows: List[Tuple[str, str, str]] = [
        (label, value, PAPER_TABLE2.get(label, ""))
        for label, value in stats.rows()
    ]
    table = render_table(
        ["Statistic", "Measured", "Paper (Ta056 run 2)"],
        rows,
        title="Table 2: The execution statistics",
    )
    if scale_note:
        table += f"\nNote: {scale_note}"
    return table

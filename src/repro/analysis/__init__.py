"""Analysis helpers: render the paper's tables and figures from runs.

Public surface::

    from repro.analysis import (
        render_table, render_table1, render_table2, render_table3,
        RECORD_RESOLUTIONS, sparkline, series_summary, resample,
        Comparison, ComparisonSet,
    )
"""

from repro.analysis.compare import Comparison, ComparisonSet
from repro.analysis.export import (
    read_series_csv,
    write_series_csv,
    write_table2_csv,
)
from repro.analysis.records import (
    RECORD_RESOLUTIONS,
    RecordResolution,
    render_table3,
)
from repro.analysis.series import resample, series_summary, sparkline
from repro.analysis.tables import render_table, render_table1, render_table2

__all__ = [
    "Comparison",
    "ComparisonSet",
    "RECORD_RESOLUTIONS",
    "RecordResolution",
    "read_series_csv",
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "resample",
    "series_summary",
    "sparkline",
    "write_series_csv",
    "write_table2_csv",
]

"""Table 3: the most computation-hungry exact resolutions known in 2006.

Static historical data from the paper (with its own sources: Applegate
et al. for the TSP records, Anstreicher et al. for Nug30), plus the
normalisation helper that lets a new run place itself in the ranking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.tables import render_table

__all__ = ["RecordResolution", "RECORD_RESOLUTIONS", "render_table3", "rank_of"]


@dataclass(frozen=True)
class RecordResolution:
    """One row of Table 3."""

    order: int
    problem: str
    instance: str
    description: str
    cpu_years: float
    reference_machine: str

    def power_label(self) -> str:
        years = (
            f"{self.cpu_years:.0f}"
            if self.cpu_years == int(self.cpu_years)
            else f"{self.cpu_years:g}"
        )
        if self.reference_machine:
            return f"{years} years/{self.reference_machine}"
        return f"{years} years"


RECORD_RESOLUTIONS: List[RecordResolution] = [
    RecordResolution(
        1, "TSP", "Sw24978", "24,978 towns of Sweden", 84.0,
        "Intel Xeon 2.8 GHz",
    ),
    RecordResolution(
        2, "Flow-Shop", "Ta056", "50 jobs on 20 machines", 22.0, "",
    ),
    RecordResolution(
        3, "TSP", "D15112", "15,112 towns of Germany", 22.0,
        "Compaq Alpha 500 MHz",
    ),
    RecordResolution(4, "QAP", "Nug30", "", 7.0, "HP-C3000 400MHz"),
    RecordResolution(5, "TSP", "Usa13509", "13,509 towns of USA", 4.0, ""),
]


def render_table3(
    extra: Optional[RecordResolution] = None,
) -> str:
    """Table 3, optionally re-ranked with one additional resolution."""
    records = list(RECORD_RESOLUTIONS)
    if extra is not None:
        records.append(extra)
        records.sort(key=lambda r: -r.cpu_years)
        records = [
            RecordResolution(
                i + 1, r.problem, r.instance, r.description,
                r.cpu_years, r.reference_machine,
            )
            for i, r in enumerate(records)
        ]
    rows = [
        (r.order, r.problem, r.instance, r.description, r.power_label())
        for r in records
    ]
    return render_table(
        ["Order", "Problem", "Instance", "Description", "Computation power"],
        rows,
        title="Table 3: The comparison of the most known resolutions",
    )


def rank_of(cpu_years: float) -> int:
    """Where a run of this cumulative CPU time would rank in Table 3."""
    return 1 + sum(1 for r in RECORD_RESOLUTIONS if r.cpu_years > cpu_years)

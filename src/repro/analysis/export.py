"""Exporting regenerated tables/figures as files (CSV / markdown).

The benchmarks print their tables; downstream analysis (plotting the
Figure 7 series, diffing Table 2 across runs) wants files.  Plain
``csv`` module, no pandas dependency.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence, Tuple, Union

from repro.grid.simulator.metrics import Table2Stats

__all__ = ["write_series_csv", "write_table2_csv", "read_series_csv"]

PathLike = Union[str, Path]


def write_series_csv(
    path: PathLike, series: Sequence[Tuple[float, int]],
    header: Tuple[str, str] = ("time_seconds", "active_workers"),
) -> Path:
    """Write a (time, value) step series — the Figure 7 data file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for t, v in series:
            writer.writerow([f"{t:.6f}", v])
    return path


def read_series_csv(path: PathLike) -> list:
    """Read back a series written by :func:`write_series_csv`."""
    with Path(path).open(newline="") as fh:
        reader = csv.reader(fh)
        next(reader)  # header
        return [(float(t), int(v)) for t, v in reader]


def write_table2_csv(path: PathLike, stats: Table2Stats) -> Path:
    """Write the Table 2 rows as label,value CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["statistic", "value"])
        for label, value in stats.rows():
            writer.writerow([label, value])
        writer.writerow(["best cost", stats.best_cost])
        writer.writerow(["optimum proved", stats.optimum_proved])
    return path

"""Paper-vs-measured bookkeeping.

Each benchmark registers the quantities it regenerates as
:class:`Comparison` rows; :class:`ComparisonSet` renders them as the
markdown EXPERIMENTS.md consumes, with a pass/fail judgement based on
the *shape* criterion (who wins, by roughly what factor) rather than
absolute equality — the simulator is not the authors' testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Comparison", "ComparisonSet"]


@dataclass
class Comparison:
    """One paper-vs-measured quantity."""

    experiment: str  # "Table 2", "Fig. 7", ...
    metric: str
    paper: str
    measured: str
    holds: bool  # does the paper's qualitative claim hold?
    note: str = ""

    def markdown_row(self) -> str:
        status = "✓" if self.holds else "✗"
        return (
            f"| {self.experiment} | {self.metric} | {self.paper} | "
            f"{self.measured} | {status} | {self.note} |"
        )


@dataclass
class ComparisonSet:
    """A bag of comparisons with render/summary helpers."""

    rows: List[Comparison] = field(default_factory=list)

    def add(
        self,
        experiment: str,
        metric: str,
        paper: str,
        measured: str,
        holds: bool,
        note: str = "",
    ) -> Comparison:
        row = Comparison(experiment, metric, paper, measured, holds, note)
        self.rows.append(row)
        return row

    def all_hold(self) -> bool:
        return all(r.holds for r in self.rows)

    def failures(self) -> List[Comparison]:
        return [r for r in self.rows if not r.holds]

    def markdown(self, title: Optional[str] = None) -> str:
        lines = []
        if title:
            lines.append(f"### {title}")
            lines.append("")
        lines.append(
            "| Experiment | Metric | Paper | Measured | Holds | Note |"
        )
        lines.append("|---|---|---|---|---|---|")
        lines.extend(r.markdown_row() for r in self.rows)
        return "\n".join(lines)

    def text(self) -> str:
        width = max((len(r.metric) for r in self.rows), default=0)
        lines = []
        for r in self.rows:
            status = "OK " if r.holds else "FAIL"
            lines.append(
                f"[{status}] {r.experiment}: {r.metric.ljust(width)}  "
                f"paper={r.paper}  measured={r.measured}"
                + (f"  ({r.note})" if r.note else "")
            )
        return "\n".join(lines)

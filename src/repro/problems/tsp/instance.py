"""Symmetric TSP instances.

Table 3 of the paper compares the Ta056 resolution against the great
TSP record runs (Sw24978, D15112, Usa13509).  Those national road
instances are not reproducible offline, so this module generates the
synthetic equivalent: random Euclidean point sets whose rounded
distance matrices exercise the same permutation-tree B&B code path
(see DESIGN.md §2 for the substitution rationale).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ProblemError

__all__ = ["TSPInstance", "random_tsp"]


class TSPInstance:
    """A symmetric distance matrix with zero diagonal."""

    __slots__ = ("distances", "name")

    def __init__(
        self, distances: Sequence[Sequence[int]], name: Optional[str] = None
    ):
        d = np.asarray(distances, dtype=np.int64)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise ProblemError(f"distance matrix must be square, got {d.shape}")
        if d.shape[0] < 3:
            raise ProblemError("a tour needs at least 3 cities")
        if not np.array_equal(d, d.T):
            raise ProblemError("distance matrix must be symmetric")
        if np.diagonal(d).any():
            raise ProblemError("distance matrix diagonal must be zero")
        if (d < 0).any():
            raise ProblemError("distances must be non-negative")
        d.setflags(write=False)
        self.distances = d
        self.name = name or f"tsp-{d.shape[0]}"

    @property
    def cities(self) -> int:
        return int(self.distances.shape[0])

    def tour_length(self, tour: Sequence[int]) -> int:
        """Length of a closed tour visiting every city once."""
        if sorted(tour) != list(range(self.cities)):
            raise ProblemError(
                f"not a permutation of 0..{self.cities - 1}: {list(tour)!r}"
            )
        d = self.distances
        total = 0
        for a, b in zip(tour, tour[1:]):
            total += int(d[a, b])
        total += int(d[tour[-1], tour[0]])
        return total

    def __repr__(self) -> str:
        return f"TSPInstance({self.name!r}, {self.cities} cities)"


def random_tsp(cities: int, seed: int, scale: int = 1000) -> TSPInstance:
    """Random Euclidean instance: points uniform in a square, rounded
    integer distances (the TSPLIB EUC_2D convention of the record runs).
    """
    rng = np.random.default_rng(seed)
    points = rng.uniform(0, scale, size=(cities, 2))
    diff = points[:, None, :] - points[None, :, :]
    d = np.rint(np.sqrt((diff**2).sum(axis=2))).astype(np.int64)
    np.fill_diagonal(d, 0)
    # rounding can break symmetry only through fp noise; enforce it.
    d = np.minimum(d, d.T)
    return TSPInstance(d, name=f"euc2d-{cities}-s{seed}")

"""Lower bounds for the symmetric TSP.

Two bounds of increasing strength:

* :func:`outgoing_edge_bound` — each unvisited node's cheapest usable
  outgoing edge (the baseline bound built into
  :class:`~repro.problems.tsp.problem.TSPProblem`);
* :func:`one_tree_bound` — the Held–Karp 1-tree: a minimum spanning
  tree over the non-root nodes plus the two cheapest edges of a
  special node.  The record runs in the paper's Table 3 (Sw24978,
  D15112, Usa13509) were driven by exactly this bound family
  (with Lagrangian refinement); the plain 1-tree is implemented here
  and dominates the outgoing-edge bound at the root.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import networkx as nx
import numpy as np

from repro.exceptions import ProblemError
from repro.problems.tsp.instance import TSPInstance

__all__ = ["outgoing_edge_bound", "one_tree_bound"]


def outgoing_edge_bound(
    instance: TSPInstance,
    path: Sequence[int],
    path_cost: int,
    remaining: Iterable[int],
) -> int:
    """Cheapest-usable-outgoing-edge bound for a partial tour."""
    d = instance.distances
    remaining = list(remaining)
    if not remaining:
        return path_cost + int(d[path[-1], path[0]])
    current = path[-1]
    targets = remaining + [path[0]]
    bound = path_cost + min(int(d[current, t]) for t in targets)
    for u in remaining:
        others = [t for t in targets if t != u]
        bound += min(int(d[u, t]) for t in others)
    return bound


def one_tree_bound(
    instance: TSPInstance, special: int = 0
) -> int:
    """The Held–Karp 1-tree bound for the *whole* instance.

    A 1-tree is a spanning tree over ``V - {special}`` plus the two
    cheapest edges incident to ``special``; every tour is a 1-tree, so
    the minimum 1-tree weight lower-bounds the optimal tour.
    """
    n = instance.cities
    if not 0 <= special < n:
        raise ProblemError(f"special node {special} outside 0..{n - 1}")
    d = instance.distances
    graph = nx.Graph()
    others = [v for v in range(n) if v != special]
    for i, u in enumerate(others):
        for v in others[i + 1:]:
            graph.add_edge(u, v, weight=int(d[u, v]))
    mst_weight = sum(
        data["weight"]
        for _, _, data in nx.minimum_spanning_edges(graph, data=True)
    )
    incident = sorted(int(d[special, v]) for v in others)
    return int(mst_weight + incident[0] + incident[1])


def best_one_tree_bound(instance: TSPInstance, specials: Optional[Sequence[int]] = None) -> int:
    """Max of 1-tree bounds over several special-node choices."""
    if specials is None:
        specials = range(instance.cities)
    return max(one_tree_bound(instance, s) for s in specials)

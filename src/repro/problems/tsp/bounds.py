"""Lower bounds for the symmetric TSP.

Two bounds of increasing strength:

* :func:`outgoing_edge_bound` — each unvisited node's cheapest usable
  outgoing edge (the baseline bound built into
  :class:`~repro.problems.tsp.problem.TSPProblem`), evaluated as one
  masked row-minimum sweep, plus :func:`outgoing_edge_bound_children`,
  the batched form that bounds every child of a decomposed node in one
  kernel;
* :func:`one_tree_bound` — the Held–Karp 1-tree: a minimum spanning
  tree over the non-root nodes plus the two cheapest edges of a
  special node.  The record runs in the paper's Table 3 (Sw24978,
  D15112, Usa13509) were driven by exactly this bound family
  (with Lagrangian refinement); the plain 1-tree is implemented here
  and dominates the outgoing-edge bound at the root.  The MST runs on
  ``scipy.sparse.csgraph``; the original networkx formulation is kept
  as :func:`one_tree_bound_networkx`, the test oracle.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import minimum_spanning_tree

from repro.exceptions import ProblemError
from repro.problems.tsp.instance import TSPInstance

__all__ = [
    "outgoing_edge_bound",
    "outgoing_edge_bound_children",
    "outgoing_edge_bound_children_pool",
    "one_tree_bound",
    "one_tree_bound_networkx",
]


def _masked_distance_block(
    d: np.ndarray, remaining: np.ndarray, home: int
) -> np.ndarray:
    """Rows = remaining cities, cols = remaining + [home], own col masked.

    The shared table of both outgoing-edge forms: entry ``[i, t]`` is
    the distance from remaining city ``i`` to target ``t``, with the
    self column pushed to +inf so row minima skip it.
    """
    targets = np.concatenate([remaining, [home]])
    block = d[np.ix_(remaining, targets)].astype(np.float64)
    r = remaining.size
    block[np.arange(r), np.arange(r)] = np.inf
    return block


def outgoing_edge_bound(
    instance: TSPInstance,
    path: Sequence[int],
    path_cost: int,
    remaining: Iterable[int],
) -> int:
    """Cheapest-usable-outgoing-edge bound for a partial tour.

    The remaining tour must leave the current city once and leave every
    unvisited city once (ending back at the start), so summing each
    one's cheapest admissible outgoing edge is admissible.  One masked
    row-minimum over the remaining-by-targets block — no Python loop.
    """
    d = instance.distances
    remaining = np.asarray(list(remaining), dtype=np.intp)
    if remaining.size == 0:
        return path_cost + int(d[path[-1], path[0]])
    home = path[0]
    targets = np.concatenate([remaining, [home]])
    block = _masked_distance_block(d, remaining, home)
    bound = path_cost + int(d[path[-1], targets].min())
    bound += int(block.min(axis=1).sum())
    return bound


def outgoing_edge_bound_children(
    instance: TSPInstance,
    path: Sequence[int],
    path_cost: int,
    remaining: Sequence[int],
) -> np.ndarray:
    """Outgoing-edge bounds of *all* children of a partial tour at once.

    Child ``c`` extends the path with ``remaining[c]``.  Its bound is

        cost + d[current, r_c] + min_t d[r_c, t] + sum over the other
        remaining cities of their cheapest edge avoiding ``r_c``

    and the whole family collapses to one leave-one-out scan: with
    ``min1``/``argmin``/``min2`` the best and runner-up outgoing edge
    per remaining city, child ``c``'s own first-hop minimum *is*
    ``min1[c]`` (its self column is masked), and the leave-one-out sum
    is ``S - min1[c]`` corrected by ``min2 - min1`` wherever ``argmin``
    pointed at ``r_c`` — so every child is O(1) after the shared
    O(r^2) table.  Requires at least one city to remain per child
    (the engine never batch-bounds leaf children).
    """
    d = instance.distances
    remaining = np.asarray(remaining, dtype=np.intp)
    r = remaining.size
    if r < 2:
        raise ProblemError(
            "outgoing_edge_bound_children needs >= 2 remaining cities; "
            "bound leaf children with leaf_cost instead"
        )
    block = _masked_distance_block(d, remaining, path[0])
    argmin1 = block.argmin(axis=1)
    rows = np.arange(r)
    min1 = block[rows, argmin1]
    masked = block.copy()
    masked[rows, argmin1] = np.inf
    min2 = masked.min(axis=1)
    # Sum of every city's best edge; child c removes its own row (it
    # is now the tour head) and forbids its column as a target.
    total = min1.sum()
    correction = np.bincount(
        argmin1, weights=min2 - min1, minlength=r + 1
    )[:r]
    first_hop = d[path[-1], remaining].astype(np.float64)
    bounds = path_cost + first_hop + total + correction
    return bounds.astype(np.int64)


def outgoing_edge_bound_children_pool(
    instance: TSPInstance,
    lasts: Sequence[int],
    costs: Sequence[int],
    homes: Sequence[int],
    remaining: np.ndarray,
) -> np.ndarray:
    """Pooled :func:`outgoing_edge_bound_children` over N partial tours.

    Row ``n`` describes one parent: current city ``lasts[n]``, open
    path cost ``costs[n]``, tour start ``homes[n]`` and the (N, r)
    matrix row ``remaining[n]`` of its unvisited cities (all parents
    share one depth, hence one r; ``r >= 2`` as the engine never pools
    leaf children).  Row ``n`` of the result equals the per-family
    kernel's output exactly: the arithmetic is float64 sums of integer
    distances below 2**53, which are order-independent-exact, and both
    forms pick the first argmin.
    """
    d = instance.distances
    remaining = np.asarray(remaining, dtype=np.intp)
    n_pool, r = remaining.shape
    if r < 2:
        raise ProblemError(
            "outgoing_edge_bound_children_pool needs >= 2 remaining cities; "
            "bound leaf children with leaf_cost instead"
        )
    lasts_arr = np.asarray(lasts, dtype=np.intp)
    costs_arr = np.asarray(costs, dtype=np.float64)
    homes_arr = np.asarray(homes, dtype=np.intp)
    targets = np.concatenate([remaining, homes_arr[:, None]], axis=1)
    block = d[remaining[:, :, None], targets[:, None, :]].astype(np.float64)
    ar = np.arange(r)
    block[:, ar, ar] = np.inf
    argmin1 = block.argmin(axis=2)  # (N, r)
    min1 = np.take_along_axis(block, argmin1[:, :, None], axis=2)[:, :, 0]
    np.put_along_axis(block, argmin1[:, :, None], np.inf, axis=2)
    min2 = block.min(axis=2)
    total = min1.sum(axis=1)  # (N,)
    # Scatter-add replaces the per-family bincount: same values into
    # the same argmin slots, per pool row.
    correction = np.zeros((n_pool, r + 1), dtype=np.float64)
    np.add.at(correction, (np.arange(n_pool)[:, None], argmin1), min2 - min1)
    first_hop = d[lasts_arr[:, None], remaining].astype(np.float64)
    bounds = costs_arr[:, None] + first_hop + total[:, None] + correction[:, :r]
    return bounds.astype(np.int64)


def one_tree_bound(instance: TSPInstance, special: int = 0) -> int:
    """The Held–Karp 1-tree bound for the *whole* instance.

    A 1-tree is a spanning tree over ``V - {special}`` plus the two
    cheapest edges incident to ``special``; every tour is a 1-tree, so
    the minimum 1-tree weight lower-bounds the optimal tour.

    The MST is computed by ``scipy.sparse.csgraph.minimum_spanning_tree``
    over the dense sub-block.  csgraph treats explicit zeros as missing
    edges, so weights are shifted by +1 (a uniform shift preserves the
    MST) and the shift is subtracted back off the ``m - 1`` tree edges.
    """
    n = instance.cities
    if not 0 <= special < n:
        raise ProblemError(f"special node {special} outside 0..{n - 1}")
    d = instance.distances
    others = np.array([v for v in range(n) if v != special], dtype=np.intp)
    m = others.size
    shifted = d[np.ix_(others, others)].astype(np.float64) + 1.0
    np.fill_diagonal(shifted, 0.0)  # no self loops
    mst = minimum_spanning_tree(csr_matrix(shifted))
    mst_weight = int(mst.sum()) - (m - 1)
    incident = np.sort(d[special, others])
    return int(mst_weight + incident[0] + incident[1])


def one_tree_bound_networkx(instance: TSPInstance, special: int = 0) -> int:
    """Reference 1-tree via networkx — the oracle the fast path is
    tested against (kept deliberately close to the textbook phrasing)."""
    n = instance.cities
    if not 0 <= special < n:
        raise ProblemError(f"special node {special} outside 0..{n - 1}")
    d = instance.distances
    graph = nx.Graph()
    others = [v for v in range(n) if v != special]
    for i, u in enumerate(others):
        for v in others[i + 1:]:
            graph.add_edge(u, v, weight=int(d[u, v]))
    mst_weight = sum(
        data["weight"]
        for _, _, data in nx.minimum_spanning_edges(graph, data=True)
    )
    incident = sorted(int(d[special, v]) for v in others)
    return int(mst_weight + incident[0] + incident[1])


def best_one_tree_bound(instance: TSPInstance, specials: Optional[Sequence[int]] = None) -> int:
    """Max of 1-tree bounds over several special-node choices."""
    if specials is None:
        specials = range(instance.cities)
    return max(one_tree_bound(instance, s) for s in specials)

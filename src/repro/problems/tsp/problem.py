"""Symmetric TSP as a permutation-tree :class:`Problem`.

City 0 is the fixed tour start, so a tour is a permutation of the
remaining ``n - 1`` cities and the search tree is
``TreeShape.permutation(n - 1)`` — the same regular tree family the
paper's interval coding targets.

The lower bound is the classic outgoing-edge bound: the remaining part
of the tour must leave the current city once and leave every unvisited
city once (ending back at city 0), so summing each node's cheapest
admissible outgoing edge is admissible.  Bounds are evaluated by the
vectorised kernels in :mod:`repro.problems.tsp.bounds`; at
decomposition time all children are bounded by one batched call
(:meth:`TSPProblem.bound_children`).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.problem import Problem
from repro.core.tree import TreeShape
from repro.problems.tsp.bounds import (
    outgoing_edge_bound,
    outgoing_edge_bound_children,
)
from repro.problems.tsp.instance import TSPInstance

__all__ = ["TSPProblem", "nearest_neighbour_tour"]


class _TourState:
    __slots__ = ("path", "cost", "remaining")

    def __init__(self, path: Tuple[int, ...], cost: int, remaining: Tuple[int, ...]):
        self.path = path  # starts at city 0
        self.cost = cost  # length of the open path so far
        self.remaining = remaining  # ascending city ids


class TSPProblem(Problem):
    """Minimise closed-tour length over permutations of cities 1..n-1."""

    def __init__(self, instance: TSPInstance):
        self.instance = instance
        self._shape = TreeShape.permutation(instance.cities - 1)

    def tree_shape(self) -> TreeShape:
        return self._shape

    def root_state(self) -> _TourState:
        return _TourState(
            (0,), 0, tuple(range(1, self.instance.cities))
        )

    def branch(self, state: _TourState, depth: int) -> List[_TourState]:
        hops = self.instance.distances[state.path[-1]]
        remaining = state.remaining
        return [
            _TourState(
                state.path + (city,),
                state.cost + int(hops[city]),
                remaining[:idx] + remaining[idx + 1 :],
            )
            for idx, city in enumerate(remaining)
        ]

    def lower_bound(self, state: _TourState, depth: int) -> float:
        if not state.remaining:
            return state.cost + int(
                self.instance.distances[state.path[-1], 0]
            )
        return outgoing_edge_bound(
            self.instance, state.path, state.cost, state.remaining
        )

    def bound_children(self, state: _TourState, depth: int) -> np.ndarray:
        return outgoing_edge_bound_children(
            self.instance, state.path, state.cost, state.remaining
        )

    def leaf_cost(self, state: _TourState) -> float:
        return state.cost + int(self.instance.distances[state.path[-1], 0])

    def leaf_solution(self, state: _TourState) -> Tuple[int, ...]:
        return state.path

    def name(self) -> str:
        return f"TSP({self.instance.name})"


def nearest_neighbour_tour(instance: TSPInstance) -> Tuple[List[int], int]:
    """Greedy warm-start tour from city 0: ``(tour, length)``."""
    d = instance.distances
    unvisited = set(range(1, instance.cities))
    tour = [0]
    while unvisited:
        current = tour[-1]
        nxt = min(unvisited, key=lambda c: (int(d[current, c]), c))
        tour.append(nxt)
        unvisited.remove(nxt)
    return tour, instance.tour_length(tour)

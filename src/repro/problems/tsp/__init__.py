"""Symmetric TSP substrate (Table 3's record-run problem class).

Public surface::

    from repro.problems.tsp import TSPInstance, TSPProblem, random_tsp
"""

from repro.problems.tsp.bounds import (
    best_one_tree_bound,
    one_tree_bound,
    one_tree_bound_networkx,
    outgoing_edge_bound,
    outgoing_edge_bound_children,
    outgoing_edge_bound_children_pool,
)
from repro.problems.tsp.instance import TSPInstance, random_tsp
from repro.problems.tsp.pool import TSPNumpyPool
from repro.problems.tsp.problem import TSPProblem, nearest_neighbour_tour

__all__ = [
    "TSPInstance",
    "TSPNumpyPool",
    "TSPProblem",
    "best_one_tree_bound",
    "nearest_neighbour_tour",
    "one_tree_bound",
    "one_tree_bound_networkx",
    "outgoing_edge_bound",
    "outgoing_edge_bound_children",
    "outgoing_edge_bound_children_pool",
    "random_tsp",
]

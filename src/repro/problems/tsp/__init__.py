"""Symmetric TSP substrate (Table 3's record-run problem class).

Public surface::

    from repro.problems.tsp import TSPInstance, TSPProblem, random_tsp
"""

from repro.problems.tsp.bounds import (
    best_one_tree_bound,
    one_tree_bound,
    one_tree_bound_networkx,
    outgoing_edge_bound,
    outgoing_edge_bound_children,
)
from repro.problems.tsp.instance import TSPInstance, random_tsp
from repro.problems.tsp.problem import TSPProblem, nearest_neighbour_tour

__all__ = [
    "TSPInstance",
    "TSPProblem",
    "best_one_tree_bound",
    "nearest_neighbour_tour",
    "one_tree_bound",
    "one_tree_bound_networkx",
    "outgoing_edge_bound",
    "outgoing_edge_bound_children",
    "random_tsp",
]

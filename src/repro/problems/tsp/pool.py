"""TSP pool evaluator, registered with the kernel registry.

One evaluator call bounds the children of a whole pool of same-depth
partial tours via :func:`outgoing_edge_bound_children_pool` — the
(N, r, r+1) leave-one-out scan replacing N separate (r, r+1) scans.
Registered for the ``numpy`` backend at import time (the package
``__init__`` imports this module), which also makes pooling the
default for ``solve(TSPProblem(...))``.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.kernels import register_pool_factory
from repro.problems.tsp.bounds import (
    outgoing_edge_bound_children,
    outgoing_edge_bound_children_pool,
)
from repro.problems.tsp.problem import TSPProblem

__all__ = ["TSPNumpyPool", "register_pool_kernels"]


class TSPNumpyPool:
    """Pooled outgoing-edge child bounds for :class:`TSPProblem`."""

    def __init__(self, problem: TSPProblem):
        self._instance = problem.instance

    def __call__(
        self, states: Sequence[Any], depth: int
    ) -> Optional[np.ndarray]:
        if len(states) == 1:
            # Singleton pools use the 2-D per-family scan directly.
            state = states[0]
            row = outgoing_edge_bound_children(
                self._instance, state.path, state.cost, state.remaining
            )
            return row[np.newaxis]
        lasts = [state.path[-1] for state in states]
        costs = [state.cost for state in states]
        homes = [state.path[0] for state in states]
        remaining = np.array([state.remaining for state in states], dtype=np.intp)
        return outgoing_edge_bound_children_pool(
            self._instance, lasts, costs, homes, remaining
        )


def _numpy_factory(problem: TSPProblem) -> TSPNumpyPool:
    return TSPNumpyPool(problem)


def register_pool_kernels() -> None:
    """Idempotently register the TSP pool factory."""
    register_pool_factory("numpy", TSPProblem, _numpy_factory)


register_pool_kernels()

"""QAP as a permutation-tree :class:`Problem` with the Gilmore–Lawler bound.

Depth ``d`` assigns facility ``d`` to one of the unused locations
(children in ascending location order).  The bound at a node is

    cost(assigned pairs)
  + LAP(c)    — a linear assignment problem over (unassigned facility,
                unused location) pairs, where ``c[i, l]`` combines the
                exact interaction of (i at l) with the already-assigned
                facilities and the Gilmore–Lawler min-product bound on
                its interaction with the other unassigned ones.

The LAP is solved exactly with ``scipy.optimize.linear_sum_assignment``
(Jonker–Volgenant), which keeps the bound both admissible and sharp —
this is the bound family of the Nug30 record run the paper cites.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.problem import Problem
from repro.core.tree import TreeShape
from repro.problems.qap.instance import QAPInstance

__all__ = ["QAPProblem"]


class _QAPState:
    __slots__ = ("assigned", "cost", "free_locations")

    def __init__(
        self,
        assigned: Tuple[int, ...],
        cost: int,
        free_locations: Tuple[int, ...],
    ):
        self.assigned = assigned  # assigned[i] = location of facility i
        self.cost = cost  # interactions among assigned facilities
        self.free_locations = free_locations  # ascending


class QAPProblem(Problem):
    def __init__(self, instance: QAPInstance):
        self.instance = instance
        self._shape = TreeShape.permutation(instance.size)

    def tree_shape(self) -> TreeShape:
        return self._shape

    def root_state(self) -> _QAPState:
        return _QAPState((), 0, tuple(range(self.instance.size)))

    def branch(self, state: _QAPState, depth: int) -> List[_QAPState]:
        f = self.instance.flows
        d = self.instance.distances
        free = state.free_locations
        k = len(state.assigned)
        if k:
            # Interaction of (facility `depth` at each free location)
            # with all assigned facilities, for every child in one
            # matrix-vector product per direction.
            assigned_locs = np.array(state.assigned, dtype=np.intp)
            free_arr = np.array(free, dtype=np.intp)
            d_block = d[np.ix_(free_arr, assigned_locs)].astype(np.int64)
            deltas = d_block @ f[depth, :k] + d[
                np.ix_(assigned_locs, free_arr)
            ].T.astype(np.int64) @ f[:k, depth]
            deltas = deltas.tolist()
        else:
            deltas = [0] * len(free)
        return [
            _QAPState(
                state.assigned + (loc,),
                state.cost + int(deltas[idx]),
                free[:idx] + free[idx + 1 :],
            )
            for idx, loc in enumerate(free)
        ]

    def lower_bound(self, state: _QAPState, depth: int) -> float:
        n = self.instance.size
        k = len(state.assigned)
        if k == n:
            return state.cost
        f = self.instance.flows
        d = self.instance.distances
        unassigned = np.arange(k, n)
        free = np.array(state.free_locations, dtype=np.intp)
        r = unassigned.size

        # Exact interaction of (facility i at location l) with the
        # already-assigned facilities.
        assigned_locs = np.array(state.assigned, dtype=np.intp)
        if k:
            head = np.arange(k)
            # outgoing: sum_fac f[i, fac] * d[l, loc_fac]
            interact = (
                f[np.ix_(unassigned, head)] @ d[np.ix_(free, assigned_locs)].T
            ).astype(np.int64)
            # incoming: sum_fac f[fac, i] * d[loc_fac, l]
            interact += f[np.ix_(head, unassigned)].T @ d[
                np.ix_(assigned_locs, free)
            ]
        else:
            interact = np.zeros((r, r), dtype=np.int64)

        # Gilmore–Lawler term: flows of i to the other unassigned
        # facilities sorted ascending x distances from l to the other
        # free locations sorted descending (min scalar product).  The
        # diagonal-stripped (r, r-1) blocks come from one boolean
        # reshape each, sorted along the last axis in one call.
        off_diag = ~np.eye(r, dtype=bool)
        flows_sorted = np.sort(
            f[np.ix_(unassigned, unassigned)][off_diag].reshape(r, r - 1),
            axis=1,
        ).astype(np.int64)
        dists_sorted = np.sort(
            d[np.ix_(free, free)][off_diag].reshape(r, r - 1), axis=1
        )[:, ::-1].astype(np.int64)
        gl = flows_sorted @ dists_sorted.T

        cost_matrix = interact + gl
        rows, cols = linear_sum_assignment(cost_matrix)
        return state.cost + int(cost_matrix[rows, cols].sum())

    def leaf_cost(self, state: _QAPState) -> float:
        return state.cost

    def leaf_solution(self, state: _QAPState) -> Tuple[int, ...]:
        return state.assigned

    def name(self) -> str:
        return f"QAP({self.instance.name})"

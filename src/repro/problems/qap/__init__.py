"""Quadratic assignment substrate (Table 3's Nug30 problem class).

Public surface::

    from repro.problems.qap import QAPInstance, QAPProblem, random_qap, nugent_like
"""

from repro.problems.qap.instance import QAPInstance, nugent_like, random_qap
from repro.problems.qap.problem import QAPProblem

__all__ = ["QAPInstance", "QAPProblem", "nugent_like", "random_qap"]

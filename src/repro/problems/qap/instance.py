"""Quadratic assignment problem instances.

Table 3 cites Nug30 — the QAP record run of Anstreicher et al. (7
CPU-years on a grid).  The Nugent instances themselves are grid
layouts with integer flows; :func:`nugent_like` builds the same
structure synthetically (rectangular-grid Manhattan distances, random
symmetric flows) so the code path matches without the proprietary-free
but unavailable-offline QAPLIB files (DESIGN.md §2).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ProblemError

__all__ = ["QAPInstance", "random_qap", "nugent_like"]


class QAPInstance:
    """Flows between facilities and distances between locations.

    Cost of an assignment ``perm`` (facility ``i`` at location
    ``perm[i]``) is ``sum_{i,j} flow[i,j] * dist[perm[i], perm[j]]``.
    """

    __slots__ = ("flows", "distances", "name")

    def __init__(
        self,
        flows: Sequence[Sequence[int]],
        distances: Sequence[Sequence[int]],
        name: Optional[str] = None,
    ):
        f = np.asarray(flows, dtype=np.int64)
        d = np.asarray(distances, dtype=np.int64)
        for label, m in (("flows", f), ("distances", d)):
            if m.ndim != 2 or m.shape[0] != m.shape[1]:
                raise ProblemError(f"{label} matrix must be square, got {m.shape}")
            if (m < 0).any():
                raise ProblemError(f"{label} must be non-negative")
        if f.shape != d.shape:
            raise ProblemError(
                f"flows {f.shape} and distances {d.shape} must match"
            )
        f.setflags(write=False)
        d.setflags(write=False)
        self.flows = f
        self.distances = d
        self.name = name or f"qap-{f.shape[0]}"

    @property
    def size(self) -> int:
        return int(self.flows.shape[0])

    def assignment_cost(self, perm: Sequence[int]) -> int:
        if sorted(perm) != list(range(self.size)):
            raise ProblemError(
                f"not a permutation of 0..{self.size - 1}: {list(perm)!r}"
            )
        loc = np.asarray(perm, dtype=np.intp)
        return int((self.flows * self.distances[np.ix_(loc, loc)]).sum())

    def __repr__(self) -> str:
        return f"QAPInstance({self.name!r}, n={self.size})"


def random_qap(size: int, seed: int, high: int = 20) -> QAPInstance:
    """Symmetric random instance (flows and distances U[0, high])."""
    rng = np.random.default_rng(seed)

    def symmetric(hollow: bool) -> np.ndarray:
        m = rng.integers(0, high + 1, size=(size, size), dtype=np.int64)
        m = (m + m.T) // 2
        if hollow:
            np.fill_diagonal(m, 0)
        return m

    return QAPInstance(
        symmetric(hollow=True),
        symmetric(hollow=True),
        name=f"random-qap-{size}-s{seed}",
    )


def nugent_like(rows: int, cols: int, seed: int, max_flow: int = 10) -> QAPInstance:
    """Nugent-style instance: grid locations, Manhattan distances,
    random symmetric integer flows — the Nug30 structure at any size.
    """
    size = rows * cols
    coords = [(r, c) for r in range(rows) for c in range(cols)]
    d = np.empty((size, size), dtype=np.int64)
    for i, (r1, c1) in enumerate(coords):
        for j, (r2, c2) in enumerate(coords):
            d[i, j] = abs(r1 - r2) + abs(c1 - c2)
    rng = np.random.default_rng(seed)
    f = rng.integers(0, max_flow + 1, size=(size, size), dtype=np.int64)
    f = (f + f.T) // 2
    np.fill_diagonal(f, 0)
    return QAPInstance(f, d, name=f"nugent-like-{rows}x{cols}-s{seed}")

"""The NEH constructive heuristic (Nawaz, Enscore & Ham, 1983).

NEH is the standard high-quality initial upper bound for flow-shop
B&B: sort the jobs by decreasing total processing time, then insert
each job at the position of the partial sequence that minimises the
partial makespan.  On Ta001 it yields 1286 against the optimum 1278 —
a value the test suite pins to validate both the heuristic and the
reimplemented Taillard generator.

The paper initialised its Ta056 runs from the best-known metaheuristic
solution (3681); :func:`neh` plays the same role when no external
incumbent is available.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.problems.flowshop.instance import FlowShopInstance

__all__ = ["neh", "insertion_best_position"]


def _sequence_makespan(p: np.ndarray, machines: int, sequence: Sequence[int]) -> int:
    front = np.zeros(machines, dtype=np.int64)
    for job in sequence:
        row = p[job]
        prev = 0
        for j in range(machines):
            f = front[j]
            if prev > f:
                f = prev
            prev = f + row[j]
            front[j] = prev
    return int(front[-1])


def insertion_best_position(
    instance: FlowShopInstance, sequence: List[int], job: int
) -> Tuple[int, int]:
    """Best position to insert ``job`` into ``sequence``.

    Returns ``(position, makespan)``; ties break on the earliest
    position (NEH's convention).  Uses Taillard's acceleration: heads
    of all prefixes and tails of all suffixes are computed once, so the
    whole scan costs ``O(len(sequence) * machines)`` instead of
    ``O(len(sequence)^2 * machines)``.
    """
    p = instance.processing_times
    m = instance.machines
    k = len(sequence)

    # heads[q] = completion front after the first q jobs of `sequence`.
    heads = np.zeros((k + 1, m), dtype=np.int64)
    for q, existing in enumerate(sequence):
        row = p[existing]
        prev = 0
        for j in range(m):
            f = heads[q, j]
            if prev > f:
                f = prev
            prev = f + row[j]
            heads[q + 1, j] = prev

    # tails[q] = backward front of jobs q.. (time from their start on
    # each machine to the end of the schedule).
    tails = np.zeros((k + 1, m), dtype=np.int64)
    for q in range(k - 1, -1, -1):
        row = p[sequence[q]]
        nxt = 0
        for j in range(m - 1, -1, -1):
            t = tails[q + 1, j]
            if nxt > t:
                t = nxt
            nxt = t + row[j]
            tails[q, j] = nxt

    job_row = p[job]
    best_pos = 0
    best_value = None
    for q in range(k + 1):
        # front after inserting `job` at position q
        prev = 0
        value = 0
        for j in range(m):
            f = heads[q, j]
            if prev > f:
                f = prev
            prev = f + job_row[j]
            total = prev + tails[q, j]
            if total > value:
                value = total
        if best_value is None or value < best_value:
            best_value = value
            best_pos = q
    return best_pos, int(best_value)


def neh(instance: FlowShopInstance) -> Tuple[List[int], int]:
    """Run NEH; return ``(permutation, makespan)``.

    Deterministic: the initial order sorts by decreasing job total with
    job index as tie-break.
    """
    totals = instance.job_totals()
    order = sorted(range(instance.jobs), key=lambda i: (-int(totals[i]), i))
    sequence: List[int] = [order[0]]
    value = int(instance.processing_times[order[0]].sum())
    for job in order[1:]:
        pos, value = insertion_best_position(instance, sequence, job)
        sequence.insert(pos, job)
    return sequence, value

"""Makespan evaluation for (partial) permutation schedules.

The makespan recurrence is the classic completion-time sweep: with
``C[i, j]`` the completion of the ``i``-th scheduled job on machine
``j``::

    C[i, j] = max(C[i, j-1], C[i-1, j]) + p[job_i, j]

The per-job update is a length-``M`` scan (inherently sequential in
``j``); the hot paths below keep the data in NumPy arrays and push the
prefix-maximum into C where possible.  Profiling on Taillard-sized
instances shows the bound evaluation — not this sweep — dominates B&B
time, per the optimisation guidance of working on measured bottlenecks.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.exceptions import ProblemError
from repro.problems.flowshop.instance import FlowShopInstance

__all__ = [
    "completion_front",
    "advance_front",
    "advance_fronts_batch",
    "advance_fronts_pool",
    "makespan",
    "partial_makespan",
    "tails_matrix",
]


def advance_front(
    front: np.ndarray, job_times: np.ndarray, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Completion front after appending one job.

    ``front[j]`` is the completion time of the current partial schedule
    on machine ``j``; ``job_times`` is the appended job's row of the
    processing-time matrix.  Returns the new front (a fresh array
    unless ``out`` is given).
    """
    m = front.shape[0]
    if out is None:
        out = np.empty_like(front)
    prev = 0
    for j in range(m):
        f = front[j]
        if prev > f:
            f = prev
        prev = f + job_times[j]
        out[j] = prev
    return out


def advance_fronts_batch(front: np.ndarray, job_times: np.ndarray) -> np.ndarray:
    """Completion fronts after appending each of several jobs in turn.

    The batched kernel behind child decomposition: ``job_times`` is the
    ``(batch, machines)`` stack of processing-time rows of the candidate
    jobs, and row ``c`` of the result is exactly
    ``advance_front(front, job_times[c])``.  The recurrence stays
    sequential in machines (inherent) but vectorises over the batch, so
    branching a node costs ``M`` NumPy ops instead of ``batch * M``
    Python-level steps.
    """
    times = np.atleast_2d(job_times)
    batch, m = times.shape
    out = np.empty((batch, m), dtype=np.int64)
    np.add(front[0], times[:, 0], out=out[:, 0])
    for j in range(1, m):
        np.maximum(out[:, j - 1], front[j], out=out[:, j])
        out[:, j] += times[:, j]
    return out


def advance_fronts_pool(fronts: np.ndarray, job_times: np.ndarray) -> np.ndarray:
    """Child completion fronts for a whole pool of parents at once.

    The pool-kernel form of :func:`advance_fronts_batch`: ``fronts`` is
    the ``(N, M)`` stack of N parent fronts and ``job_times`` the
    ``(N, r, M)`` processing-time rows of each parent's r candidate
    jobs; slice ``[n]`` of the result equals
    ``advance_fronts_batch(fronts[n], job_times[n])`` exactly (same
    int64 recurrence, still sequential in machines, vectorised over
    pool x batch).
    """
    n_pool, batch, m = job_times.shape
    out = np.empty((n_pool, batch, m), dtype=np.int64)
    np.add(fronts[:, 0:1], job_times[:, :, 0], out=out[:, :, 0])
    for j in range(1, m):
        np.maximum(out[:, :, j - 1], fronts[:, j : j + 1], out=out[:, :, j])
        out[:, :, j] += job_times[:, :, j]
    return out


def completion_front(
    instance: FlowShopInstance, sequence: Sequence[int]
) -> np.ndarray:
    """Completion front of a (possibly partial) job sequence."""
    p = instance.processing_times
    front = np.zeros(instance.machines, dtype=np.int64)
    for job in sequence:
        advance_front(front, p[job], out=front)
    return front


def makespan(instance: FlowShopInstance, permutation: Sequence[int]) -> int:
    """Cmax of a complete permutation (eq. 15).

    Raises when ``permutation`` is not a permutation of all jobs —
    silent acceptance of partial schedules here has historically hidden
    bugs, so completeness is enforced; use :func:`partial_makespan` for
    prefixes.
    """
    if sorted(permutation) != list(range(instance.jobs)):
        raise ProblemError(
            f"not a permutation of 0..{instance.jobs - 1}: {list(permutation)!r}"
        )
    return int(completion_front(instance, permutation)[-1])


def partial_makespan(instance: FlowShopInstance, sequence: Sequence[int]) -> int:
    """Completion time on the last machine of a partial sequence."""
    if len(set(sequence)) != len(sequence):
        raise ProblemError(f"sequence repeats a job: {list(sequence)!r}")
    if not sequence:
        return 0
    return int(completion_front(instance, sequence)[-1])


def tails_matrix(instance: FlowShopInstance) -> np.ndarray:
    """``tail[i, j]`` = minimum time job ``i`` needs after finishing
    machine ``j`` (sum of its times on machines ``j+1 .. M-1``).

    A classic ingredient of the one-machine lower bound: after the
    bottleneck machine ``j`` completes, at least ``min_i tail[i, j]``
    time remains before the last machine can finish.
    """
    p = instance.processing_times
    tails = np.zeros_like(p)
    if instance.machines > 1:
        tails[:, :-1] = np.cumsum(p[:, :0:-1], axis=1)[:, ::-1]
    return tails

"""Batched makespan evaluation — the vectorised kernel for heuristics.

Metaheuristics (Iterated Greedy, genetic operators, local search)
evaluate many permutations of the *same* instance; doing so one Python
loop at a time wastes the NumPy layout.  ``makespans_batch`` sweeps a
whole batch through the completion-time recurrence with vectorised
per-machine updates: the inner loops run over machines and positions
(small), the batch dimension stays in C.

Profiling note (per the HPC guide's "measure first"): for single
permutations the plain sweep wins — this kernel pays off from batch
sizes of a few dozen, reaching ~n_batch× fewer Python-level iterations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ProblemError
from repro.problems.flowshop.instance import FlowShopInstance

__all__ = ["makespans_batch", "random_permutations"]


def makespans_batch(
    instance: FlowShopInstance, permutations: Sequence[Sequence[int]]
) -> np.ndarray:
    """Makespans of many complete permutations, vectorised over the batch.

    Parameters
    ----------
    permutations:
        Array-like of shape ``(batch, jobs)``; every row must be a
        permutation of ``0..jobs-1`` (validated).

    Returns
    -------
    ``int64`` array of shape ``(batch,)``.
    """
    perms = np.asarray(permutations, dtype=np.intp)
    if perms.ndim != 2 or perms.shape[1] != instance.jobs:
        raise ProblemError(
            f"expected shape (batch, {instance.jobs}), got {perms.shape}"
        )
    sorted_rows = np.sort(perms, axis=1)
    if not (sorted_rows == np.arange(instance.jobs)).all():
        raise ProblemError("every row must be a permutation of all jobs")

    p = instance.processing_times  # (jobs, machines)
    batch = perms.shape[0]
    machines = instance.machines
    # times[b, pos, m] = processing time of the pos-th job of batch b
    times = p[perms]  # (batch, jobs, machines)
    front = np.zeros((batch, machines), dtype=np.int64)
    for pos in range(instance.jobs):
        row = times[:, pos, :]  # (batch, machines)
        # sequential in machines, vectorised over the batch
        front[:, 0] += row[:, 0]
        for m in range(1, machines):
            np.maximum(front[:, m], front[:, m - 1], out=front[:, m])
            front[:, m] += row[:, m]
    return front[:, -1].copy()


def random_permutations(
    jobs: int, batch: int, seed: int
) -> np.ndarray:
    """A deterministic batch of random permutations (test/bench helper)."""
    rng = np.random.default_rng(seed)
    return np.argsort(rng.random((batch, jobs)), axis=1).astype(np.intp)

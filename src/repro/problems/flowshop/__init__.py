"""Permutation flow-shop substrate (the paper's evaluation problem).

Public surface::

    from repro.problems.flowshop import (
        FlowShopInstance, FlowShopProblem, random_instance,
        taillard_instance, makespan, neh, johnson_order,
        one_machine_bound, two_machine_bound,
    )
"""

from repro.problems.flowshop.batch import makespans_batch, random_permutations
from repro.problems.flowshop.bounds import (
    BoundData,
    BoundDataCache,
    bound_data_for,
    clear_bound_data_cache,
    machine_pairs,
    one_machine_bound,
    two_machine_bound,
)
from repro.problems.flowshop.instance import FlowShopInstance, random_instance
from repro.problems.flowshop.io import (
    InstanceMetadata,
    read_instance,
    write_instance,
)
from repro.problems.flowshop.iterated_greedy import IGResult, iterated_greedy
from repro.problems.flowshop.johnson import (
    johnson_makespan,
    johnson_order,
    two_machine_makespan,
)
from repro.problems.flowshop.makespan import (
    advance_fronts_batch,
    advance_fronts_pool,
    completion_front,
    makespan,
    partial_makespan,
    tails_matrix,
)
from repro.problems.flowshop.neh import insertion_best_position, neh
from repro.problems.flowshop.pool import (
    FlowShopNumbaPool,
    FlowShopNumpyPool,
    register_pool_kernels,
)
from repro.problems.flowshop.problem import FlowShopProblem, FlowShopState
from repro.problems.flowshop.reference import (
    KNOWN_OPTIMA,
    known_optimum,
    optimality_gap,
)
from repro.problems.flowshop.taillard import (
    TIME_SEEDS,
    TaillardRNG,
    instance_classes,
    taillard_instance,
    taillard_matrix,
)

__all__ = [
    "BoundData",
    "BoundDataCache",
    "FlowShopInstance",
    "FlowShopNumbaPool",
    "FlowShopNumpyPool",
    "advance_fronts_batch",
    "advance_fronts_pool",
    "bound_data_for",
    "clear_bound_data_cache",
    "register_pool_kernels",
    "FlowShopProblem",
    "FlowShopState",
    "IGResult",
    "InstanceMetadata",
    "KNOWN_OPTIMA",
    "TIME_SEEDS",
    "TaillardRNG",
    "completion_front",
    "insertion_best_position",
    "instance_classes",
    "iterated_greedy",
    "johnson_makespan",
    "johnson_order",
    "known_optimum",
    "machine_pairs",
    "makespan",
    "makespans_batch",
    "neh",
    "one_machine_bound",
    "optimality_gap",
    "partial_makespan",
    "random_instance",
    "random_permutations",
    "read_instance",
    "taillard_instance",
    "taillard_matrix",
    "tails_matrix",
    "two_machine_bound",
    "two_machine_makespan",
    "write_instance",
]

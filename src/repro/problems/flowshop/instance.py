"""Permutation flow-shop instances (paper §5.1).

An instance is ``N`` jobs to be processed on ``M`` machines in machine
order ``m1 .. mM``; job ``i`` needs ``p[i, j]`` time units on machine
``j``; jobs pass the machines in the same order and each machine serves
one job at a time.  The objective is the makespan ``Cmax`` (eq. 15).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ProblemError

__all__ = ["FlowShopInstance", "random_instance"]


class FlowShopInstance:
    """Immutable processing-time matrix plus identity metadata.

    Parameters
    ----------
    processing_times:
        Array-like of shape ``(jobs, machines)`` with positive times.
    name:
        Optional label ("Ta056", "random-7x4-s1", ...).
    """

    __slots__ = ("processing_times", "name")

    def __init__(
        self,
        processing_times: Sequence[Sequence[int]],
        name: Optional[str] = None,
    ):
        p = np.asarray(processing_times, dtype=np.int64)
        if p.ndim != 2:
            raise ProblemError(
                f"processing times must be a 2-D (jobs x machines) array, "
                f"got shape {p.shape}"
            )
        if p.shape[0] < 1 or p.shape[1] < 1:
            raise ProblemError(f"instance needs >=1 job and machine, got {p.shape}")
        if (p < 0).any():
            raise ProblemError("processing times must be non-negative")
        p.setflags(write=False)
        self.processing_times = p
        self.name = name or f"flowshop-{p.shape[0]}x{p.shape[1]}"

    @property
    def jobs(self) -> int:
        return int(self.processing_times.shape[0])

    @property
    def machines(self) -> int:
        return int(self.processing_times.shape[1])

    def job_totals(self) -> np.ndarray:
        """Total processing time per job (NEH's sorting key)."""
        return self.processing_times.sum(axis=1)

    def machine_totals(self) -> np.ndarray:
        """Total load per machine (used by trivial lower bounds)."""
        return self.processing_times.sum(axis=0)

    def trivial_lower_bound(self) -> int:
        """max over machines of (min head + load + min tail).

        A valid makespan lower bound needing no search at all; used to
        sanity-check the real bounds and to seed progress reports.
        """
        p = self.processing_times
        heads = np.concatenate(
            [np.zeros((self.jobs, 1), dtype=np.int64), np.cumsum(p, axis=1)[:, :-1]],
            axis=1,
        )
        tails = np.concatenate(
            [
                np.cumsum(p[:, ::-1], axis=1)[:, -2::-1],
                np.zeros((self.jobs, 1), dtype=np.int64),
            ],
            axis=1,
        )
        per_machine = heads.min(axis=0) + p.sum(axis=0) + tails.min(axis=0)
        lb_machines = int(per_machine.max())
        lb_jobs = int(p.sum(axis=1).max())
        return max(lb_machines, lb_jobs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowShopInstance):
            return NotImplemented
        return np.array_equal(self.processing_times, other.processing_times)

    def __hash__(self) -> int:
        return hash((self.jobs, self.machines, self.processing_times.tobytes()))

    def __repr__(self) -> str:
        return f"FlowShopInstance({self.name!r}, {self.jobs}x{self.machines})"


def random_instance(
    jobs: int, machines: int, seed: int, low: int = 1, high: int = 99
) -> FlowShopInstance:
    """Uniform random instance in Taillard's distribution ``U[1, 99]``.

    Deterministic in ``seed`` (NumPy PCG64); useful for tests and for
    scaled-down benchmark instances that keep the paper's statistics.
    """
    rng = np.random.default_rng(seed)
    p = rng.integers(low, high + 1, size=(jobs, machines), dtype=np.int64)
    return FlowShopInstance(p, name=f"random-{jobs}x{machines}-s{seed}")

"""Loop-level LB1 / LB2 pool kernels for the numba backend.

The numpy pool kernels (:mod:`repro.problems.flowshop.bounds`) pay a
few dozen array ops per pool call; a JIT turns the same arithmetic
into two fused loop nests with zero temporaries — the shape the GPU
flow-shop B&B line runs per thread.  The kernels here are written as
*plain Python* loop functions over int64 ndarrays:

* they are import-safe and testable everywhere (the property suite
  exercises them against the scalar oracle even when numba is absent,
  so a broken loop cannot hide behind a missing dependency);
* :func:`jit_kernels` wraps them with ``numba.njit`` on first use —
  the only place numba is touched, lazily, inside a function (rule
  RC09).  When numba is missing it raises ``RuntimeError`` and the
  numba backend degrades to numpy with a one-time warning.

Bit-identity: every statement is int64 add/max/min — associative and
exact — and tie-breaking (first argmin) matches the numpy kernels, so
the loop results equal the vectorised and scalar bounds bit for bit.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional

import numpy as np

__all__ = ["jit_kernels", "lb1_pool", "lb2_pool"]

# Same +/- "infinity" sentinels as bounds.py: far above any schedule
# length, far enough from int64 limits that one more add cannot wrap.
INT_MAX = 2**62
INT_MIN = -(2**62)


def lb1_pool(
    fronts: np.ndarray,
    p_rem: np.ndarray,
    tails_rem: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """One-machine bound of every child of every pooled parent.

    ``fronts`` (N, r, M) child completion fronts, ``p_rem`` /
    ``tails_rem`` (N, r, M) processing-time and tail rows of each
    parent's remaining jobs; ``out`` (N, r) receives the bounds.
    Child c of parent n removes row c from its remaining set: rows
    evolve independently through the head recurrence, so excluding
    ``i == c`` at the min/sum/load reductions equals excluding it from
    the start.
    """
    n_pool, r, m = p_rem.shape
    if r == 1:
        for n in range(n_pool):
            out[n, 0] = fronts[n, 0, m - 1]
        return out
    comp = np.empty(r, np.int64)
    for n in range(n_pool):
        for c in range(r):
            best = INT_MIN
            fc0 = fronts[n, c, 0]
            load = 0
            mtail = INT_MAX
            for i in range(r):
                comp[i] = fc0 + p_rem[n, i, 0]
                if i != c:
                    load += p_rem[n, i, 0]
                    t = tails_rem[n, i, 0]
                    if t < mtail:
                        mtail = t
            val = fc0 + load + mtail
            if val > best:
                best = val
            for j in range(1, m):
                cmin = INT_MAX
                for i in range(r):
                    if i != c and comp[i] < cmin:
                        cmin = comp[i]
                fj = fronts[n, c, j]
                avail = fj if fj > cmin else cmin
                load = 0
                mtail = INT_MAX
                for i in range(r):
                    if i != c:
                        load += p_rem[n, i, j]
                        t = tails_rem[n, i, j]
                        if t < mtail:
                            mtail = t
                val = avail + load + mtail
                if val > best:
                    best = val
                if j < m - 1:
                    for i in range(r):
                        ci = comp[i]
                        if ci < fj:
                            ci = fj
                        comp[i] = ci + p_rem[n, i, j]
            out[n, c] = best
    return out


def lb2_pool(
    fronts: np.ndarray,
    remaining: np.ndarray,
    order_all: np.ndarray,
    a_all: np.ndarray,
    b_all: np.ndarray,
    lag_all: np.ndarray,
    j_idx: np.ndarray,
    k_idx: np.ndarray,
    tails_rem: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Two-machine (Johnson-with-lags) bound over the pool.

    Per (parent, pair): replay the induced Johnson suborder once,
    build prefix/suffix maxima of the F2 critical terms
    ``V_t = A_t + lag_t + Bsuf_t``, then each child's "replay minus
    its own job" is the O(1) left/right combination — the loop-nest
    twin of ``BoundData._lb2_children_pool``.  Requires ``r >= 2`` and
    at least one pair (the evaluator guards both).
    """
    n_pool, r, _m = fronts.shape
    npairs, n_jobs = order_all.shape
    seq = np.empty(r, np.int64)
    v = np.empty(r, np.int64)
    pmax = np.empty(r + 1, np.int64)
    smax = np.empty(r + 1, np.int64)
    qpos = np.empty(n_jobs, np.int64)
    mask = np.zeros(n_jobs, np.bool_)
    for n in range(n_pool):
        for c in range(r):
            out[n, c] = INT_MIN
        for t in range(r):
            mask[remaining[n, t]] = True
        for p in range(npairs):
            j = j_idx[p]
            k = k_idx[p]
            cnt = 0
            for t in range(n_jobs):
                job = order_all[p, t]
                if mask[job]:
                    seq[cnt] = job
                    cnt += 1
            acc = 0
            for t in range(r):
                acc += a_all[p, seq[t]]
                v[t] = acc  # prefix_a so far
            accb = 0
            for t in range(r - 1, -1, -1):
                job = seq[t]
                accb += b_all[p, job]
                v[t] += lag_all[p, job] + accb
                qpos[job] = t
            sum_b = accb
            pm = INT_MIN
            for t in range(r):
                pmax[t] = pm  # max of v[0 .. t-1]
                if v[t] > pm:
                    pm = v[t]
            sm = INT_MIN
            for t in range(r - 1, -1, -1):
                smax[t + 1] = sm  # max of v[t+1 .. r-1]
                if v[t] > sm:
                    sm = v[t]
            am = 0
            min1 = INT_MAX
            for i in range(r):
                ti = tails_rem[n, i, k]
                if ti < min1:
                    min1 = ti
                    am = i
            min2 = INT_MAX
            for i in range(r):
                if i != am:
                    ti = tails_rem[n, i, k]
                    if ti < min2:
                        min2 = ti
            for c in range(r):
                job = remaining[n, c]
                q = qpos[job]
                aq = a_all[p, job]
                bq = b_all[p, job]
                left = pmax[q] - bq
                right = smax[q + 1] - aq
                crit = left if left > right else right
                crit += fronts[n, c, j]
                c2 = sum_b - bq + fronts[n, c, k]
                if crit > c2:
                    c2 = crit
                c2 += min2 if c == am else min1
                if c2 > out[n, c]:
                    out[n, c] = c2
        for t in range(r):
            mask[remaining[n, t]] = False
    return out


class PoolKernels(NamedTuple):
    """The (possibly JIT-compiled) kernel pair the evaluator calls."""

    lb1: Any
    lb2: Any


_JITTED: Optional[PoolKernels] = None


def jit_kernels() -> PoolKernels:
    """The ``numba.njit``-compiled kernels, compiled once per process.

    Raises ``RuntimeError`` when numba is not importable — the numba
    backend catches this and falls back to the numpy pool kernels.
    """
    global _JITTED
    if _JITTED is None:
        try:
            from numba import njit  # lazy: numba is an optional accelerator
        except ImportError as exc:
            raise RuntimeError(
                "numba is not installed; the numba kernel backend is unavailable"
            ) from exc
        _JITTED = PoolKernels(
            lb1=njit(cache=False)(lb1_pool),
            lb2=njit(cache=False)(lb2_pool),
        )
    return _JITTED

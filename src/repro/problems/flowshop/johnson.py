"""Johnson's algorithm for the two-machine flow shop (F2 || Cmax).

Johnson (1954): an optimal permutation schedules first, by increasing
``a``, the jobs with ``a <= b``; then, by decreasing ``b``, the rest.
This is both a substrate in its own right (the only polynomially
solvable flow shop) and the engine of the two-machine lower bound
(`repro.problems.flowshop.bounds.two_machine_bound`), where machine
pairs ``(j, k)`` with inter-machine *lags* are relaxed to F2 problems.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["johnson_order", "two_machine_makespan", "johnson_makespan"]


def johnson_order(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Optimal F2 job order for times ``a`` (machine 1), ``b`` (machine 2).

    Ties break on job index so the order is deterministic.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"mismatched time vectors: {a.shape} vs {b.shape}")
    jobs = range(len(a))
    first = sorted((i for i in jobs if a[i] <= b[i]), key=lambda i: (a[i], i))
    second = sorted((i for i in jobs if a[i] > b[i]), key=lambda i: (-b[i], i))
    return first + second


def two_machine_makespan(
    a: Sequence[int],
    b: Sequence[int],
    order: Sequence[int],
    lags: Optional[Sequence[int]] = None,
) -> int:
    """Makespan of ``order`` on two machines, with optional per-job lags.

    A lag ``l_i`` forces job ``i`` to wait at least ``l_i`` between
    finishing machine 1 and starting machine 2 — how machine pairs of a
    wider flow shop relax to F2 (the machines in between become lags).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    c1 = 0
    c2 = 0
    for i in order:
        c1 += int(a[i])
        earliest = c1 + (int(lags[i]) if lags is not None else 0)
        c2 = max(c2, earliest) + int(b[i])
    return c2


def johnson_makespan(
    a: Sequence[int],
    b: Sequence[int],
    lags: Optional[Sequence[int]] = None,
) -> Tuple[int, List[int]]:
    """Optimal-order makespan for an F2 (with lags, heuristic order).

    Without lags the returned value is the exact F2 optimum (Johnson's
    theorem).  With lags, ordering by Johnson's rule on
    ``(a + lag, lag + b)`` is the classic relaxation used by the
    two-machine flow-shop bound: the resulting value is a valid lower
    bound ingredient (any single sequencing of the relaxed problem is).

    Returns ``(makespan, order)``.
    """
    if lags is None:
        order = johnson_order(a, b)
        return two_machine_makespan(a, b, order), order
    a_arr = np.asarray(a)
    b_arr = np.asarray(b)
    lag_arr = np.asarray(lags)
    order = johnson_order(a_arr + lag_arr, lag_arr + b_arr)
    return two_machine_makespan(a, b, order, lags), order

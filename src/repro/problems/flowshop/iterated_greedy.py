"""Iterated Greedy for the permutation flow shop (Ruiz & Stützle).

The paper's reference [9]: the best-known Ta056 cost (3681) that seeded
the first grid run came from this metaheuristic.  The algorithm is
deliberately simple:

1. start from NEH;
2. *destruct*: remove ``d`` random jobs;
3. *construct*: reinsert each at its best position (NEH insertion);
4. accept the result if better, or with a simulated-annealing-style
   probability at constant temperature
   ``T = t * sum(p) / (10 * n * m)`` (the paper's recommended form);
5. repeat for a budget of iterations.

This gives the library the full pipeline the authors ran: metaheuristic
upper bound -> grid B&B proof.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ProblemError
from repro.problems.flowshop.instance import FlowShopInstance
from repro.problems.flowshop.makespan import makespan
from repro.problems.flowshop.neh import insertion_best_position, neh

__all__ = ["IGResult", "iterated_greedy"]


@dataclass
class IGResult:
    """Outcome of an Iterated Greedy run."""

    sequence: List[int]
    cost: int
    iterations: int
    improvements: int
    accepted_worse: int
    initial_cost: int


def _construct(instance: FlowShopInstance, partial: List[int], removed: List[int]) -> Tuple[List[int], int]:
    sequence = list(partial)
    value = -1
    for job in removed:
        pos, value = insertion_best_position(instance, sequence, job)
        sequence.insert(pos, job)
    if value < 0:  # nothing was removed
        value = makespan(instance, sequence)
    return sequence, value


def iterated_greedy(
    instance: FlowShopInstance,
    iterations: int = 200,
    destruction: int = 4,
    temperature_factor: float = 0.4,
    seed: int = 0,
    initial: Optional[List[int]] = None,
) -> IGResult:
    """Run Iterated Greedy; returns the best schedule found.

    Parameters
    ----------
    iterations:
        Destruction/construction cycles (the real runs in [9] use time
        budgets; a count keeps tests deterministic).
    destruction:
        ``d``, the number of jobs removed per cycle (classically 4).
    temperature_factor:
        ``t`` in the constant-temperature acceptance criterion.
    initial:
        Starting sequence; defaults to NEH.
    """
    if iterations < 0:
        raise ProblemError("iterations must be >= 0")
    if not 0 < destruction <= instance.jobs:
        raise ProblemError(
            f"destruction size must be in 1..{instance.jobs}, got {destruction}"
        )
    rng = np.random.default_rng(seed)

    if initial is None:
        current, current_cost = neh(instance)
    else:
        current = list(initial)
        current_cost = makespan(instance, current)
    initial_cost = current_cost
    best, best_cost = list(current), current_cost

    temperature = (
        temperature_factor
        * float(instance.processing_times.sum())
        / (10.0 * instance.jobs * instance.machines)
    )

    improvements = 0
    accepted_worse = 0
    for _ in range(iterations):
        # destruction: remove d distinct random jobs, preserving order
        removed_idx = rng.choice(instance.jobs, size=destruction, replace=False)
        removed_set = set(int(i) for i in removed_idx)
        partial = [j for j in current if j not in removed_set]
        removed = [j for j in current if j in removed_set]
        rng.shuffle(removed)

        candidate, candidate_cost = _construct(instance, partial, removed)

        if candidate_cost < current_cost:
            current, current_cost = candidate, candidate_cost
            if candidate_cost < best_cost:
                best, best_cost = list(candidate), candidate_cost
                improvements += 1
        elif temperature > 0 and rng.random() < math.exp(
            (current_cost - candidate_cost) / temperature
        ):
            current, current_cost = candidate, candidate_cost
            accepted_worse += 1

    return IGResult(
        sequence=best,
        cost=int(best_cost),
        iterations=iterations,
        improvements=improvements,
        accepted_worse=accepted_worse,
        initial_cost=int(initial_cost),
    )

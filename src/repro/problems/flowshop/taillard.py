"""Taillard's 1993 benchmark instance generator, reimplemented.

E. Taillard, "Benchmarks for basic scheduling problems", EJOR 64
(1993) 278–285, defines the flow-shop benchmark suite the paper solves
(Ta056 = the 6th 50-job/20-machine instance).  The instances are not
data files but *seeds*: a portable linear congruential generator
(a = 16807, m = 2**31 - 1, Bratley–Fox–Schrage implementation) expands
one published "time seed" per instance into the processing-time matrix,
machine by machine, uniformly on [1, 99].

This module reproduces that generator bit-for-bit, so
``taillard_instance(50, 20, 6)`` *is* Ta056 — validated in the test
suite by evaluating the optimal schedule printed in the paper (§5.3),
which must have makespan exactly 3679.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import ProblemError
from repro.problems.flowshop.instance import FlowShopInstance

__all__ = [
    "TaillardRNG",
    "taillard_instance",
    "taillard_matrix",
    "TIME_SEEDS",
    "instance_classes",
]


class TaillardRNG:
    """Taillard's portable uniform generator (Bratley, Fox & Schrage).

    ``next_int(low, high)`` returns integers uniform on
    ``[low, high]``; the internal state follows
    ``seed = 16807 * seed mod (2**31 - 1)`` computed without overflow
    via Schrage's decomposition (m = a*b + c with b = 127773, c = 2836).
    """

    M = 2147483647
    A = 16807
    B = 127773
    C = 2836

    def __init__(self, seed: int):
        if not 0 < seed < self.M:
            raise ProblemError(f"Taillard seed must be in (0, 2**31-1), got {seed}")
        self.seed = seed

    def next_float(self) -> float:
        """Next uniform value in (0, 1)."""
        k = self.seed // self.B
        self.seed = self.A * (self.seed % self.B) - k * self.C
        if self.seed < 0:
            self.seed += self.M
        return self.seed / self.M

    def next_int(self, low: int, high: int) -> int:
        """Next uniform integer in ``[low, high]`` (Taillard's unif)."""
        return low + int(self.next_float() * (high - low + 1))


# Published time seeds (Taillard 1993, table of flow-shop instances).
# Key: (jobs, machines) -> the ten seeds of Ta<k>..Ta<k+9>.
TIME_SEEDS: Dict[Tuple[int, int], List[int]] = {
    (20, 5): [
        873654221, 379008056, 1866992158, 216771124, 495070989,
        402959317, 1369363414, 2021925980, 573109518, 88325120,
    ],
    (20, 10): [
        587595453, 1401007982, 873136276, 268827376, 1634173168,
        691823909, 73807235, 1273398721, 2065119309, 1672900551,
    ],
    (20, 20): [
        479340445, 268827376, 1958948863, 918272953, 555010963,
        2010851491, 1519833303, 1748670931, 1923497586, 1829909967,
    ],
    (50, 5): [
        1328042058, 200382020, 496319842, 1203030903, 1730708564,
        450926852, 1303135678, 1273398721, 587288402, 248421594,
    ],
    (50, 10): [
        1958948863, 575633267, 655816003, 1977864101, 93805469,
        1803345551, 49612559, 1899802599, 2013025619, 578962478,
    ],
    (50, 20): [
        1539989115, 691823909, 655816003, 1315102446, 1949668355,
        1923497586, 1805594913, 1861070898, 715643788, 464843328,
    ],
    (100, 5): [
        896678084, 1179439976, 1122278347, 416756875, 267829958,
        1835213917, 1328833962, 1418570761, 161033112, 304212574,
    ],
    (100, 10): [
        1539989115, 655816003, 960914243, 1915696806, 2013025619,
        1168140026, 1923497586, 167698528, 1528387973, 993794175,
    ],
    (100, 20): [
        450926852, 1462772409, 1021685265, 83696007, 508154254,
        1861070898, 26482542, 444956424, 2115448041, 118254244,
    ],
    (200, 10): [
        471503978, 1215892992, 135346136, 1602504050, 160037322,
        551454346, 519485142, 383947510, 1968171878, 540872513,
    ],
    (200, 20): [
        2013025619, 475051709, 914834335, 810642687, 1019331795,
        2056065863, 1342855162, 1325809384, 1988803007, 765656702,
    ],
    (500, 20): [
        1368624604, 450181436, 1927888393, 1759567256, 606425239,
        19268348, 1298201670, 2041736264, 379756761, 28837162,
    ],
}

# First Taillard index of each (jobs, machines) class: Ta001 is 20x5 #1.
_CLASS_ORDER: List[Tuple[int, int]] = [
    (20, 5), (20, 10), (20, 20),
    (50, 5), (50, 10), (50, 20),
    (100, 5), (100, 10), (100, 20),
    (200, 10), (200, 20),
    (500, 20),
]


def instance_classes() -> List[Tuple[int, int]]:
    """The twelve (jobs, machines) classes of the Taillard suite."""
    return list(_CLASS_ORDER)


def _ta_number(jobs: int, machines: int, index: int) -> int:
    base = _CLASS_ORDER.index((jobs, machines)) * 10
    return base + index


def taillard_matrix(jobs: int, machines: int, time_seed: int) -> np.ndarray:
    """Expand a time seed into the processing-time matrix.

    Taillard's generator fills the matrix *machine-major*: for each
    machine, the times of all jobs are drawn in job order, uniform on
    [1, 99].  Returned shape is ``(jobs, machines)`` to match
    :class:`FlowShopInstance`.
    """
    rng = TaillardRNG(time_seed)
    p = np.empty((jobs, machines), dtype=np.int64)
    for j in range(machines):
        for i in range(jobs):
            p[i, j] = rng.next_int(1, 99)
    return p


def taillard_instance(
    jobs: int, machines: int, index: int
) -> FlowShopInstance:
    """The Taillard benchmark instance ``index`` (1-based) of a class.

    ``taillard_instance(50, 20, 6)`` is the paper's Ta056.  Raises for
    unknown classes or indices outside 1..10.
    """
    key = (jobs, machines)
    if key not in TIME_SEEDS:
        raise ProblemError(
            f"no Taillard class {jobs}x{machines}; known: {sorted(TIME_SEEDS)}"
        )
    if not 1 <= index <= 10:
        raise ProblemError(f"Taillard instance index must be 1..10, got {index}")
    seed = TIME_SEEDS[key][index - 1]
    number = _ta_number(jobs, machines, index)
    return FlowShopInstance(
        taillard_matrix(jobs, machines, seed),
        name=f"Ta{number:03d}",
    )

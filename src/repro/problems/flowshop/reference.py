"""Literature reference values for Taillard flow-shop instances.

Only values with offline-verifiable anchors or long-settled literature
status are recorded:

* the 20×5 class (Ta001–Ta010) was solved exactly decades ago — the
  optima below are the established values (Taillard's tables);
* Ta056's optimum 3679 is the paper's own headline result.

These are *reference* data for gap reporting; the library never
assumes them when proving optimality.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["KNOWN_OPTIMA", "known_optimum", "optimality_gap"]

# (jobs, machines, index 1..10) -> optimal makespan
KNOWN_OPTIMA: Dict[Tuple[int, int, int], int] = {
    # Ta001..Ta010 — 20 jobs x 5 machines, all solved exactly
    (20, 5, 1): 1278,
    (20, 5, 2): 1359,
    (20, 5, 3): 1081,
    (20, 5, 4): 1293,
    (20, 5, 5): 1235,
    (20, 5, 6): 1195,
    (20, 5, 7): 1234,
    (20, 5, 8): 1206,
    (20, 5, 9): 1230,
    (20, 5, 10): 1108,
    # Ta056 — the paper's result (50 jobs x 20 machines, #6)
    (50, 20, 6): 3679,
}


def known_optimum(jobs: int, machines: int, index: int) -> Optional[int]:
    """The literature optimum for a Taillard instance, if recorded."""
    return KNOWN_OPTIMA.get((jobs, machines, index))


def optimality_gap(value: float, jobs: int, machines: int, index: int) -> Optional[float]:
    """Relative gap of ``value`` to the known optimum (None if unknown).

    Negative gaps mean ``value`` beats the recorded optimum — either a
    new record or (far more likely) a wrong instance; callers should
    treat that as a red flag.
    """
    optimum = known_optimum(jobs, machines, index)
    if optimum is None:
        return None
    return (value - optimum) / optimum

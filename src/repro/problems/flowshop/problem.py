"""The permutation flow shop as a :class:`~repro.core.problem.Problem`.

The search tree is the permutation tree of the jobs (paper §3, eq. 3):
depth ``d`` fixes the job in position ``d``, children append each
not-yet-scheduled job in ascending job-id order (the deterministic rank
order the interval numbering requires).

A state carries the scheduled prefix, the completion front on every
machine, and the remaining job ids — enough for O(M) incremental
branching and for the bounds without touching the prefix again.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import Problem
from repro.core.tree import TreeShape
from repro.exceptions import ProblemError
from repro.problems.flowshop.bounds import BoundData
from repro.problems.flowshop.instance import FlowShopInstance
from repro.problems.flowshop.makespan import advance_front

__all__ = ["FlowShopProblem", "FlowShopState"]


class FlowShopState:
    """A node of the flow-shop permutation tree."""

    __slots__ = ("scheduled", "front", "remaining")

    def __init__(
        self,
        scheduled: Tuple[int, ...],
        front: np.ndarray,
        remaining: np.ndarray,
    ):
        self.scheduled = scheduled
        self.front = front
        self.remaining = remaining

    def __repr__(self) -> str:
        return (
            f"FlowShopState(scheduled={list(self.scheduled)!r}, "
            f"Cmax so far={int(self.front[-1])})"
        )


class FlowShopProblem(Problem):
    """Minimise the makespan of a permutation flow shop.

    Parameters
    ----------
    instance:
        The :class:`FlowShopInstance` to solve.
    bound:
        ``"lb1"`` (one-machine), ``"lb2"`` (two-machine Johnson) or
        ``"combined"`` (max of both, the default).
    pair_strategy:
        Machine-pair selection for LB2 (see
        :func:`repro.problems.flowshop.bounds.machine_pairs`).
    """

    def __init__(
        self,
        instance: FlowShopInstance,
        bound: str = "combined",
        pair_strategy: str = "adjacent+ends",
    ):
        if bound not in ("lb1", "lb2", "combined"):
            raise ProblemError(
                f"unknown bound {bound!r}; use 'lb1', 'lb2' or 'combined'"
            )
        self.instance = instance
        self.bound = bound
        self.bound_data = BoundData(instance, pair_strategy)
        self._shape = TreeShape.permutation(instance.jobs)
        self._bound_fn = {
            "lb1": self.bound_data.one_machine,
            "lb2": self.bound_data.two_machine,
            "combined": self.bound_data.combined,
        }[bound]

    # ------------------------------------------------------------------
    # Problem interface
    # ------------------------------------------------------------------
    def tree_shape(self) -> TreeShape:
        return self._shape

    def root_state(self) -> FlowShopState:
        return FlowShopState(
            scheduled=(),
            front=np.zeros(self.instance.machines, dtype=np.int64),
            remaining=np.arange(self.instance.jobs, dtype=np.intp),
        )

    def branch(self, state: FlowShopState, depth: int) -> List[FlowShopState]:
        p = self.instance.processing_times
        children = []
        remaining = state.remaining
        for idx in range(remaining.size):
            job = int(remaining[idx])
            front = advance_front(state.front, p[job])
            children.append(
                FlowShopState(
                    scheduled=state.scheduled + (job,),
                    front=front,
                    remaining=np.delete(remaining, idx),
                )
            )
        return children

    def lower_bound(self, state: FlowShopState, depth: int) -> float:
        return self._bound_fn(state.front, state.remaining)

    def leaf_cost(self, state: FlowShopState) -> float:
        return int(state.front[-1])

    def leaf_solution(self, state: FlowShopState) -> Tuple[int, ...]:
        return state.scheduled

    def name(self) -> str:
        return f"FlowShop({self.instance.name}, bound={self.bound})"

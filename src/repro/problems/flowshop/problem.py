"""The permutation flow shop as a :class:`~repro.core.problem.Problem`.

The search tree is the permutation tree of the jobs (paper §3, eq. 3):
depth ``d`` fixes the job in position ``d``, children append each
not-yet-scheduled job in ascending job-id order (the deterministic rank
order the interval numbering requires).

A state carries the scheduled prefix, the completion front on every
machine, and the remaining job ids — enough for O(M) incremental
branching and for the bounds without touching the prefix again.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import Problem
from repro.core.tree import TreeShape
from repro.exceptions import ProblemError
from repro.problems.flowshop.bounds import BoundData
from repro.problems.flowshop.instance import FlowShopInstance
from repro.problems.flowshop.makespan import advance_fronts_batch

__all__ = ["FlowShopProblem", "FlowShopState"]


class FlowShopState:
    """A node of the flow-shop permutation tree."""

    __slots__ = ("scheduled", "front", "remaining")

    def __init__(
        self,
        scheduled: Tuple[int, ...],
        front: np.ndarray,
        remaining: np.ndarray,
    ):
        self.scheduled = scheduled
        self.front = front
        self.remaining = remaining

    def __repr__(self) -> str:
        return (
            f"FlowShopState(scheduled={list(self.scheduled)!r}, "
            f"Cmax so far={int(self.front[-1])})"
        )


class FlowShopProblem(Problem):
    """Minimise the makespan of a permutation flow shop.

    Parameters
    ----------
    instance:
        The :class:`FlowShopInstance` to solve.
    bound:
        ``"lb1"`` (one-machine), ``"lb2"`` (two-machine Johnson) or
        ``"combined"`` (max of both, the default).
    pair_strategy:
        Machine-pair selection for LB2 (see
        :func:`repro.problems.flowshop.bounds.machine_pairs`).
    """

    def __init__(
        self,
        instance: FlowShopInstance,
        bound: str = "combined",
        pair_strategy: str = "adjacent+ends",
    ):
        if bound not in ("lb1", "lb2", "combined"):
            raise ProblemError(
                f"unknown bound {bound!r}; use 'lb1', 'lb2' or 'combined'"
            )
        self.instance = instance
        self.bound = bound
        self.bound_data = BoundData(instance, pair_strategy)
        self._shape = TreeShape.permutation(instance.jobs)
        self._bound_fn = {
            "lb1": self.bound_data.one_machine,
            "lb2": self.bound_data.two_machine,
            "combined": self.bound_data.combined,
        }[bound]
        self._batch_bound_fn = {
            "lb1": self.bound_data.one_machine_children,
            "lb2": self.bound_data.two_machine_children,
            "combined": self.bound_data.combined_children,
        }[bound]
        # One-slot child-front cache: the engine calls bound_children
        # then branch on the same state back to back; both need the
        # (r, M) stack of child fronts, so the second call reuses it.
        # Keyed by identity with a strong reference, so the id cannot
        # be recycled while the entry lives.
        self._fronts_cache: Optional[
            Tuple[FlowShopState, np.ndarray, np.ndarray]
        ] = None
        # Pool-kernel handoff: the pool evaluator computes the child
        # fronts of many parents in one call, long before the engine
        # pops and branches each parent.  Rows are parked here (keyed
        # by state identity, holding a strong reference so the id
        # cannot be recycled) and consumed by the first _child_fronts
        # call; FIFO eviction bounds entries left behind by parents
        # that were pruned before branching.
        self._pool_fronts: "dict[int, Tuple[FlowShopState, np.ndarray, np.ndarray]]" = {}
        self._pool_fronts_cap = 1024
        # Per-child-count index matrices for branch(): row c selects
        # the remaining vector minus entry c, so the r child remaining
        # sets come from one fancy gather (allocating an r x r boolean
        # eye per decomposition is measurable on the hot path).
        self._rest_idx: dict = {}

    # ------------------------------------------------------------------
    # Problem interface
    # ------------------------------------------------------------------
    def tree_shape(self) -> TreeShape:
        return self._shape

    def root_state(self) -> FlowShopState:
        return FlowShopState(
            scheduled=(),
            front=np.zeros(self.instance.machines, dtype=np.int64),
            remaining=np.arange(self.instance.jobs, dtype=np.intp),
        )

    def _child_fronts(
        self, state: FlowShopState
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(fronts, p_rem)`` for all children of ``state``, cached once.

        ``fronts`` is the (r, M) stack of child completion fronts and
        ``p_rem`` the (r, M) processing-time rows of the remaining jobs
        (shared with the bound kernels, which need the same gather).
        """
        cached = self._fronts_cache
        if cached is not None and cached[0] is state:
            return cached[1], cached[2]
        pooled = self._pool_fronts.pop(id(state), None)
        if pooled is not None and pooled[0] is state:
            self._fronts_cache = pooled
            return pooled[1], pooled[2]
        p_rem = self.instance.processing_times[state.remaining]
        fronts = advance_fronts_batch(state.front, p_rem)
        self._fronts_cache = (state, fronts, p_rem)
        return fronts, p_rem

    def store_child_fronts(
        self,
        states: Sequence[FlowShopState],
        fronts: np.ndarray,
        p_rem: np.ndarray,
    ) -> None:
        """Park pool-computed child fronts for later :meth:`branch` reuse.

        ``fronts`` / ``p_rem`` are the (N, r, M) pool arrays; row ``n``
        belongs to ``states[n]``.  Called by the pool evaluators so the
        fronts computed for bounding are not recomputed at branch time.
        """
        cache = self._pool_fronts
        for n, state in enumerate(states):
            cache[id(state)] = (state, fronts[n], p_rem[n])
        while len(cache) > self._pool_fronts_cap:
            cache.pop(next(iter(cache)))

    def branch(self, state: FlowShopState, depth: int) -> List[FlowShopState]:
        remaining = state.remaining
        r = remaining.size
        fronts, _ = self._child_fronts(state)
        # remaining-minus-one for every child in one shot: gather with
        # the cached diagonal-dropping index matrix.
        if r > 1:
            idx = self._rest_idx.get(r)
            if idx is None:
                idx = np.nonzero(~np.eye(r, dtype=bool))[1].reshape(r, r - 1)
                self._rest_idx[r] = idx
            rests = remaining[idx]
        else:
            rests = np.empty((1, 0), dtype=remaining.dtype)
        scheduled = state.scheduled
        jobs = remaining.tolist()
        return [
            FlowShopState(
                scheduled=scheduled + (jobs[c],),
                front=fronts[c],
                remaining=rests[c],
            )
            for c in range(r)
        ]

    def lower_bound(self, state: FlowShopState, depth: int) -> float:
        return self._bound_fn(state.front, state.remaining)

    def bound_children(self, state: FlowShopState, depth: int) -> np.ndarray:
        fronts, p_rem = self._child_fronts(state)
        if self.bound == "combined":
            return self.bound_data.combined_children(
                fronts, state.remaining, p_rem
            )
        return self._batch_bound_fn(fronts, state.remaining)

    def leaf_cost(self, state: FlowShopState) -> float:
        return int(state.front[-1])

    def leaf_solution(self, state: FlowShopState) -> Tuple[int, ...]:
        return state.scheduled

    def name(self) -> str:
        return f"FlowShop({self.instance.name}, bound={self.bound})"

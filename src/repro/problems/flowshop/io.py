"""Reading and writing flow-shop instances in Taillard's file format.

The format used by the benchmark community since Taillard (1993)::

    number of jobs, number of machines, initial seed, upper bound and lower bound :
              20           5   873654221        1278        1232
    processing times :
     54 83 15 71 77 36 53 38 27 87 76 91 14 29 12 77 32 87 68 94
     79  3 11 99 56 70 99 60  5 56  3 61 73 75 47 14 21 86  5 77
     ...

Processing times are written **machine-major** (one row per machine,
one column per job), matching the generator's output order.  Metadata
(seed, bounds) is optional on read and preserved on round trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, TextIO, Union

import numpy as np

from repro.exceptions import ProblemError
from repro.problems.flowshop.instance import FlowShopInstance

__all__ = ["InstanceMetadata", "read_instance", "write_instance"]


@dataclass
class InstanceMetadata:
    """The optional header quantities of a Taillard-format file."""

    seed: Optional[int] = None
    upper_bound: Optional[int] = None
    lower_bound: Optional[int] = None


def write_instance(
    instance: FlowShopInstance,
    target: Union[str, Path, TextIO],
    metadata: Optional[InstanceMetadata] = None,
) -> None:
    """Write ``instance`` in Taillard's format."""
    metadata = metadata or InstanceMetadata()
    lines: List[str] = []
    lines.append(
        "number of jobs, number of machines, initial seed, "
        "upper bound and lower bound :"
    )
    lines.append(
        f"{instance.jobs:>12} {instance.machines:>11} "
        f"{metadata.seed if metadata.seed is not None else 0:>11} "
        f"{metadata.upper_bound if metadata.upper_bound is not None else 0:>11} "
        f"{metadata.lower_bound if metadata.lower_bound is not None else 0:>11}"
    )
    lines.append("processing times :")
    p = instance.processing_times
    for machine in range(instance.machines):
        lines.append(
            " ".join(f"{int(p[job, machine]):>3}" for job in range(instance.jobs))
        )
    text = "\n".join(lines) + "\n"
    if hasattr(target, "write"):
        target.write(text)
    else:
        Path(target).write_text(text)


def read_instance(
    source: Union[str, Path, TextIO],
    name: Optional[str] = None,
) -> tuple:
    """Read a Taillard-format file; returns ``(instance, metadata)``.

    Tolerant of header wording variations: any line containing digits
    after the first non-numeric header is parsed positionally.
    """
    if hasattr(source, "read"):
        text = source.read()
        label = name or "from-stream"
    else:
        path = Path(source)
        text = path.read_text()
        label = name or path.stem

    tokens: List[int] = []
    for line in text.splitlines():
        for piece in line.replace(",", " ").split():
            try:
                tokens.append(int(piece))
            except ValueError:
                continue
    if len(tokens) < 2:
        raise ProblemError("file contains no instance dimensions")
    jobs, machines = tokens[0], tokens[1]
    if jobs < 1 or machines < 1:
        raise ProblemError(f"invalid dimensions {jobs}x{machines}")
    header_extra = tokens[2:5]
    matrix_tokens = tokens[2 + len(header_extra):]
    if len(matrix_tokens) != jobs * machines:
        raise ProblemError(
            f"expected {jobs * machines} processing times, "
            f"found {len(matrix_tokens)}"
        )
    # machine-major rows -> (jobs, machines)
    p = np.array(matrix_tokens, dtype=np.int64).reshape(machines, jobs).T
    metadata = InstanceMetadata(
        seed=header_extra[0] if len(header_extra) > 0 and header_extra[0] else None,
        upper_bound=header_extra[1] if len(header_extra) > 1 and header_extra[1] else None,
        lower_bound=header_extra[2] if len(header_extra) > 2 and header_extra[2] else None,
    )
    return FlowShopInstance(p, name=label), metadata

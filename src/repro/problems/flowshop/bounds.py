"""Lower bounds for partial permutation flow-shop schedules.

Two classic bounds drive the B&B (both are admissible — never exceed
the best completion reachable below a node; the test suite checks this
exhaustively against brute force on small instances):

* **one-machine bound** (LB1): for each machine ``j``, the unscheduled
  jobs need ``sum_i p[i, j]`` time on ``j`` after its current
  availability ``front[j]``, and the last of them still needs at least
  ``min_i tail[i, j]`` to reach the end of the line.
* **two-machine bound** (LB2, Lageweg–Lenstra–Rinnooy Kan): relax the
  shop to machine pairs ``(j, k)`` with the machines in between turned
  into per-job *lags*; each relaxed problem is an F2 with lags, solved
  exactly by Johnson's rule on ``(a + lag, lag + b)`` (Mitten), giving
  a makespan lower bound per pair.

The pair-wise Johnson orders depend only on the instance, so they are
precomputed once in :class:`BoundData`.  Per node the scalar bound is a
linear scan of the unscheduled jobs in the precomputed order (selected
by a membership-mask pass over the full order — O(n) per pair, no
re-sorting).  The engine's hot path, however, uses the *batched* child
kernels (``*_children``): they bound every child of a decomposed node
in one NumPy evaluation, the structure the GPU flow-shop B&B line
(Chakroun & Melab; Gmys) derives its throughput from.  LB2's batch
kernel replays the shared Johnson order once per pair with prefix /
suffix maxima of the F2 critical-path terms, making each child's
"replay minus its own job" an O(1) lookup.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ProblemError
from repro.problems.flowshop.instance import FlowShopInstance
from repro.problems.flowshop.johnson import johnson_order
from repro.problems.flowshop.makespan import tails_matrix

__all__ = [
    "BoundData",
    "BoundDataCache",
    "bound_data_for",
    "clear_bound_data_cache",
    "machine_pairs",
    "one_machine_bound",
    "two_machine_bound",
]

# Safe +/- "infinity" sentinels for int64 min/max scans: far above any
# schedule length, far enough from the int64 limits that adding or
# subtracting a processing time cannot overflow.
_INT_MAX = np.int64(2**62)
_INT_MIN = np.int64(-(2**62))


def machine_pairs(machines: int, strategy: str = "adjacent+ends") -> List[Tuple[int, int]]:
    """Machine pairs the two-machine bound relaxes to.

    * ``"adjacent"`` — consecutive pairs ``(j, j+1)``;
    * ``"adjacent+ends"`` — consecutive pairs plus ``(0, M-1)``
      (a good cost/strength default);
    * ``"all"`` — every ``(j, k)``, ``j < k`` (strongest, O(M^2) pairs).
    """
    if machines < 2:
        return []
    adjacent = [(j, j + 1) for j in range(machines - 1)]
    if strategy == "adjacent":
        return adjacent
    if strategy == "adjacent+ends":
        ends = (0, machines - 1)
        return adjacent + ([ends] if ends not in adjacent else [])
    if strategy == "all":
        return [(j, k) for j in range(machines) for k in range(j + 1, machines)]
    raise ProblemError(
        f"unknown machine-pair strategy {strategy!r}; "
        f"use 'adjacent', 'adjacent+ends' or 'all'"
    )


class _PairData(NamedTuple):
    """Precomputed F2-with-lags relaxation for one machine pair."""

    j: int
    k: int
    a: np.ndarray  # p[:, j]
    b: np.ndarray  # p[:, k]
    lag: np.ndarray  # sum of p[:, j+1..k-1]
    order: np.ndarray  # Johnson/Mitten priority order of ALL jobs


def _min_over_rows_excluding_self(values: np.ndarray) -> np.ndarray:
    """``out[c, j] = min over rows i != c of values[i, j]``.

    The leave-one-out minimum every child kernel needs (child ``c``
    removes job ``c`` from the remaining set): computed for all rows at
    once from the column minimum and the runner-up at the argmin row.
    """
    r, m = values.shape
    if r == 1:
        return np.full((1, m), _INT_MAX, dtype=np.int64)
    cols = np.arange(m)
    am = values.argmin(axis=0)
    min1 = values[am, cols]
    masked = values.copy()
    masked[am, cols] = _INT_MAX
    min2 = masked.min(axis=0)
    out = np.empty((r, m), dtype=np.int64)
    out[:] = min1
    out[am, cols] = min2
    return out


def _min_over_rows_excluding_self_pool(values: np.ndarray) -> np.ndarray:
    """Pooled form of :func:`_min_over_rows_excluding_self`.

    ``values`` is ``(N, r, M)``; ``out[n, c, j]`` is the minimum over
    rows ``i != c`` of ``values[n, i, j]`` — the same best/runner-up
    swap, batched over the pool axis.  ``argmin`` picks the first
    minimum along the reduced axis in both forms, so the pooled result
    matches the per-family kernel slice for slice.
    """
    n_pool, r, m = values.shape
    if r == 1:
        return np.full((n_pool, 1, m), _INT_MAX, dtype=np.int64)
    pool_idx = np.arange(n_pool)[:, None]
    col_idx = np.arange(m)[None, :]
    am = values.argmin(axis=1)  # (N, M)
    min1 = values[pool_idx, am, col_idx]
    masked = values.copy()
    masked[pool_idx, am, col_idx] = _INT_MAX
    min2 = masked.min(axis=1)
    out = np.empty((n_pool, r, m), dtype=np.int64)
    out[:] = min1[:, None, :]
    out[pool_idx, am, col_idx] = min2
    return out


class BoundData:
    """Instance-wide precomputation shared by every node's bound.

    Parameters
    ----------
    instance:
        The flow-shop instance.
    pair_strategy:
        Which machine pairs LB2 uses (see :func:`machine_pairs`).
    """

    def __init__(
        self, instance: FlowShopInstance, pair_strategy: str = "adjacent+ends"
    ):
        self.instance = instance
        self.pair_strategy = pair_strategy
        p = instance.processing_times
        self.p = p
        self.tails = tails_matrix(instance)
        self.pairs = machine_pairs(instance.machines, pair_strategy)
        # Per pair (j, k): a = p[:, j], b = p[:, k],
        # lag = sum of p[:, j+1..k-1]; plus the Mitten/Johnson priority
        # order of ALL jobs (a subset keeps its induced suborder).
        cumulative = np.cumsum(p, axis=1)
        self._pair_data: List[_PairData] = []
        for j, k in self.pairs:
            a = p[:, j]
            b = p[:, k]
            if k > j + 1:
                lag = cumulative[:, k - 1] - cumulative[:, j]
            else:
                lag = np.zeros(instance.jobs, dtype=p.dtype)
            order = np.array(johnson_order(a + lag, lag + b), dtype=np.intp)
            self._pair_data.append(_PairData(j, k, a, b, lag, order))
        # Pair-stacked copies for the batched LB2 kernel: one (P, n)
        # matrix per ingredient lets a single node evaluation sweep
        # every pair at once instead of looping Python-side.  a/b and
        # a/b/lag are additionally fused into one (2|3, P, n) block so
        # the kernel pays one fancy-index per gather, not three.
        npairs = len(self._pair_data)
        if npairs:
            self._j_idx = np.array([pd.j for pd in self._pair_data])
            self._k_idx = np.array([pd.k for pd in self._pair_data])
            self._jk_idx = np.concatenate([self._j_idx, self._k_idx])
            self._a_all = np.stack([pd.a for pd in self._pair_data]).astype(np.int64)
            self._b_all = np.stack([pd.b for pd in self._pair_data]).astype(np.int64)
            self._lag_all = np.stack([pd.lag for pd in self._pair_data]).astype(np.int64)
            self._abl_all = np.stack([self._a_all, self._b_all, self._lag_all])
            self._ab_all = self._abl_all[:2]
            self._order_all = np.stack([pd.order for pd in self._pair_data])
            self._pair_rows = np.arange(npairs)[:, None]
            self._flat_rows = np.arange(npairs)
            self._pos_buffer = np.empty((npairs, instance.jobs), dtype=np.intp)
        self._mask_buffer = np.zeros(instance.jobs, dtype=bool)
        # Per-child-count scratch reused across kernel calls (the
        # engine is single-threaded and the kernels return fresh
        # output arrays, so reuse is safe): arange(r) plus the
        # sentinel-padded prefix/suffix-max buffers of the LB2 kernel.
        self._r_cache: dict = {}

    def _r_scratch(self, r: int):
        cached = self._r_cache.get(r)
        if cached is None:
            npairs = len(self._pair_data)
            pmax = np.empty((npairs, r + 1), dtype=np.int64)
            pmax[:, 0] = _INT_MIN
            smax = np.empty((npairs, r + 1), dtype=np.int64)
            smax[:, r] = _INT_MIN
            cached = (np.arange(r), pmax, smax)
            self._r_cache[r] = cached
        return cached

    # ------------------------------------------------------------------
    # scalar (per-node) bounds
    # ------------------------------------------------------------------
    def one_machine(self, front: np.ndarray, remaining: np.ndarray) -> int:
        """LB1 over all machines for the unscheduled jobs ``remaining``.

        Machine ``j`` cannot start serving the unscheduled set before
        ``avail_j = max(front[j], min_i arrival_i(j))`` where
        ``arrival_i(j)`` is the earliest time job ``i`` could reach
        machine ``j`` through the current fronts (the Ignall–Schrage
        head term); then it needs the whole load and the cheapest tail.
        """
        if remaining.size == 0:
            return int(front[-1])
        p_rem = self.p[remaining]
        loads = p_rem.sum(axis=0)
        min_tails = self.tails[remaining].min(axis=0)
        # earliest completion of each remaining job on each machine if
        # it were scheduled next: E[:, 0] = front[0] + p, then
        # E[:, j] = max(front[j], E[:, j-1]) + p.
        m = front.shape[0]
        avail = np.empty(m, dtype=np.int64)
        avail[0] = front[0]
        if m > 1:
            completion = front[0] + p_rem[:, 0]
            for j in range(1, m):
                avail[j] = max(int(front[j]), int(completion.min()))
                if j < m - 1:
                    completion = np.maximum(completion, front[j]) + p_rem[:, j]
        return int(np.max(avail + loads + min_tails))

    def two_machine(self, front: np.ndarray, remaining: np.ndarray) -> int:
        """LB2: best pair-wise Johnson-with-lags relaxation.

        All pairs are swept in one NumPy evaluation: the F2-with-lags
        replay from offsets ``(front[j], front[k])`` unrolls exactly to

            C2 = max(front[k] + sum(b),
                     front[j] + max_t (A_t + lag_t + Bsuf_t))

        (prefix sums ``A_t`` of ``a``, suffix sums ``Bsuf_t`` of ``b``
        over the induced Johnson suborder) — the same identity the
        batched child kernel builds on, so the per-pair Python replay
        loop is gone while every value stays bit-identical int64.
        """
        if remaining.size == 0:
            return int(front[-1])
        if not self._pair_data:
            return 0
        rows = self._pair_rows
        mask = self._mask_buffer
        mask[:] = False
        mask[remaining] = True
        selected = mask[self._order_all]
        cols = np.nonzero(selected)[1].reshape(-1, remaining.size)
        seq = self._order_all[rows, cols]  # (P, r) induced suborders
        a_seq, b_seq, lag_seq = self._abl_all[:, rows, seq]
        suffix_b = np.cumsum(b_seq[:, ::-1], axis=1)[:, ::-1]
        v = np.cumsum(a_seq, axis=1)
        v += lag_seq
        v += suffix_b
        crit = v.max(axis=1)
        crit += front[self._j_idx]
        base = front[self._k_idx] + suffix_b[:, 0]
        np.maximum(crit, base, out=crit)
        crit += self.tails[remaining][:, self._k_idx].min(axis=0)
        return int(crit.max())

    def combined(self, front: np.ndarray, remaining: np.ndarray) -> int:
        """max(LB1, LB2) — the default B&B bound."""
        lb1 = self.one_machine(front, remaining)
        if remaining.size <= 1 or not self._pair_data:
            return lb1
        return max(lb1, self.two_machine(front, remaining))

    # ------------------------------------------------------------------
    # batched child kernels
    #
    # ``fronts`` is the (r, M) stack of completion fronts of the r
    # children of a node whose unscheduled set is ``remaining`` (child c
    # schedules job remaining[c] next, so its own remaining set is
    # ``remaining`` minus position c).  Each kernel returns the (r,)
    # int64 vector of child bounds, entry for entry equal to the scalar
    # bound of the corresponding child state.
    # ------------------------------------------------------------------
    def one_machine_children(
        self, fronts: np.ndarray, remaining: np.ndarray
    ) -> np.ndarray:
        """Batched LB1: one evaluation for all children of a node."""
        r = remaining.size
        if r == 1:
            # The single child has nothing left: its bound is its Cmax.
            return fronts[:, -1].astype(np.int64)
        return self._lb1_children(
            fronts, self.p[remaining], self.tails[remaining]
        )

    def _lb1_children(
        self, fronts: np.ndarray, p_rem: np.ndarray, tails_rem: np.ndarray
    ) -> np.ndarray:
        r, m = p_rem.shape
        loads = p_rem.sum(axis=0) - p_rem
        min_tails = _min_over_rows_excluding_self(tails_rem)
        avail = np.empty((r, m), dtype=np.int64)
        avail[:, 0] = fronts[:, 0]
        if m > 1:
            # completion[c, i] = earliest completion of job i on the
            # current machine when appended to child c's front; child c
            # must ignore column c (its own job), so the diagonal is
            # parked at +"inf" once — the sentinel survives the max/add
            # recurrence, keeping every later row minimum a plain min.
            ar = self._r_scratch(r)[0]
            completion = fronts[:, 0:1] + p_rem[:, 0]
            completion[ar, ar] = _INT_MAX
            minimum_reduce = np.minimum.reduce
            maximum = np.maximum
            for j in range(1, m):
                col = avail[:, j]
                minimum_reduce(completion, axis=1, out=col)
                maximum(col, fronts[:, j], out=col)
                if j < m - 1:
                    maximum(completion, fronts[:, j : j + 1], out=completion)
                    completion += p_rem[:, j]
        avail += loads
        avail += min_tails
        return avail.max(axis=1)

    def two_machine_children(
        self, fronts: np.ndarray, remaining: np.ndarray
    ) -> np.ndarray:
        """Batched LB2 via prefix/suffix maxima of the F2 critical path.

        For a fixed processing order (Johnson's), the F2-with-lags
        makespan from offsets ``(c1_0, c2_0)`` unrolls to::

            C2 = max(c2_0 + sum(b),  max_t c1_0 + A_t + lag_t + Bsuf_t)

        with ``A_t`` the prefix sum of ``a`` and ``Bsuf_t`` the suffix
        sum of ``b``.  Child ``c`` replays the parent's order minus its
        own job at position ``q``; dropping one job shifts the critical
        term by ``-b_q`` left of ``q`` and ``-a_q`` right of it, so with
        prefix/suffix maxima of ``V_t = A_t + lag_t + Bsuf_t`` each
        child's makespan is an O(1) combination — no per-child replay.
        """
        r = remaining.size
        if r == 1:
            return fronts[:, -1].astype(np.int64)
        if not self._pair_data:
            return np.zeros(r, dtype=np.int64)
        mask = self._mask_buffer
        mask[:] = False
        mask[remaining] = True
        return self._lb2_children(fronts, remaining, mask, self.tails[remaining])

    def _lb2_children(
        self,
        fronts: np.ndarray,
        remaining: np.ndarray,
        mask: np.ndarray,
        tails_rem: np.ndarray,
    ) -> np.ndarray:
        r = remaining.size
        npairs = len(self._pair_data)
        rows = self._pair_rows  # (P, 1)
        arange_r, pmax, smax = self._r_scratch(r)
        # Induced Johnson suborder of every pair at once: each row of
        # the precomputed (P, n) order matrix keeps exactly r selected
        # entries, so one nonzero pass yields their positions row-wise.
        selected = mask[self._order_all]
        cols = np.nonzero(selected)[1].reshape(-1, r)
        seq = self._order_all[rows, cols]  # (P, r) job ids, Johnson order
        a_seq, b_seq, lag_seq = self._abl_all[:, rows, seq]
        prefix_a = np.cumsum(a_seq, axis=1)
        suffix_b = np.cumsum(b_seq[:, ::-1], axis=1)[:, ::-1]
        v = prefix_a
        v += lag_seq
        v += suffix_b
        # Running maxima with a -inf sentinel pad on each end, so each
        # child's left/right lookup below is a plain gather with no
        # boundary case: pmax[:, t+1] = max(v[:, :t+1]) and
        # smax[:, t] = max(v[:, t:]).
        np.maximum.accumulate(v, axis=1, out=pmax[:, 1:])
        np.maximum.accumulate(v[:, ::-1], axis=1, out=smax[:, r - 1 :: -1])
        pos = self._pos_buffer
        pos[rows, seq] = arange_r
        q = pos[:, remaining]  # (P, r): position of child c's own job
        a_q, b_q = self._ab_all[:, :, remaining]
        left = pmax[rows, q]
        left -= b_q
        right = smax[rows, q + 1]
        right -= a_q
        np.maximum(left, right, out=left)
        fr = fronts[:, self._jk_idx].T  # (2P, r): front[j] rows, front[k] rows
        left += fr[:npairs]
        c2 = suffix_b[:, 0:1] - b_q
        c2 += fr[npairs:]
        np.maximum(c2, left, out=c2)
        # Leave-one-out minimum of the remaining tails on machine k,
        # per pair: best and runner-up per row, swapped in where the
        # child removes the argmin job.
        tails_k = tails_rem[:, self._k_idx].T  # (P, r), a fresh copy
        flat_rows = self._flat_rows
        am = tails_k.argmin(axis=1)
        min1 = tails_k[flat_rows, am]
        tails_k[flat_rows, am] = _INT_MAX
        min2 = tails_k.min(axis=1)
        min_tail = min1.repeat(r).reshape(npairs, r)
        min_tail[flat_rows, am] = min2
        c2 += min_tail
        return c2.max(axis=0)

    def combined_children(
        self,
        fronts: np.ndarray,
        remaining: np.ndarray,
        p_rem: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched max(LB1, LB2) with the same short-circuit as scalar
        :meth:`combined` (children with <= 1 unscheduled job skip LB2).

        The gathers both kernels need (``p[remaining]``,
        ``tails[remaining]``, the membership mask) are computed once
        and shared; a caller that already holds ``p[remaining]`` (the
        branching kernel does) can pass it through ``p_rem``.
        """
        r = remaining.size
        if r == 1:
            return fronts[:, -1].astype(np.int64)
        if p_rem is None:
            p_rem = self.p[remaining]
        tails_rem = self.tails[remaining]
        lb1 = self._lb1_children(fronts, p_rem, tails_rem)
        if r - 1 <= 1 or not self._pair_data:
            return lb1
        mask = self._mask_buffer
        mask[:] = False
        mask[remaining] = True
        lb2 = self._lb2_children(fronts, remaining, mask, tails_rem)
        return np.maximum(lb1, lb2, out=lb1)

    # ------------------------------------------------------------------
    # pooled child kernels (PR 7)
    #
    # The pooled forms generalise the ``*_children`` kernels with a
    # leading pool axis: ``fronts`` is the (N, r, M) stack of child
    # fronts of N same-depth parents (so every parent has exactly r
    # children) and ``remaining`` the (N, r) matrix of their
    # unscheduled jobs.  Row [n] of the (N, r) result is entry for
    # entry what ``*_children`` returns for parent n — all int64
    # arithmetic, so pooling is bit-identical, only amortised: one
    # NumPy call bounds N*r children instead of r.
    # ------------------------------------------------------------------
    def one_machine_children_pool(
        self,
        fronts: np.ndarray,
        remaining: np.ndarray,
        p_rem: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Pooled LB1: bounds for the children of N pooled parents."""
        n_pool, r, _m = fronts.shape
        if r == 1:
            return fronts[:, :, -1].astype(np.int64)
        if p_rem is None:
            p_rem = self.p[remaining]
        return self._lb1_children_pool(fronts, p_rem, self.tails[remaining])

    def _lb1_children_pool(
        self, fronts: np.ndarray, p_rem: np.ndarray, tails_rem: np.ndarray
    ) -> np.ndarray:
        n_pool, r, m = p_rem.shape
        loads = p_rem.sum(axis=1, keepdims=True) - p_rem
        min_tails = _min_over_rows_excluding_self_pool(tails_rem)
        avail = np.empty((n_pool, r, m), dtype=np.int64)
        avail[:, :, 0] = fronts[:, :, 0]
        if m > 1:
            # Same sentinel-diagonal recurrence as _lb1_children, one
            # pool axis to the left: completion[n, c, i] tracks job i's
            # earliest completion appended to child (n, c)'s front,
            # with each child's own column parked at +"inf".
            ar = np.arange(r)
            completion = fronts[:, :, 0:1] + p_rem[:, :, 0][:, None, :]
            completion[:, ar, ar] = _INT_MAX
            minimum_reduce = np.minimum.reduce
            maximum = np.maximum
            for j in range(1, m):
                col = avail[:, :, j]
                minimum_reduce(completion, axis=2, out=col)
                maximum(col, fronts[:, :, j], out=col)
                if j < m - 1:
                    maximum(completion, fronts[:, :, j : j + 1], out=completion)
                    completion += p_rem[:, :, j][:, None, :]
        avail += loads
        avail += min_tails
        return avail.max(axis=2)

    def two_machine_children_pool(
        self, fronts: np.ndarray, remaining: np.ndarray
    ) -> np.ndarray:
        """Pooled LB2: prefix/suffix Johnson replay over the pool."""
        n_pool, r, _m = fronts.shape
        if r == 1:
            return fronts[:, :, -1].astype(np.int64)
        if not self._pair_data:
            return np.zeros((n_pool, r), dtype=np.int64)
        return self._lb2_children_pool(
            fronts, remaining, self.tails[remaining]
        )

    def _lb2_children_pool(
        self,
        fronts: np.ndarray,
        remaining: np.ndarray,
        tails_rem: np.ndarray,
    ) -> np.ndarray:
        n_pool, r, _m = fronts.shape
        npairs = len(self._pair_data)
        rows = self._pair_rows  # (P, 1)
        jobs = self.instance.jobs
        mask = np.zeros((n_pool, jobs), dtype=bool)
        mask[np.arange(n_pool)[:, None], remaining] = True
        # Induced Johnson suborders: one nonzero pass over the
        # (N, P, n) selection keeps exactly r positions per (n, p) row,
        # in C order, so the reshape groups them correctly.
        selected = mask[:, self._order_all]
        cols = np.nonzero(selected)[2].reshape(n_pool, npairs, r)
        seq = self._order_all[rows, cols]  # (N, P, r) job ids
        a_seq, b_seq, lag_seq = self._abl_all[:, rows, seq]
        prefix_a = np.cumsum(a_seq, axis=2)
        suffix_b = np.cumsum(b_seq[:, :, ::-1], axis=2)[:, :, ::-1]
        v = prefix_a
        v += lag_seq
        v += suffix_b
        pmax = np.empty((n_pool, npairs, r + 1), dtype=np.int64)
        pmax[:, :, 0] = _INT_MIN
        np.maximum.accumulate(v, axis=2, out=pmax[:, :, 1:])
        smax = np.empty((n_pool, npairs, r + 1), dtype=np.int64)
        smax[:, :, r] = _INT_MIN
        np.maximum.accumulate(v[:, :, ::-1], axis=2, out=smax[:, :, r - 1 :: -1])
        # All scatter/gather below is direct broadcast fancy indexing
        # (the 2-D kernel's idiom) — ``take_along_axis`` machinery costs
        # real Python time per call at pool-sized arrays.
        pool3 = np.arange(n_pool)[:, None, None]
        pair3 = np.arange(npairs)[None, :, None]
        pos = np.empty((n_pool, npairs, jobs), dtype=np.intp)
        pos[pool3, pair3, seq] = np.arange(r)
        q = pos[pool3, pair3, remaining[:, None, :]]  # (N, P, r)
        a_q, b_q = self._ab_all[:, rows, remaining[:, None, :]]
        left = pmax[pool3, pair3, q]
        left -= b_q
        right = smax[pool3, pair3, q + 1]
        right -= a_q
        np.maximum(left, right, out=left)
        fr = np.swapaxes(fronts[:, :, self._jk_idx], 1, 2)  # (N, 2P, r)
        left += fr[:, :npairs]
        c2 = suffix_b[:, :, 0:1] - b_q
        c2 += fr[:, npairs:]
        np.maximum(c2, left, out=c2)
        # Leave-one-out tail minimum on machine k per (pool, pair).
        pool2 = pool3[:, :, 0]
        pair2 = pair3[:, :, 0]
        tails_k = np.swapaxes(tails_rem[:, :, self._k_idx], 1, 2).copy()
        am = tails_k.argmin(axis=2)  # (N, P)
        min1 = tails_k[pool2, pair2, am]
        tails_k[pool2, pair2, am] = _INT_MAX
        min2 = tails_k.min(axis=2)
        min_tail = np.empty((n_pool, npairs, r), dtype=np.int64)
        min_tail[:] = min1[:, :, None]
        min_tail[pool2, pair2, am] = min2
        c2 += min_tail
        return c2.max(axis=1)

    def combined_children_pool(
        self,
        fronts: np.ndarray,
        remaining: np.ndarray,
        p_rem: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Pooled max(LB1, LB2), same short-circuits as the per-family
        :meth:`combined_children` (the pool is depth-homogeneous, so
        the r-dependent short-circuit applies to every parent alike)."""
        n_pool, r, _m = fronts.shape
        if r == 1:
            return fronts[:, :, -1].astype(np.int64)
        if p_rem is None:
            p_rem = self.p[remaining]
        tails_rem = self.tails[remaining]
        lb1 = self._lb1_children_pool(fronts, p_rem, tails_rem)
        if r - 1 <= 1 or not self._pair_data:
            return lb1
        lb2 = self._lb2_children_pool(fronts, remaining, tails_rem)
        return np.maximum(lb1, lb2, out=lb1)


class BoundDataCache:
    """Explicit bounded LRU of :class:`BoundData` per (instance, strategy).

    Replaces the module-level ``functools.lru_cache`` that used to back
    :func:`bound_data_for`: a long-lived grid worker solves many
    intervals over many instances, and every cached entry pins the
    tails matrix plus the per-pair Johnson precomputation (O(pairs x
    jobs) arrays — substantial under ``pair_strategy="all"``).  An
    explicit cache keeps the bound small, inspectable and clearable
    (:meth:`clear` / :func:`clear_bound_data_cache`), so worker
    processes can drop bound-prep arrays between solves instead of
    leaking them for the process lifetime.

    ``FlowShopInstance`` hashes by matrix content — exactly the key the
    precomputation depends on — so equal instances share one entry.
    """

    def __init__(self, maxsize: int = 8):
        if maxsize < 1:
            raise ProblemError("BoundDataCache maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Tuple[FlowShopInstance, str], BoundData]" = (
            OrderedDict()
        )

    def get(
        self, instance: FlowShopInstance, pair_strategy: str = "adjacent+ends"
    ) -> BoundData:
        """The cached :class:`BoundData`, building and evicting LRU-style."""
        key = (instance, pair_strategy)
        data = self._entries.get(key)
        if data is not None:
            self._entries.move_to_end(key)
            return data
        data = BoundData(instance, pair_strategy)
        self._entries[key] = data
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return data

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_SHARED_BOUND_DATA = BoundDataCache()


def bound_data_for(
    instance: FlowShopInstance, pair_strategy: str = "adjacent+ends"
) -> BoundData:
    """A shared :class:`BoundData` per (instance, strategy).

    The precomputation (tails matrix + one Johnson sort per machine
    pair) is pure in the instance, so repeated callers — notably the
    :func:`one_machine_bound` / :func:`two_machine_bound` convenience
    wrappers — reuse one cached copy instead of rebuilding it per call.
    Backed by a small explicit :class:`BoundDataCache` (not an
    unbounded-per-process ``lru_cache``); call
    :func:`clear_bound_data_cache` to release the arrays, e.g. between
    solves in a long-lived grid worker.
    """
    return _SHARED_BOUND_DATA.get(instance, pair_strategy)


def clear_bound_data_cache() -> None:
    """Drop every cached :class:`BoundData` (frees bound-prep arrays)."""
    _SHARED_BOUND_DATA.clear()


def one_machine_bound(
    instance: FlowShopInstance,
    front: Sequence[int],
    remaining: Iterable[int],
    data: Optional[BoundData] = None,
) -> int:
    """Standalone LB1 (convenience wrapper around :class:`BoundData`).

    Pass a prebuilt ``data`` to skip the cache lookup entirely; LB1
    does not use machine pairs, so any strategy's ``BoundData`` works.
    """
    if data is None:
        data = bound_data_for(instance, "adjacent")
    return data.one_machine(
        np.asarray(front, dtype=np.int64), np.asarray(list(remaining), dtype=np.intp)
    )


def two_machine_bound(
    instance: FlowShopInstance,
    front: Sequence[int],
    remaining: Iterable[int],
    pair_strategy: str = "all",
    data: Optional[BoundData] = None,
) -> int:
    """Standalone LB2 (convenience wrapper around :class:`BoundData`).

    A prebuilt ``data`` overrides ``pair_strategy``.
    """
    if data is None:
        data = bound_data_for(instance, pair_strategy)
    return data.two_machine(
        np.asarray(front, dtype=np.int64), np.asarray(list(remaining), dtype=np.intp)
    )

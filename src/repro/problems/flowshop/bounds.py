"""Lower bounds for partial permutation flow-shop schedules.

Two classic bounds drive the B&B (both are admissible — never exceed
the best completion reachable below a node; the test suite checks this
exhaustively against brute force on small instances):

* **one-machine bound** (LB1): for each machine ``j``, the unscheduled
  jobs need ``sum_i p[i, j]`` time on ``j`` after its current
  availability ``front[j]``, and the last of them still needs at least
  ``min_i tail[i, j]`` to reach the end of the line.
* **two-machine bound** (LB2, Lageweg–Lenstra–Rinnooy Kan): relax the
  shop to machine pairs ``(j, k)`` with the machines in between turned
  into per-job *lags*; each relaxed problem is an F2 with lags, solved
  exactly by Johnson's rule on ``(a + lag, lag + b)`` (Mitten), giving
  a makespan lower bound per pair.

The pair-wise Johnson orders depend only on the instance, so they are
precomputed once in :class:`BoundData`; per node the bound is a linear
scan of the unscheduled jobs in the precomputed order — the hot loop
the HPC guides say to keep tight (NumPy arrays, no re-sorting).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ProblemError
from repro.problems.flowshop.instance import FlowShopInstance
from repro.problems.flowshop.johnson import johnson_order
from repro.problems.flowshop.makespan import tails_matrix

__all__ = ["BoundData", "machine_pairs", "one_machine_bound", "two_machine_bound"]


def machine_pairs(machines: int, strategy: str = "adjacent+ends") -> List[Tuple[int, int]]:
    """Machine pairs the two-machine bound relaxes to.

    * ``"adjacent"`` — consecutive pairs ``(j, j+1)``;
    * ``"adjacent+ends"`` — consecutive pairs plus ``(0, M-1)``
      (a good cost/strength default);
    * ``"all"`` — every ``(j, k)``, ``j < k`` (strongest, O(M^2) pairs).
    """
    if machines < 2:
        return []
    adjacent = [(j, j + 1) for j in range(machines - 1)]
    if strategy == "adjacent":
        return adjacent
    if strategy == "adjacent+ends":
        ends = (0, machines - 1)
        return adjacent + ([ends] if ends not in adjacent else [])
    if strategy == "all":
        return [(j, k) for j in range(machines) for k in range(j + 1, machines)]
    raise ProblemError(
        f"unknown machine-pair strategy {strategy!r}; "
        f"use 'adjacent', 'adjacent+ends' or 'all'"
    )


class BoundData:
    """Instance-wide precomputation shared by every node's bound.

    Parameters
    ----------
    instance:
        The flow-shop instance.
    pair_strategy:
        Which machine pairs LB2 uses (see :func:`machine_pairs`).
    """

    def __init__(
        self, instance: FlowShopInstance, pair_strategy: str = "adjacent+ends"
    ):
        self.instance = instance
        p = instance.processing_times
        self.p = p
        self.tails = tails_matrix(instance)
        self.pairs = machine_pairs(instance.machines, pair_strategy)
        # Per pair (j, k): a = p[:, j], b = p[:, k],
        # lag = sum of p[:, j+1..k-1]; plus the Mitten/Johnson priority
        # order of ALL jobs (a subset keeps its induced suborder).
        cumulative = np.cumsum(p, axis=1)
        self._pair_data = []
        for j, k in self.pairs:
            a = p[:, j]
            b = p[:, k]
            if k > j + 1:
                lag = cumulative[:, k - 1] - cumulative[:, j]
            else:
                lag = np.zeros(instance.jobs, dtype=p.dtype)
            order = np.array(johnson_order(a + lag, lag + b), dtype=np.intp)
            # position[i] = rank of job i in the Johnson order, so a
            # subset can be replayed in order with one argsort-free pass
            position = np.empty(instance.jobs, dtype=np.intp)
            position[order] = np.arange(instance.jobs)
            self._pair_data.append((j, k, a, b, lag, position))

    # ------------------------------------------------------------------
    def one_machine(self, front: np.ndarray, remaining: np.ndarray) -> int:
        """LB1 over all machines for the unscheduled jobs ``remaining``.

        Machine ``j`` cannot start serving the unscheduled set before
        ``avail_j = max(front[j], min_i arrival_i(j))`` where
        ``arrival_i(j)`` is the earliest time job ``i`` could reach
        machine ``j`` through the current fronts (the Ignall–Schrage
        head term); then it needs the whole load and the cheapest tail.
        """
        if remaining.size == 0:
            return int(front[-1])
        p_rem = self.p[remaining]
        loads = p_rem.sum(axis=0)
        min_tails = self.tails[remaining].min(axis=0)
        # earliest completion of each remaining job on each machine if
        # it were scheduled next: E[:, 0] = front[0] + p, then
        # E[:, j] = max(front[j], E[:, j-1]) + p.
        m = front.shape[0]
        avail = np.empty(m, dtype=np.int64)
        avail[0] = front[0]
        if m > 1:
            completion = front[0] + p_rem[:, 0]
            for j in range(1, m):
                avail[j] = max(int(front[j]), int(completion.min()))
                if j < m - 1:
                    completion = np.maximum(completion, front[j]) + p_rem[:, j]
        return int(np.max(avail + loads + min_tails))

    def two_machine(self, front: np.ndarray, remaining: np.ndarray) -> int:
        """LB2: best pair-wise Johnson-with-lags relaxation."""
        if remaining.size == 0:
            return int(front[-1])
        best = 0
        tails = self.tails
        for j, k, a, b, lag, position in self._pair_data:
            # Replay the induced Johnson suborder of the remaining jobs.
            order = remaining[np.argsort(position[remaining], kind="stable")]
            c1 = int(front[j])
            c2 = int(front[k])
            for i in order:
                c1 += int(a[i])
                earliest = c1 + int(lag[i])
                if earliest > c2:
                    c2 = earliest
                c2 += int(b[i])
            value = c2 + int(tails[remaining, k].min())
            if value > best:
                best = value
        return best

    def combined(self, front: np.ndarray, remaining: np.ndarray) -> int:
        """max(LB1, LB2) — the default B&B bound."""
        lb1 = self.one_machine(front, remaining)
        if remaining.size <= 1 or not self._pair_data:
            return lb1
        return max(lb1, self.two_machine(front, remaining))


def one_machine_bound(
    instance: FlowShopInstance,
    front: Sequence[int],
    remaining: Iterable[int],
) -> int:
    """Standalone LB1 (convenience wrapper around :class:`BoundData`)."""
    data = BoundData(instance, pair_strategy="adjacent")
    return data.one_machine(
        np.asarray(front, dtype=np.int64), np.asarray(list(remaining), dtype=np.intp)
    )


def two_machine_bound(
    instance: FlowShopInstance,
    front: Sequence[int],
    remaining: Iterable[int],
    pair_strategy: str = "all",
) -> int:
    """Standalone LB2 (convenience wrapper around :class:`BoundData`)."""
    data = BoundData(instance, pair_strategy=pair_strategy)
    return data.two_machine(
        np.asarray(front, dtype=np.int64), np.asarray(list(remaining), dtype=np.intp)
    )

"""Flowshop pool evaluators, registered with the kernel registry.

The engine's pool loop hands a list of same-depth parent states to one
evaluator call.  Both evaluators here share the same gather: stack the
parents' fronts and remaining sets, advance all child fronts in one
pooled sweep, park the fronts on the problem's handoff cache (so
``branch`` reuses them), then bound every child:

* :class:`FlowShopNumpyPool` — the ``*_children_pool`` NumPy kernels
  of :class:`~repro.problems.flowshop.bounds.BoundData`;
* :class:`FlowShopNumbaPool` — the JIT loop kernels of
  :mod:`~repro.problems.flowshop.kernels_numba` (construction raises
  when numba is missing; the numba backend catches it and degrades to
  numpy with a one-time warning).

Importing :mod:`repro.problems.flowshop` registers both factories, so
``solve(FlowShopProblem(...))`` pools by default with numpy.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.kernels import register_pool_factory
from repro.problems.flowshop import kernels_numba
from repro.problems.flowshop.bounds import BoundData
from repro.problems.flowshop.makespan import (
    advance_fronts_batch,
    advance_fronts_pool,
)
from repro.problems.flowshop.problem import FlowShopProblem, FlowShopState

__all__ = ["FlowShopNumpyPool", "FlowShopNumbaPool", "register_pool_kernels"]


def _gather(
    problem: FlowShopProblem, states: Sequence[FlowShopState]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(child_fronts, remaining, p_rem)`` pool arrays for ``states``.

    All states share one depth (the engine groups pools by depth), so
    their remaining vectors stack into a dense (N, r) matrix.  The
    child fronts are parked on the problem's handoff cache on the way
    out — bounding and branching share one front computation.
    """
    remaining = np.stack([state.remaining for state in states])
    parent_fronts = np.stack([state.front for state in states])
    p_rem = problem.instance.processing_times[remaining]
    fronts = advance_fronts_pool(parent_fronts, p_rem)
    problem.store_child_fronts(states, fronts, p_rem)
    return fronts, remaining, p_rem


class FlowShopNumpyPool:
    """Pool evaluator over the vectorised ``*_children_pool`` kernels."""

    def __init__(self, problem: FlowShopProblem):
        self._problem = problem
        self._data: BoundData = problem.bound_data
        self._bound = problem.bound

    def __call__(
        self, states: Sequence[FlowShopState], depth: int
    ) -> Optional[np.ndarray]:
        data = self._data
        if len(states) == 1:
            # Singleton pools (a frontier too thin to group) skip the
            # pool axis entirely: the per-family 2-D kernels compute
            # the same values with less indexing overhead.
            state = states[0]
            remaining1 = state.remaining
            p_rem1 = data.p[remaining1]
            fronts1 = advance_fronts_batch(state.front, p_rem1)
            self._problem.store_child_fronts(
                states, fronts1[np.newaxis], p_rem1[np.newaxis]
            )
            if self._bound == "combined":
                row = data.combined_children(fronts1, remaining1, p_rem1)
            elif self._bound == "lb1":
                row = data.one_machine_children(fronts1, remaining1)
            else:
                row = data.two_machine_children(fronts1, remaining1)
            return row[np.newaxis]
        fronts, remaining, p_rem = _gather(self._problem, states)
        if self._bound == "combined":
            return data.combined_children_pool(fronts, remaining, p_rem)
        if self._bound == "lb1":
            return data.one_machine_children_pool(fronts, remaining, p_rem)
        return data.two_machine_children_pool(fronts, remaining)


class FlowShopNumbaPool:
    """Pool evaluator over the JIT loop kernels (numba required).

    Mirrors the short-circuits of the numpy pool kernels exactly:
    ``r == 1`` children are leaves of the bound recursion (their bound
    is their Cmax), LB2 is skipped for ``combined`` when the children
    keep <= 1 job or the instance has no machine pairs.
    """

    def __init__(self, problem: FlowShopProblem):
        self._problem = problem
        self._data = problem.bound_data
        self._bound = problem.bound
        self._kernels = kernels_numba.jit_kernels()
        self._warm = False

    def _warmup(self) -> None:
        """Trigger JIT compilation outside any timed region, once."""
        data = self._data
        m = data.p.shape[1]
        fronts = np.zeros((1, 2, m), dtype=np.int64)
        p_rem = np.ones((1, 2, m), dtype=np.int64)
        tails = np.ones((1, 2, m), dtype=np.int64)
        out = np.empty((1, 2), dtype=np.int64)
        self._kernels.lb1(fronts, p_rem, tails, out)
        if data.pairs:
            remaining = np.arange(2, dtype=np.intp)[None, :]
            self._kernels.lb2(
                fronts,
                remaining,
                data._order_all,
                data._a_all,
                data._b_all,
                data._lag_all,
                data._j_idx,
                data._k_idx,
                tails,
                out,
            )
        self._warm = True

    def __call__(
        self, states: Sequence[FlowShopState], depth: int
    ) -> Optional[np.ndarray]:
        if not self._warm:
            self._warmup()
        fronts, remaining, p_rem = _gather(self._problem, states)
        data = self._data
        n_pool, r, _m = fronts.shape
        if r == 1:
            return fronts[:, :, -1].astype(np.int64)
        tails_rem = data.tails[remaining]
        bound = self._bound
        want_lb1 = bound in ("lb1", "combined")
        want_lb2 = bound == "lb2" or (
            bound == "combined" and r - 1 > 1 and bool(data.pairs)
        )
        lb1: Optional[np.ndarray] = None
        if want_lb1:
            lb1 = np.empty((n_pool, r), dtype=np.int64)
            self._kernels.lb1(fronts, p_rem, tails_rem, lb1)
        if not want_lb2:
            return lb1
        if not data.pairs:
            return np.zeros((n_pool, r), dtype=np.int64)
        lb2 = np.empty((n_pool, r), dtype=np.int64)
        self._kernels.lb2(
            fronts,
            remaining,
            data._order_all,
            data._a_all,
            data._b_all,
            data._lag_all,
            data._j_idx,
            data._k_idx,
            tails_rem,
            lb2,
        )
        if lb1 is None:
            return lb2
        return np.maximum(lb1, lb2, out=lb1)


def _numpy_factory(problem: FlowShopProblem) -> FlowShopNumpyPool:
    return FlowShopNumpyPool(problem)


def _numba_factory(problem: FlowShopProblem) -> FlowShopNumbaPool:
    return FlowShopNumbaPool(problem)


def register_pool_kernels() -> None:
    """Idempotently register the flowshop pool factories."""
    register_pool_factory("numpy", FlowShopProblem, _numpy_factory)
    register_pool_factory("numba", FlowShopProblem, _numba_factory)


register_pool_kernels()

"""Problem substrates for the grid-enabled B&B.

* :mod:`repro.problems.flowshop` — the paper's evaluation problem: the
  permutation flow-shop (Taillard benchmark instances, NEH upper
  bounds, one- and two-machine lower bounds).
* :mod:`repro.problems.tsp` — small symmetric TSP (the problem class of
  the Sw24978/D15112/Usa13509 record runs in Table 3).
* :mod:`repro.problems.qap` — quadratic assignment with the
  Gilmore–Lawler bound (Table 3's Nug30 class).
"""

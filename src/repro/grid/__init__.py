"""Grid substrate: discrete-event simulation and a real parallel runtime.

* :mod:`repro.grid.simulator` — a discrete-event model of the paper's
  experimental platform (heterogeneous clusters, volatile cycle-stolen
  hosts, WAN latencies, crashes) executing the true farmer/worker
  protocol state machines under a virtual clock.  This is the
  substitution for Grid'5000 (DESIGN.md §2): the paper's measured
  quantities are protocol statistics, which the simulator reproduces
  at full scale in seconds.
* :mod:`repro.grid.runtime` — a real multiprocessing farmer/worker
  deployment for genuinely parallel exact solves on one machine, using
  the same interval operators and checkpoint files.
"""

"""Shared-memory incumbent broadcast for the multiprocessing runtime.

The paper's sharing rules (§4.4) propagate bound improvements through
the coordinator: a worker pushes, the farmer acks, and *other* workers
only learn the new bound at their next slice boundary.  PR 2 made
slices cheap enough that this boundary-only propagation became a real
pruning tax — a worker can burn a whole slice expanding nodes that a
sibling's two-seconds-old incumbent would have pruned.

:class:`SharedBound` closes that window with one ``multiprocessing.Value``
(a single double) mapped into every process:

* **monotonic-min** — :meth:`offer` only ever lowers the stored cost,
  under the value's lock, so concurrent writers can never regress it;
* **advisory only** — it carries a *cost*, never a solution.  The
  coordinator's ``SOLUTION`` stays the single source of truth for the
  answer; a worker that reads a tighter shared cost prunes harder but
  still proves the same optimum (pruning against any valid upper bound
  is sound).  Losing every shared write would cost pruning, never
  correctness.

Workers only ever *read* the cell — at slice boundaries and mid-slice
through the engine's ``bound_provider`` hook.  The launcher is the sole
writer, broadcasting ``SOLUTION``'s cost after each handled batch, so
the cell never holds a cost the coordinator lacks a solution for.  (A
worker offering its own improvement before the Push round-trip would
break that: if it crashed in the window, the orphaned cost would keep
pruning the equal-cost optimum in every sibling while the solution died
with the worker.)  A bound pushed anywhere still tightens pruning
everywhere within ``bound_poll_nodes`` nodes of the broadcast.
"""

from __future__ import annotations

import math
import multiprocessing as mp
from typing import Any, Callable

__all__ = ["SharedBound"]


class SharedBound:
    """A monotonic-min cost cell shared by every process of a run."""

    def __init__(self, initial: float = math.inf, ctx: Any = None):
        if ctx is None:
            ctx = mp.get_context("fork") if hasattr(mp, "get_context") else mp
        self._cell = ctx.Value("d", float(initial))

    def read(self) -> float:
        """Current advisory upper bound (``inf`` when none known)."""
        return self._cell.value

    def offer(self, cost: float) -> bool:
        """Lower the bound to ``cost`` if it improves; report whether it did.

        Atomic under the cell's lock: with any number of concurrent
        writers the stored value is always the min of everything
        offered so far (never an intermediate or stale overwrite).
        """
        with self._cell.get_lock():
            if cost < self._cell.value:
                self._cell.value = cost
                return True
        return False

    def as_provider(self) -> Callable[[], float]:
        """A zero-arg callable reading the bound — the engine-hook shape."""
        return self.read

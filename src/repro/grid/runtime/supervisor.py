"""Process-level worker supervision — ``repro grid fleet``.

The paper's volatile-node model with real PIDs: a fleet of worker
*slots*, each running ``repro grid worker`` (or any command the caller
builds) as a genuine OS subprocess.  The supervisor watches for exits
and respawns non-clean ones with decorrelated-jitter backoff
(:func:`~repro.grid.net.backoff.decorrelated_jitter`), so a mass kill
does not respawn the whole fleet in lock step against a coordinator
that is itself recovering.

Exit-code contract (what ``repro grid worker`` produces):

* ``0`` — the coordinator said Terminate: the run is over, the slot is
  done and is **not** respawned;
* anything else — a crash, a ``kill -9``, or a worker that gave up on
  an unreachable coordinator: the slot respawns after backoff.

The supervisor never parses worker output and keeps no worker state —
all run state lives in the coordinator's INTERVALS (§4.1), which is
exactly why a respawned worker can simply connect and ask for work.
"""

from __future__ import annotations

import random
import signal
import subprocess
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.grid.net.backoff import decorrelated_jitter

__all__ = ["FleetReport", "RespawnPolicy", "SlotStatus", "WorkerSupervisor"]

#: Builds the argv for one incarnation: ``(slot, incarnation) -> argv``.
CommandFactory = Callable[[int, int], Sequence[str]]


@dataclass(frozen=True)
class RespawnPolicy:
    """How exits are answered."""

    backoff_base: float = 0.2
    backoff_cap: float = 5.0
    #: Per-slot respawn budget; ``None`` is unlimited (a grid node that
    #: keeps dying keeps being restarted — the §4.1 invariant makes
    #: that safe, if wasteful).
    max_respawns: Optional[int] = None

    def __post_init__(self) -> None:
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValueError("need 0 < backoff_base <= backoff_cap")
        if self.max_respawns is not None and self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")


@dataclass
class SlotStatus:
    """Lifecycle record of one worker slot."""

    slot: int
    incarnations: int = 0
    respawns: int = 0
    exit_codes: List[int] = field(default_factory=list)
    pid: Optional[int] = None
    done: bool = False
    #: Why the slot stopped: "clean" (exit 0), "budget" (respawn budget
    #: exhausted), "stopped" (supervisor shut the fleet down), or ""
    #: while still running.
    outcome: str = ""


@dataclass
class FleetReport:
    """What :meth:`WorkerSupervisor.run` observed."""

    slots: List[SlotStatus]
    wall_seconds: float
    timed_out: bool = False

    @property
    def respawns(self) -> int:
        return sum(s.respawns for s in self.slots)

    @property
    def all_clean(self) -> bool:
        return all(s.outcome == "clean" for s in self.slots)


class WorkerSupervisor:
    """Spawn ``workers`` subprocesses and keep them alive until done.

    ``command_for(slot, incarnation)`` builds each incarnation's argv —
    incarnation numbers let callers give every restart a distinct
    worker id, though reusing the slot id is equally valid (the
    coordinator reconciles either way).  ``quiet`` routes child
    stdout/stderr to ``/dev/null`` (tests); by default children inherit
    the supervisor's streams.
    """

    def __init__(
        self,
        command_for: CommandFactory,
        workers: int,
        policy: Optional[RespawnPolicy] = None,
        poll_interval: float = 0.1,
        seed: int = 0,
        quiet: bool = False,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._command_for = command_for
        self._policy = policy or RespawnPolicy()
        self._poll_interval = poll_interval
        self._quiet = quiet
        self._rng = random.Random(seed)
        self._procs: Dict[int, Optional[subprocess.Popen]] = {
            slot: None for slot in range(workers)
        }
        #: monotonic deadline before which a slot must not respawn
        self._respawn_at: Dict[int, float] = {}
        self._backoff: Dict[int, float] = {
            slot: self._policy.backoff_base for slot in range(workers)
        }
        self.slots: List[SlotStatus] = [
            SlotStatus(slot) for slot in range(workers)
        ]

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every slot's first incarnation."""
        for slot in range(len(self.slots)):
            self._spawn(slot)

    def _spawn(self, slot: int) -> None:
        status = self.slots[slot]
        argv = list(self._command_for(slot, status.incarnations))
        sink = subprocess.DEVNULL if self._quiet else None
        proc = subprocess.Popen(argv, stdout=sink, stderr=sink)
        self._procs[slot] = proc
        self._respawn_at.pop(slot, None)
        status.incarnations += 1
        status.pid = proc.pid

    def poll(self, now: Optional[float] = None) -> None:
        """One supervision step: reap exits, schedule/execute respawns."""
        if now is None:
            now = time.monotonic()
        policy = self._policy
        for slot, status in enumerate(self.slots):
            if status.done:
                continue
            proc = self._procs[slot]
            if proc is not None:
                code = proc.poll()
                if code is None:
                    continue  # still running
                status.exit_codes.append(code)
                status.pid = None
                self._procs[slot] = None
                if code == 0:
                    status.done = True
                    status.outcome = "clean"
                    continue
                if (
                    policy.max_respawns is not None
                    and status.respawns >= policy.max_respawns
                ):
                    status.done = True
                    status.outcome = "budget"
                    continue
                delay = decorrelated_jitter(
                    self._rng,
                    policy.backoff_base,
                    self._backoff[slot],
                    policy.backoff_cap,
                )
                self._backoff[slot] = delay
                self._respawn_at[slot] = now + delay
            elif slot in self._respawn_at and now >= self._respawn_at[slot]:
                status.respawns += 1
                self._spawn(slot)

    # ------------------------------------------------------------------
    def pids(self) -> Dict[int, Optional[int]]:
        """Current PID per slot (None while down or after done)."""
        return {slot: s.pid for slot, s in enumerate(self.slots)}

    def kill(self, slot: int, sig: int = signal.SIGKILL) -> Optional[int]:
        """Signal one slot's current incarnation; returns the PID hit.

        Fault injection's entry point — a returned PID was a real
        process that just took a real signal.
        """
        proc = self._procs.get(slot)
        if proc is None or proc.poll() is not None:
            return None
        pid = proc.pid
        proc.send_signal(sig)
        return pid

    def stop(self, sig: int = signal.SIGTERM) -> None:
        """Terminate every live incarnation and mark the fleet done."""
        for slot, status in enumerate(self.slots):
            proc = self._procs[slot]
            if proc is not None and proc.poll() is None:
                try:
                    proc.send_signal(sig)
                    proc.wait(timeout=5.0)
                except (OSError, subprocess.TimeoutExpired):
                    proc.kill()
                    proc.wait(timeout=5.0)
                status.exit_codes.append(proc.returncode)
                self._procs[slot] = None
                status.pid = None
            if not status.done:
                status.done = True
                status.outcome = "stopped"

    def run(self, deadline: Optional[float] = None) -> FleetReport:
        """Supervise until every slot is done (or the deadline passes)."""
        started = time.monotonic()
        self.start()
        timed_out = False
        try:
            while not all(s.done for s in self.slots):
                self.poll()
                if (
                    deadline is not None
                    and time.monotonic() - started > deadline
                ):
                    timed_out = True
                    break
                time.sleep(self._poll_interval)
        finally:
            if timed_out or not all(s.done for s in self.slots):
                self.stop()
        return FleetReport(
            slots=list(self.slots),
            wall_seconds=time.monotonic() - started,
            timed_out=timed_out,
        )

"""Fault injection for the real multiprocessing runtime (§4.1 end-to-end).

The simulator injects failures under a virtual clock; this module does
it against real OS processes and queues so the paper's recovery claims
are exercised where they matter:

* **Coordinator crash** — the launcher discards the live
  :class:`~repro.grid.runtime.coordinator.Coordinator` (losing all
  in-memory state, including the per-worker sequence cache), drops
  every message that arrives during the downtime window, and rebuilds
  via :meth:`Coordinator.recover` from the two checkpoint files.
* **Lossy channel** — :class:`LossyReceiver` / :class:`LossySender`
  wrap the request and reply queues and probabilistically drop,
  duplicate, or delay (reorder) individual protocol messages, driven
  by a seeded ``random.Random`` so every schedule is reproducible.
  :class:`FaultyListener` lifts the same faults to the transport
  layer: it wraps any :class:`~repro.grid.net.transport.Listener`, so
  the identical chaos schedules run over multiprocessing queues and
  over loopback TCP (socket-specific faults — client RSTs, half-open
  peers — live in :mod:`repro.grid.net.tcp` and compose with these).
* **Worker hang** — unlike a crash, a hung worker stays alive but
  silent past its lease; the coordinator releases its interval to the
  load balancer, and the worker's eventual late update reconciles
  through the carve path (redundant work, never lost work).

Every fault is safe by the interval-set invariant: the union of
coordinator copies always covers all unexplored work, so the worst a
fault can cost is re-exploration.

Since PR 3 the chaos harness runs against the pipelined hot path by
default: workers keep an interval update in flight while exploring, so
a coordinator crash, drop, or reorder routinely lands on a pipelined
``Update`` whose ``Reconciled`` reply is still owed — the retry (same
seq) must ride out the fault and reconcile against whatever state the
coordinator recovered.  The shared-memory incumbent is deliberately
out of scope for fault injection: it is advisory (a cost, never the
answer), its monotonic-min writes are atomic under the cell's lock,
and the launcher is its sole writer — only costs whose solutions the
coordinator already holds ever enter the cell, so no crash schedule
can leave it pruning against a solution nobody has.
"""

from __future__ import annotations

import os
import queue as queue_mod
import random
import signal
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.grid.net.transport import Listener, TransportTimeout

__all__ = [
    "CoordinatorCrash",
    "WorkerHang",
    "ChannelFaults",
    "FaultStats",
    "FaultPlan",
    "FaultyListener",
    "LossyReceiver",
    "LossySender",
    "ProcessKill",
    "ProcessKiller",
]


@dataclass(frozen=True)
class CoordinatorCrash:
    """Kill the coordinator after it handled ``after_messages`` messages.

    The launcher then ignores traffic for ``downtime`` seconds (the
    farmer is down: messages sent to it are lost) before recovering
    from the checkpoint store.
    """

    after_messages: int
    downtime: float = 0.25


@dataclass(frozen=True)
class WorkerHang:
    """Make a worker sleep ``seconds`` after ``after_updates`` updates.

    The worker does not crash — it goes silent long enough for its
    lease to expire, then resumes and reports stale progress.
    """

    after_updates: int
    seconds: float = 1.0


@dataclass(frozen=True)
class ChannelFaults:
    """Per-message fault probabilities for a lossy queue wrapper."""

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        total = self.drop + self.duplicate + self.delay
        if not 0.0 <= total <= 1.0:
            raise ValueError(
                f"fault probabilities must sum to [0, 1], got {total}"
            )


@dataclass
class FaultStats:
    """How many messages each fault actually hit (both directions)."""

    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
        }

    def total(self) -> int:
        return self.dropped + self.duplicated + self.delayed


@dataclass
class FaultPlan:
    """Everything that goes wrong during one parallel run.

    ``worker_crashes`` maps worker index -> crash after that many
    updates (same semantics as ``RuntimeConfig.crash_workers``);
    ``worker_hangs`` maps worker index -> :class:`WorkerHang`.
    ``seed`` drives the lossy-channel RNG.
    """

    coordinator_crashes: List[CoordinatorCrash] = field(default_factory=list)
    channel: Optional[ChannelFaults] = None
    worker_crashes: Dict[int, int] = field(default_factory=dict)
    worker_hangs: Dict[int, WorkerHang] = field(default_factory=dict)
    seed: int = 0

    def is_empty(self) -> bool:
        return (
            not self.coordinator_crashes
            and self.channel is None
            and not self.worker_crashes
            and not self.worker_hangs
        )

    @classmethod
    def chaos(cls, seed: int, workers: int = 3) -> "FaultPlan":
        """A randomized but reproducible schedule mixing every fault kind.

        Guaranteed non-empty: every seed injects at least a lossy
        channel, and roughly half the seeds add a coordinator crash,
        a worker crash, and/or a worker hang on top.
        """
        rng = random.Random(seed)
        plan = cls(seed=seed)
        plan.channel = ChannelFaults(
            drop=rng.uniform(0.01, 0.10),
            duplicate=rng.uniform(0.01, 0.10),
            delay=rng.uniform(0.01, 0.10),
        )
        if rng.random() < 0.5:
            plan.coordinator_crashes = [
                CoordinatorCrash(
                    after_messages=rng.randint(4, 40),
                    downtime=rng.uniform(0.1, 0.4),
                )
            ]
        if rng.random() < 0.5 and workers > 1:
            plan.worker_crashes = {
                rng.randrange(workers): rng.randint(1, 4)
            }
        if rng.random() < 0.5:
            victims = [
                i for i in range(workers) if i not in plan.worker_crashes
            ]
            if victims:
                plan.worker_hangs = {
                    rng.choice(victims): WorkerHang(
                        after_updates=rng.randint(1, 4),
                        seconds=rng.uniform(0.4, 0.9),
                    )
                }
        return plan


class LossyReceiver:
    """Wrap the coordinator's request-queue ``get`` with channel faults.

    Dropped messages are silently discarded (the worker's retry layer
    recovers), duplicated messages are delivered twice back to back
    (the coordinator's sequence cache dedups), and delayed messages
    are buffered and re-inserted behind later traffic (reordering,
    which the sequence numbers make harmless).  A buffered message is
    always flushed when the underlying queue runs empty, so delay can
    never turn into loss.
    """

    def __init__(self, queue: Any, faults: ChannelFaults, rng: random.Random,
                 stats: Optional[FaultStats] = None):
        self._queue = queue
        self._faults = faults
        self._rng = rng
        self.stats = stats if stats is not None else FaultStats()
        self._pending: deque = deque()  # duplicates / released delays
        self._delayed: deque = deque()

    def get(self, timeout: Optional[float] = None) -> Any:
        while True:
            if self._pending:
                return self._pending.popleft()
            try:
                message = self._queue.get(timeout=timeout)
            except queue_mod.Empty:
                if self._delayed:
                    return self._delayed.popleft()
                raise
            roll = self._rng.random()
            f = self._faults
            if roll < f.drop:
                self.stats.dropped += 1
                continue
            if roll < f.drop + f.duplicate:
                self.stats.duplicated += 1
                self._pending.append(message)
                return message
            if roll < f.drop + f.duplicate + f.delay:
                self.stats.delayed += 1
                self._delayed.append(message)
                continue
            if self._delayed and self._rng.random() < 0.5:
                self._pending.append(self._delayed.popleft())
            return message


class LossySender:
    """Wrap a worker's reply-queue ``put`` with channel faults.

    A dropped reply forces the worker's RPC retry (the coordinator
    then answers from its sequence cache); a delayed reply is emitted
    *after* the next one, exercising the worker's stale-reply discard.
    ``flush`` releases any still-buffered replies — the launcher calls
    it on idle iterations so a delayed terminal reply cannot strand a
    worker forever.
    """

    def __init__(self, queue: Any, faults: ChannelFaults, rng: random.Random,
                 stats: Optional[FaultStats] = None):
        self._queue = queue
        self._faults = faults
        self._rng = rng
        self.stats = stats if stats is not None else FaultStats()
        self._delayed: deque = deque()

    def put(self, item: Any) -> None:
        roll = self._rng.random()
        f = self._faults
        if roll < f.drop:
            self.stats.dropped += 1
            self.flush()
            return
        if roll < f.drop + f.duplicate:
            self.stats.duplicated += 1
            self._queue.put(item)
            self._queue.put(item)
            self.flush()
            return
        if roll < f.drop + f.duplicate + f.delay:
            self.stats.delayed += 1
            self._delayed.append(item)
            return
        self._queue.put(item)
        self.flush()

    def flush(self) -> None:
        while self._delayed:
            self._queue.put(self._delayed.popleft())


class _ListenerRecvShim:
    """Queue-shaped view of a Listener's inbox for :class:`LossyReceiver`."""

    def __init__(self, listener: Listener):
        self._listener = listener

    def get(self, timeout: Optional[float] = None) -> Any:
        try:
            return self._listener.recv(timeout=timeout)
        except TransportTimeout:
            raise queue_mod.Empty from None


class _WorkerSendShim:
    """Queue-shaped view of one worker's replies for :class:`LossySender`."""

    def __init__(self, listener: Listener, worker: str):
        self._listener = listener
        self._worker = worker

    def put(self, item: Any) -> None:
        self._listener.send(self._worker, item)


class FaultyListener(Listener):
    """Channel faults over *any* transport's listener.

    Wraps the coordinator side of a transport with the same
    :class:`LossyReceiver` / :class:`LossySender` machinery the queue
    runtime has always used — via queue-shaped shims, so drop /
    duplicate / delay semantics (and their statistics) are identical
    whether the traffic underneath is a multiprocessing queue or a TCP
    stream.  One lossy sender per worker keeps the per-destination
    delay buffers independent, exactly like the per-worker reply
    queues did.
    """

    def __init__(
        self,
        listener: Listener,
        faults: ChannelFaults,
        rng: random.Random,
        stats: Optional[FaultStats] = None,
    ):
        self._listener = listener
        self._faults = faults
        self._rng = rng
        self.stats = stats if stats is not None else FaultStats()
        self._receiver = LossyReceiver(
            _ListenerRecvShim(listener), faults, rng, self.stats
        )
        self._senders: Dict[str, LossySender] = {}

    def recv(self, timeout: Optional[float] = None) -> Any:
        try:
            return self._receiver.get(timeout=timeout)
        except queue_mod.Empty:
            raise TransportTimeout(
                f"no message within {timeout}s"
            ) from None

    def send(self, worker: str, reply: Any) -> None:
        sender = self._senders.get(worker)
        if sender is None:
            sender = LossySender(
                _WorkerSendShim(self._listener, worker),
                self._faults,
                self._rng,
                self.stats,
            )
            self._senders[worker] = sender
        sender.put(reply)

    def flush(self) -> None:
        for sender in self._senders.values():
            sender.flush()
        self._listener.flush()

    @property
    def address(self) -> Optional[Tuple[str, int]]:
        return self._listener.address

    def close(self) -> None:
        self._listener.close()


@dataclass(frozen=True)
class ProcessKill:
    """Signal a *real* process after a wall-clock delay.

    The process-level companion of :class:`CoordinatorCrash`: instead
    of simulating a failure inside the launcher, the schedule delivers
    an actual OS signal (SIGKILL by default — no handlers, no
    cleanup, no final checkpoint) to a live PID.  Used by the crash
    e2e suite against supervisor-spawned workers and the standalone
    server subprocess.
    """

    after_seconds: float
    sig: int = signal.SIGKILL

    def __post_init__(self) -> None:
        if self.after_seconds < 0:
            raise ValueError("after_seconds must be >= 0")


class ProcessKiller:
    """Arms :class:`ProcessKill` schedules against live processes.

    Targets are *resolvers* — zero-argument callables returning the
    PID to hit (or ``None`` to skip), evaluated at fire time.  That
    lets a schedule aim at "whatever incarnation slot 2 runs when the
    timer fires" rather than a PID that a supervisor respawn may have
    already replaced.  Every delivered signal is recorded in
    ``kills`` as ``(pid, sig)``.
    """

    def __init__(self) -> None:
        self._timers: List[threading.Timer] = []
        self._lock = threading.Lock()
        self.kills: List[Tuple[int, int]] = []

    def arm(
        self, resolve: Callable[[], Optional[int]], kill: ProcessKill
    ) -> threading.Timer:
        def fire() -> None:
            pid = resolve()
            if pid is None:
                return
            try:
                os.kill(pid, kill.sig)
            except (ProcessLookupError, PermissionError):
                return  # already gone (or not ours): nothing to record
            with self._lock:
                self.kills.append((pid, kill.sig))

        timer = threading.Timer(kill.after_seconds, fire)
        timer.daemon = True
        with self._lock:
            self._timers.append(timer)
        timer.start()
        return timer

    def arm_pid(self, pid: int, kill: ProcessKill) -> threading.Timer:
        """Convenience: a schedule against one already-known PID."""
        return self.arm(lambda: pid, kill)

    def cancel(self) -> None:
        """Cancel every pending timer (fired ones are unaffected)."""
        with self._lock:
            timers = list(self._timers)
        for timer in timers:
            timer.cancel()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for armed timers to finish firing (test teardown)."""
        with self._lock:
            timers = list(self._timers)
        for timer in timers:
            timer.join(timeout)

"""The real coordinator: INTERVALS + SOLUTION behind a message loop.

Pure protocol logic — no process or queue handling here (the launcher
owns those), which keeps the coordinator unit-testable by feeding it
messages directly.  The state and operators are exactly the ones the
simulator uses: :class:`~repro.core.interval_set.IntervalSet`,
:class:`~repro.core.stats.Incumbent`, and the two-file
:class:`~repro.core.checkpoint.CheckpointStore`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Union

from repro.core.checkpoint import CheckpointStore
from repro.core.interval import Interval
from repro.core.interval_set import IntervalSet
from repro.core.stats import Incumbent
from repro.exceptions import RuntimeProtocolError
from repro.grid.runtime.protocol import (
    Ack,
    Bye,
    GrantWork,
    Push,
    Reconciled,
    Request,
    Terminate,
    Update,
)

__all__ = ["Coordinator"]


class Coordinator:
    """Handles worker messages against the INTERVALS/SOLUTION state.

    Parameters
    ----------
    root_interval:
        The whole search space (range of the root node).
    duplication_threshold:
        §4.2's split-vs-duplicate cutoff.
    store:
        Optional checkpoint store; when given, :meth:`maybe_checkpoint`
        persists INTERVALS and SOLUTION every ``checkpoint_period``
        wall seconds, and :meth:`recover` restores them.
    lease_seconds:
        When set, a worker that owns an interval but has not been
        heard from for this long is presumed dead: :meth:`check_leases`
        releases its copy to the load balancer.  A worker that was
        merely slow reconciles later through the carve path — the
        interval-set invariant makes a wrongly-expired lease cost
        redundancy, never lost work.
    """

    def __init__(
        self,
        root_interval: Interval,
        duplication_threshold: int = 1,
        store: Optional[CheckpointStore] = None,
        checkpoint_period: float = 5.0,
        initial_best: Optional[Incumbent] = None,
        lease_seconds: Optional[float] = None,
        journal: bool = True,
    ):
        self.intervals = IntervalSet.initial(root_interval, duplication_threshold)
        self.solution = (initial_best or Incumbent()).copy()
        self.store = store
        self.checkpoint_period = checkpoint_period
        self.lease_seconds = lease_seconds
        self.journal_enabled = journal
        self.journal_replayed = 0
        self.journal_leaves_replayed = 0
        self._last_checkpoint = time.monotonic()
        self._powers: Dict[str, float] = {}
        # At-least-once RPC state: per-worker highest seq seen and the
        # reply it produced, so retries and channel duplicates are
        # answered idempotently instead of re-applied.
        self._last_seq: Dict[str, int] = {}
        self._last_reply: Dict[str, Any] = {}
        self._last_heard: Dict[str, float] = {}
        self.terminated = False
        # Table 2-style counters
        self.worker_checkpoint_ops = 0
        self.work_allocations = 0
        self.nodes_explored = 0
        self.leaves_consumed = 0
        self.improvements = 0
        self.duplicates_ignored = 0
        self.leases_expired: List[str] = []
        self.byes: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        store: CheckpointStore,
        root_interval: Interval,
        duplication_threshold: int = 1,
        checkpoint_period: float = 5.0,
        lease_seconds: Optional[float] = None,
        journal: bool = True,
    ) -> "Coordinator":
        """Restart after a farmer failure: reload the two files (§4.1),
        then replay the reconciliation journal over the snapshot so the
        recovery window shrinks to the last reconciled update."""
        state = store.load_state(
            root_interval, duplication_threshold, replay_journal=journal
        )
        coord = cls(
            root_interval,
            duplication_threshold,
            store,
            checkpoint_period,
            initial_best=state.incumbent,
            lease_seconds=lease_seconds,
            journal=journal,
        )
        if state.intervals is not None:
            coord.intervals = state.intervals
        coord.journal_replayed = state.replayed_records
        coord.journal_leaves_replayed = state.replayed_leaves
        return coord

    # ------------------------------------------------------------------
    def handle(self, message: Any) -> Optional[Any]:
        """Process one worker message; return the reply (None for Bye).

        Sequenced messages (``seq > 0``) are deduplicated: a seq equal
        to the last one processed for that worker returns the cached
        reply without touching state (retries, channel duplicates); an
        older seq returns ``None`` (a reordered stale duplicate — the
        worker has already moved past it).
        """
        worker = getattr(message, "worker", None)
        if worker is not None:
            self._last_heard[worker] = time.monotonic()
        seq = getattr(message, "seq", 0)
        if worker is not None and seq > 0:
            last = self._last_seq.get(worker, 0)
            if seq == last:
                self.duplicates_ignored += 1
                return self._last_reply.get(worker)
            if seq < last:
                self.duplicates_ignored += 1
                return None
        reply = self._dispatch(message)
        if worker is not None and seq > 0:
            self._last_seq[worker] = seq
            if reply is not None:
                reply.seq = seq
            self._last_reply[worker] = reply
        return reply

    def _dispatch(self, message: Any) -> Optional[Any]:
        if isinstance(message, Request):
            return self._on_request(message)
        if isinstance(message, Update):
            return self._on_update(message)
        if isinstance(message, Push):
            return self._on_push(message)
        if isinstance(message, Bye):
            self.byes[message.worker] = message.stats
            # Best-effort ack so the worker's retry helper can stop
            # re-sending; a legacy unsequenced Bye (seq 0) gets one
            # too — the launcher still delivers it, but the worker has
            # already exited, so it sits unread in the reply queue.
            return Ack(self.solution.cost)
        raise RuntimeProtocolError(
            f"coordinator cannot handle {type(message).__name__}"
        )

    def _on_request(self, msg: Request) -> Union[GrantWork, Terminate]:
        self._powers[msg.worker] = msg.power
        if self.intervals.is_empty():
            self.terminated = True
            return Terminate(self.solution.cost)
        assignment = self.intervals.assign(msg.worker, msg.power, self._powers)
        if assignment is None:
            self.terminated = True
            return Terminate(self.solution.cost)
        self.work_allocations += 1
        return GrantWork(assignment.interval.as_tuple(), self.solution.cost)

    def _on_update(self, msg: Update) -> Reconciled:
        reported = Interval.from_tuple(msg.interval)
        explored: Optional[Interval] = None
        if self._journaling():
            # Owned path only: everything between the copy's begin and
            # the reported begin is definitely explored (eq. 14's left
            # remainder).  The unowned-reclaim path cannot know what
            # was explored, so it journals nothing — replay then keeps
            # that work, costing redundancy, never loss.
            rid = self.intervals.record_for_worker(msg.worker)
            if rid is not None:
                owned = self.intervals.records()[rid].interval
                cut = min(max(reported.begin, owned.begin), owned.end)
                explored = Interval(owned.begin, cut)
        merged = self.intervals.update(msg.worker, reported)
        if explored is not None and not explored.is_empty():
            assert self.store is not None
            self.store.journal_explored(explored)
        self.worker_checkpoint_ops += 1
        self.nodes_explored += msg.nodes
        self.leaves_consumed += msg.consumed
        if self.intervals.is_empty():
            self.terminated = True
        return Reconciled(merged.as_tuple(), self.solution.cost)

    def _on_push(self, msg: Push) -> Ack:
        if self.solution.update(msg.cost, msg.solution):
            self.improvements += 1
            if self._journaling():
                assert self.store is not None
                self.store.journal_push(msg.cost, msg.solution)
        return Ack(self.solution.cost)

    def _journaling(self) -> bool:
        return self.store is not None and self.journal_enabled

    # ------------------------------------------------------------------
    def release_worker(self, worker: str) -> None:
        """A worker process died: orphan its interval (§4.1).

        The sequence cache is kept — if the worker is alive after all
        (an expired lease on a slow worker), its retries must still be
        deduplicated; only the lease clock restarts.
        """
        self.intervals.release(worker)
        self._powers.pop(worker, None)
        self._last_heard.pop(worker, None)

    def check_leases(self, now: Optional[float] = None) -> List[str]:
        """Release every interval owner silent past ``lease_seconds``.

        Returns the workers released this call.  A worker first seen
        here (it owns work but predates lease tracking — e.g. after a
        coordinator recovery lost the clocks) starts a fresh lease
        rather than being released immediately.
        """
        if self.lease_seconds is None:
            return []
        if now is None:
            now = time.monotonic()
        owners: set = set()
        for rec in self.intervals.records().values():
            owners |= rec.owners
        expired: List[str] = []
        for worker in sorted(owners, key=str):
            heard = self._last_heard.get(worker)
            if heard is None:
                self._last_heard[worker] = now
            elif now - heard > self.lease_seconds:
                self.release_worker(worker)
                expired.append(worker)
        self.leases_expired.extend(expired)
        return expired

    def maybe_checkpoint(self, force: bool = False) -> bool:
        """Persist INTERVALS and SOLUTION when the period elapsed."""
        if self.store is None:
            return False
        now = time.monotonic()
        if not force and now - self._last_checkpoint < self.checkpoint_period:
            return False
        self.store.save(self.intervals, self.solution)
        self._last_checkpoint = now
        return True

    def redundant_rate(self, total_leaves: int) -> float:
        if self.leaves_consumed <= 0:
            return 0.0
        # repro-check: ignore[RC01] -- reporting ratio for Table 2, not interval state
        return max(0, self.leaves_consumed - total_leaves) / self.leaves_consumed

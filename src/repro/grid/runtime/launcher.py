"""Launcher: spawn worker processes, pump the coordinator, collect results.

``solve_parallel`` is the user-facing call: it builds the coordinator
in the parent process, forks ``workers`` B&B processes, routes queue
messages until the termination condition (INTERVALS empty) is reached
and every live worker said goodbye, and returns the proved optimum
with aggregate statistics.

Worker death is detected through process sentinels: a worker that
exits without a Bye gets its interval released (orphaned), which the
load balancer then hands to the survivors — the §4.1 recovery path,
exercised for real by ``crash_workers``.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.checkpoint import CheckpointStore
from repro.core.interval import Interval
from repro.core.stats import Incumbent
from repro.exceptions import RuntimeProtocolError
from repro.grid.runtime.bbprocess import worker_main
from repro.grid.runtime.coordinator import Coordinator
from repro.grid.runtime.protocol import Bye, ProblemSpec

__all__ = ["RuntimeConfig", "ParallelResult", "solve_parallel"]


@dataclass
class RuntimeConfig:
    """Tuning of a parallel run."""

    workers: int = 2
    update_nodes: int = 2000  # slice size between interval updates
    duplication_threshold: int = 64
    checkpoint_dir: Optional[Path] = None
    checkpoint_period: float = 2.0
    initial_upper_bound: float = float("inf")
    initial_solution: Any = None
    deadline: float = 300.0  # wall-clock safety net (seconds)
    crash_workers: Dict[int, int] = field(default_factory=dict)
    # worker index -> crash after that many updates (fault injection)


@dataclass
class ParallelResult:
    """Outcome of a parallel resolution."""

    cost: float
    solution: Any
    optimal: bool
    wall_seconds: float
    workers: int
    work_allocations: int
    checkpoint_operations: int
    nodes_explored: int
    redundant_rate: float
    worker_stats: Dict[str, Dict[str, int]]
    crashed_workers: List[str]


def solve_parallel(spec: ProblemSpec, config: Optional[RuntimeConfig] = None) -> ParallelResult:
    """Exactly solve ``spec`` with a farmer and N worker processes."""
    config = config or RuntimeConfig()
    if config.workers < 1:
        raise RuntimeProtocolError("need at least one worker")
    problem = spec.build()
    total_leaves = problem.total_leaves()
    store = (
        CheckpointStore(Path(config.checkpoint_dir))
        if config.checkpoint_dir is not None
        else None
    )
    coordinator = Coordinator(
        Interval(0, total_leaves),
        duplication_threshold=config.duplication_threshold,
        store=store,
        checkpoint_period=config.checkpoint_period,
        initial_best=Incumbent(
            config.initial_upper_bound, config.initial_solution
        ),
    )

    ctx = mp.get_context("fork") if hasattr(mp, "get_context") else mp
    request_queue = ctx.Queue()
    reply_queues = {}
    processes: Dict[str, Any] = {}
    for i in range(config.workers):
        worker_id = f"worker-{i}"
        reply_queues[worker_id] = ctx.Queue()
        proc = ctx.Process(
            target=worker_main,
            args=(worker_id, spec, request_queue, reply_queues[worker_id]),
            kwargs={
                "update_nodes": config.update_nodes,
                "crash_after_updates": config.crash_workers.get(i),
            },
            daemon=True,
        )
        processes[worker_id] = proc
        proc.start()

    started = time.monotonic()
    done_workers: set = set()
    crashed: List[str] = []
    try:
        while len(done_workers) < len(processes):
            if time.monotonic() - started > config.deadline:
                raise RuntimeProtocolError(
                    f"parallel solve exceeded the {config.deadline}s deadline"
                )
            coordinator.maybe_checkpoint()
            try:
                message = request_queue.get(timeout=0.05)
            except queue_mod.Empty:
                # Only with a drained queue do we look for crashes —
                # a worker that exits right after its Bye must not be
                # misread as dead before the Bye is processed.
                for worker_id, proc in processes.items():
                    if worker_id not in done_workers and not proc.is_alive():
                        done_workers.add(worker_id)
                        crashed.append(worker_id)
                        coordinator.release_worker(worker_id)
                continue
            reply = coordinator.handle(message)
            if isinstance(message, Bye):
                done_workers.add(message.worker)
                if message.worker in crashed:
                    crashed.remove(message.worker)  # late Bye won the race
                continue
            if reply is not None:
                reply_queues[message.worker].put(reply)
    finally:
        coordinator.maybe_checkpoint(force=True)
        for proc in processes.values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)

    optimal = coordinator.intervals.is_empty()
    return ParallelResult(
        cost=coordinator.solution.cost,
        solution=coordinator.solution.solution,
        optimal=optimal,
        wall_seconds=time.monotonic() - started,
        workers=config.workers,
        work_allocations=coordinator.work_allocations,
        checkpoint_operations=coordinator.worker_checkpoint_ops,
        nodes_explored=coordinator.nodes_explored,
        redundant_rate=coordinator.redundant_rate(total_leaves),
        worker_stats=dict(coordinator.byes),
        crashed_workers=crashed,
    )

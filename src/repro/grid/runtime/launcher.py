"""Launcher: spawn worker processes, pump the coordinator, collect results.

``solve_parallel`` is the user-facing call: it builds the coordinator
in the parent process, forks ``workers`` B&B processes, routes queue
messages until the termination condition (INTERVALS empty) is reached
and every live worker said goodbye, and returns the proved optimum
with aggregate statistics.  The pump wakes on traffic (or every
``poll_interval`` seconds) and batch-drains the whole request queue
per wake, so pipelining workers never serialize behind the poll; a
shared-memory advisory bound (:class:`~repro.grid.runtime.shared.SharedBound`)
broadcasts incumbent improvements to every worker without a
round-trip, while the coordinator's ``SOLUTION`` stays the source of
truth for the answer.

Worker death is detected two ways: process sentinels (a worker that
exits without a Bye gets its interval released) and, when
``lease_seconds`` is set, lease expiry — a worker silent for too long
is presumed dead and its interval goes back to the load balancer even
if the OS still shows the process alive (a hang, not a crash).

A :class:`~repro.grid.runtime.faults.FaultPlan` turns the run into a
chaos experiment: the coordinator itself can be crashed mid-run (state
dropped, messages lost during the downtime, then recovered from the
two checkpoint files), and the channel can drop, duplicate, or reorder
individual messages.  The §4.1 invariant — the union of coordinator
interval copies always covers all unexplored work — makes every such
run terminate with the same proved optimum, at worst re-exploring.

All traffic runs over a pluggable transport
(:mod:`repro.grid.net`): ``transport="inprocess"`` is the original
multiprocessing-queue wiring, ``transport="tcp"`` puts a real loopback
TCP coordinator server between the same forked workers — byte-exact
framing, reconnects and all — without changing a line of the pump or
the worker loop.  Channel faults wrap the listener generically, and
``socket_faults`` adds TCP-only chaos (client-side RSTs mid-run).
"""

from __future__ import annotations

import multiprocessing as mp
import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.checkpoint import CheckpointStore
from repro.core.interval import Interval
from repro.core.stats import Incumbent
from repro.exceptions import RuntimeProtocolError
from repro.grid.net.transport import Transport, TransportTimeout
from repro.grid.runtime.bbprocess import worker_main
from repro.grid.runtime.coordinator import Coordinator
from repro.grid.runtime.faults import FaultPlan, FaultStats, FaultyListener
from repro.grid.runtime.protocol import Bye, ProblemSpec
from repro.grid.runtime.shared import SharedBound

__all__ = ["RuntimeConfig", "ParallelResult", "solve_parallel"]


@dataclass
class RuntimeConfig:
    """Tuning of a parallel run.

    ``update_nodes`` is the *first* slice's node budget; with
    ``update_period`` set (the default), each worker then adapts its
    slice size toward that many wall-clock seconds of exploration per
    interval update (``update_period=None`` restores the fixed-size
    slices).  ``pipeline_updates`` overlaps each Update round-trip
    with the next slice of exploration; ``shared_incumbent`` maps a
    shared-memory advisory bound into every process, polled mid-slice
    every ``bound_poll_nodes`` nodes.  ``poll_interval`` is the
    coordinator pump's queue wait — each wake batch-drains everything
    queued, so it bounds idle latency, not throughput.

    ``root_interval`` restricts the run to one ``(begin, end)`` slice
    of the tree's leaf numbering (the paper's work unit) instead of the
    full range — the parallel counterpart of ``solve(..., interval=…)``;
    the proved optimum is then the optimum over that slice.

    ``kernel_backend`` / ``pool_size`` / ``pool_scan_budget``
    configure every worker explorer's pool-evaluation bound kernels
    (see :mod:`repro.core.kernels`): ``None`` auto-selects a
    registered pool kernel, ``"off"`` disables pooling (per-family
    batched bounds only), a name (``"numpy"``/``"numba"``/``"cupy"``)
    forces that backend.  ``frontier`` selects the exploration order
    per worker: ``"dfs"`` (the paper's, byte-identical stats) or
    ``"wave"`` (same-depth waves that fill pool kernels to
    ``pool_size``; identical optimum and proof, honest node counts),
    with ``frontier_width`` bounding wave memory before spilling to
    DFS.

    ``transport`` selects the wire between coordinator and workers:
    ``"inprocess"`` (fork-inherited multiprocessing queues) or
    ``"tcp"`` (a loopback TCP server; the same forked workers connect
    as network clients, with framing, heartbeats and reconnects).
    ``socket_faults`` is a :class:`~repro.grid.net.tcp.SocketFaults`
    applied to every worker's client connection (TCP only).
    """

    workers: int = 2
    update_nodes: int = 2000  # first slice size between interval updates
    update_period: Optional[float] = 0.25  # target seconds per slice
    min_slice_nodes: int = 64
    max_slice_nodes: int = 1 << 20
    pipeline_updates: bool = True
    shared_incumbent: bool = True
    bound_poll_nodes: int = 256
    kernel_backend: Optional[str] = None  # pool kernels: auto/off/name
    pool_size: int = 64  # frontier entries per pool evaluation
    pool_scan_budget: Optional[int] = None  # DFS pool-refill scan cap
    frontier: str = "dfs"  # exploration order: "dfs" | "wave"
    frontier_width: int = 32768  # wave stack cap before DFS spill
    poll_interval: float = 0.05  # coordinator pump queue wait
    duplication_threshold: int = 64
    checkpoint_dir: Optional[Path] = None
    checkpoint_period: float = 2.0
    journal: bool = True  # reconciliation journal between snapshots
    initial_upper_bound: float = float("inf")
    initial_solution: Any = None
    deadline: float = 300.0  # wall-clock safety net (seconds)
    reply_timeout: float = 60.0  # worker RPC wait before a retry
    max_retries: int = 2  # RPC retries (same seq, capped backoff)
    lease_seconds: Optional[float] = None  # silent-owner expiry (off by default)
    root_interval: Optional[Tuple[int, int]] = None  # leaf slice to solve
    transport: str = "inprocess"  # "inprocess" | "tcp"
    socket_faults: Optional[Any] = None  # SocketFaults, TCP only
    crash_workers: Dict[int, int] = field(default_factory=dict)
    # worker index -> crash after that many updates (fault injection)
    fault_plan: Optional[FaultPlan] = None


@dataclass
class ParallelResult:
    """Outcome of a parallel resolution."""

    cost: float
    solution: Any
    optimal: bool
    wall_seconds: float
    workers: int
    work_allocations: int
    checkpoint_operations: int
    nodes_explored: int
    redundant_rate: float
    worker_stats: Dict[str, Dict[str, float]]
    crashed_workers: List[str]
    coordinator_restarts: int = 0
    leases_expired: List[str] = field(default_factory=list)
    duplicates_ignored: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)
    # Aggregate coordination-overhead breakdown, summed over the
    # workers that said goodbye: wall seconds spent exploring vs wall
    # seconds blocked waiting on RPC replies.
    explore_seconds: float = 0.0
    rpc_wait_seconds: float = 0.0


def _build_transport(config: RuntimeConfig, ctx: Any) -> Transport:
    """Instantiate the configured transport backend."""
    if config.transport == "inprocess":
        if config.socket_faults is not None:
            raise RuntimeProtocolError(
                "socket_faults needs transport='tcp'"
            )
        from repro.grid.net.inprocess import InProcessTransport

        return InProcessTransport(ctx)
    if config.transport == "tcp":
        # Imported here, not at module top: repro.grid.net.tcp needs
        # the framing module, which imports this package back — the
        # lazy import keeps `import repro.grid.net` from re-entering a
        # half-initialized module either way around.
        from repro.grid.net.tcp import TcpTransport

        return TcpTransport(faults=config.socket_faults)
    raise RuntimeProtocolError(
        f"unknown transport {config.transport!r} "
        f"(expected 'inprocess' or 'tcp')"
    )


def solve_parallel(spec: ProblemSpec, config: Optional[RuntimeConfig] = None) -> ParallelResult:
    """Exactly solve ``spec`` with a farmer and N worker processes."""
    config = config or RuntimeConfig()
    if config.workers < 1:
        raise RuntimeProtocolError("need at least one worker")
    plan = config.fault_plan or FaultPlan()
    crash_workers = dict(config.crash_workers)
    for idx, after in plan.worker_crashes.items():
        crash_workers.setdefault(idx, after)

    problem = spec.build()
    total_leaves = problem.total_leaves()
    root = Interval(0, total_leaves)
    if config.root_interval is not None:
        root = Interval.from_tuple(config.root_interval).intersect(root)
        if root.is_empty():
            raise RuntimeProtocolError(
                f"root_interval {config.root_interval} does not overlap "
                f"[0, {total_leaves})"
            )
        total_leaves = root.length
    checkpoint_dir = config.checkpoint_dir
    temp_ckpt: Optional[tempfile.TemporaryDirectory] = None
    if checkpoint_dir is None and plan.coordinator_crashes:
        # A coordinator crash is only recoverable through the two
        # checkpoint files; give the run a store if the caller didn't.
        temp_ckpt = tempfile.TemporaryDirectory(prefix="repro-ckpt-")
        checkpoint_dir = Path(temp_ckpt.name)
    store = (
        CheckpointStore(Path(checkpoint_dir))
        if checkpoint_dir is not None
        else None
    )
    coordinator = Coordinator(
        root,
        duplication_threshold=config.duplication_threshold,
        store=store,
        checkpoint_period=config.checkpoint_period,
        initial_best=Incumbent(
            config.initial_upper_bound, config.initial_solution
        ),
        lease_seconds=config.lease_seconds,
        journal=config.journal,
    )

    ctx = mp.get_context("fork") if hasattr(mp, "get_context") else mp
    shared_bound = (
        SharedBound(config.initial_upper_bound, ctx=ctx)
        if config.shared_incumbent
        else None
    )
    transport = _build_transport(config, ctx)
    listener: Any = transport.listen()
    fault_stats = FaultStats()
    fault_rng = random.Random(plan.seed)
    if plan.channel is not None:
        listener = FaultyListener(
            listener, plan.channel, fault_rng, fault_stats
        )
    processes: Dict[str, Any] = {}
    for i in range(config.workers):
        worker_id = f"worker-{i}"
        connector = transport.connector_for(worker_id)
        hang = plan.worker_hangs.get(i)
        proc = ctx.Process(
            target=worker_main,
            args=(worker_id, spec, connector),
            kwargs={
                "update_nodes": config.update_nodes,
                "reply_timeout": config.reply_timeout,
                "max_retries": config.max_retries,
                "crash_after_updates": crash_workers.get(i),
                "hang_after_updates": hang.after_updates if hang else None,
                "hang_seconds": hang.seconds if hang else 0.0,
                "update_period": config.update_period,
                "min_slice_nodes": config.min_slice_nodes,
                "max_slice_nodes": config.max_slice_nodes,
                "pipeline_updates": config.pipeline_updates,
                "shared_bound": shared_bound,
                "bound_poll_nodes": config.bound_poll_nodes,
                "kernel_backend": config.kernel_backend,
                "pool_size": config.pool_size,
                "pool_scan_budget": config.pool_scan_budget,
                "frontier": config.frontier,
                "frontier_width": config.frontier_width,
            },
            daemon=True,
        )
        processes[worker_id] = proc
        proc.start()

    crash_schedule = sorted(
        plan.coordinator_crashes, key=lambda c: c.after_messages
    )
    next_crash = crash_schedule.pop(0) if crash_schedule else None
    coordinator_restarts = 0
    leases_expired: List[str] = []
    duplicates_ignored = 0
    messages_handled = 0
    down_until: Optional[float] = None

    started = time.monotonic()
    done_workers: set = set()
    crashed: List[str] = []
    # Bye stats survive coordinator restarts here (recover() starts
    # with an empty byes dict), like done_workers does.
    byes: Dict[str, Dict[str, float]] = {}
    try:
        while len(done_workers) < len(processes):
            now = time.monotonic()
            if now - started > config.deadline:
                raise RuntimeProtocolError(
                    f"parallel solve exceeded the {config.deadline}s deadline"
                )

            if down_until is not None:
                # The farmer is down: whatever workers send is lost
                # (they will retry).  When the downtime elapses, the
                # coordinator restarts from the checkpoint files.
                if now < down_until:
                    try:
                        listener.recv(timeout=min(0.05, down_until - now))
                    except TransportTimeout:
                        pass
                    continue
                duplicates_ignored += coordinator.duplicates_ignored
                leases_expired.extend(coordinator.leases_expired)
                byes.update(coordinator.byes)
                coordinator = Coordinator.recover(
                    store,
                    root,
                    duplication_threshold=config.duplication_threshold,
                    checkpoint_period=config.checkpoint_period,
                    lease_seconds=config.lease_seconds,
                    journal=config.journal,
                )
                coordinator_restarts += 1
                down_until = None

            coordinator.maybe_checkpoint()
            try:
                message = listener.recv(timeout=config.poll_interval)
            except TransportTimeout:
                coordinator.check_leases()
                listener.flush()
                # Only with a drained inbox do we look for crashes —
                # a worker that exits right after its Bye must not be
                # misread as dead before the Bye is processed.
                for worker_id, proc in processes.items():
                    if worker_id not in done_workers and not proc.is_alive():
                        done_workers.add(worker_id)
                        crashed.append(worker_id)
                        coordinator.release_worker(worker_id)
                continue
            # Batch-drain: one wake handles *everything* already queued
            # instead of one message per poll, so N pipelining workers
            # never serialize behind the poll interval.
            batch = [message]
            while True:
                try:
                    batch.append(listener.recv(timeout=0))
                except TransportTimeout:
                    break
            for message in batch:
                reply = coordinator.handle(message)
                messages_handled += 1
                if isinstance(message, Bye):
                    done_workers.add(message.worker)
                    if message.worker in crashed:
                        crashed.remove(message.worker)  # late Bye won the race
                if reply is not None:
                    listener.send(message.worker, reply)
                if (
                    next_crash is not None
                    and messages_handled >= next_crash.after_messages
                ):
                    # Crash the farmer: in-memory INTERVALS, SOLUTION,
                    # and the sequence cache are gone; only the
                    # checkpoint files survive the downtime — and the
                    # rest of this batch is lost with the process.
                    coordinator.maybe_checkpoint()  # periodic, not a flush
                    down_until = time.monotonic() + next_crash.downtime
                    next_crash = (
                        crash_schedule.pop(0) if crash_schedule else None
                    )
                    break
            if shared_bound is not None:
                # Sole writer of the advisory cell: broadcast SOLUTION
                # only after its Push was handled, so the cell never
                # holds a cost whose solution could die with a worker.
                shared_bound.offer(coordinator.solution.cost)
            coordinator.check_leases()
    finally:
        coordinator.maybe_checkpoint(force=True)
        listener.flush()
        for proc in processes.values():
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        transport.close()
        if temp_ckpt is not None:
            temp_ckpt.cleanup()

    duplicates_ignored += coordinator.duplicates_ignored
    leases_expired.extend(coordinator.leases_expired)
    byes.update(coordinator.byes)
    optimal = coordinator.intervals.is_empty()
    explore_seconds = sum(
        s.get("explore_seconds", 0.0) for s in byes.values()
    )
    rpc_wait_seconds = sum(
        s.get("rpc_wait_seconds", 0.0) for s in byes.values()
    )
    return ParallelResult(
        cost=coordinator.solution.cost,
        solution=coordinator.solution.solution,
        optimal=optimal,
        wall_seconds=time.monotonic() - started,
        workers=config.workers,
        work_allocations=coordinator.work_allocations,
        checkpoint_operations=coordinator.worker_checkpoint_ops,
        nodes_explored=coordinator.nodes_explored,
        redundant_rate=coordinator.redundant_rate(total_leaves),
        worker_stats=dict(byes),
        crashed_workers=crashed,
        coordinator_restarts=coordinator_restarts,
        leases_expired=leases_expired,
        duplicates_ignored=duplicates_ignored,
        faults_injected=fault_stats.as_dict(),
        explore_seconds=explore_seconds,
        rpc_wait_seconds=rpc_wait_seconds,
    )

"""Real parallel farmer–worker runtime on local processes.

The same protocol as the simulator — pull-model workers, interval
updates through the intersection operator, two-file checkpoints — but
executed by genuine OS processes exchanging messages over a pluggable
transport (:mod:`repro.grid.net`): fork-inherited queues by default,
loopback TCP with ``RuntimeConfig(transport="tcp")``, and a standalone
network coordinator via ``repro grid serve`` /
``repro grid worker --connect`` for runs that span machines.  This is
the deployment a user runs to exactly solve an instance in parallel
(the paper's grid collapsed to a single host's cores, or spread over
real sockets).

Public surface::

    from repro.grid.runtime import (
        ProblemSpec, RuntimeConfig, ParallelResult,
        solve_parallel, Coordinator, flowshop_spec,
    )
"""

from repro.grid.runtime.bbprocess import AdaptiveSlicer
from repro.grid.runtime.coordinator import Coordinator
from repro.grid.runtime.faults import (
    ChannelFaults,
    CoordinatorCrash,
    FaultPlan,
    ProcessKill,
    ProcessKiller,
    WorkerHang,
)
from repro.grid.runtime.launcher import (
    ParallelResult,
    RuntimeConfig,
    solve_parallel,
)
from repro.grid.runtime.protocol import ProblemSpec, flowshop_spec, tsp_spec
from repro.grid.runtime.shared import SharedBound
from repro.grid.runtime.supervisor import (
    FleetReport,
    RespawnPolicy,
    SlotStatus,
    WorkerSupervisor,
)

__all__ = [
    "AdaptiveSlicer",
    "ChannelFaults",
    "Coordinator",
    "CoordinatorCrash",
    "FaultPlan",
    "FleetReport",
    "ParallelResult",
    "ProblemSpec",
    "ProcessKill",
    "ProcessKiller",
    "RespawnPolicy",
    "RuntimeConfig",
    "SharedBound",
    "SlotStatus",
    "WorkerHang",
    "WorkerSupervisor",
    "flowshop_spec",
    "solve_parallel",
    "tsp_spec",
]

"""Wire protocol of the multiprocessing runtime.

Messages are small picklable dataclasses; intervals travel as
``(begin, end)`` integer pairs — the paper's two-number work units.
Problems cross the process boundary as a :class:`ProblemSpec` (a
module-level factory plus arguments) so workers rebuild their own
problem object instead of pickling caches and NumPy views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.problem import Problem

__all__ = [
    "ProblemSpec",
    "flowshop_spec",
    "tsp_spec",
    "Request",
    "Update",
    "Push",
    "Bye",
    "GrantWork",
    "Reconciled",
    "Ack",
    "Terminate",
]


@dataclass(frozen=True)
class ProblemSpec:
    """Recipe for building the same Problem in every process."""

    factory: Callable[..., Problem]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> Problem:
        return self.factory(*self.args, **dict(self.kwargs))


def _build_flowshop(processing_times, name, bound, pair_strategy) -> Problem:
    from repro.problems.flowshop import FlowShopInstance, FlowShopProblem

    return FlowShopProblem(
        FlowShopInstance(processing_times, name=name),
        bound=bound,
        pair_strategy=pair_strategy,
    )


def flowshop_spec(
    instance, bound: str = "combined", pair_strategy: str = "adjacent+ends"
) -> ProblemSpec:
    """Spec for a :class:`~repro.problems.flowshop.FlowShopInstance`."""
    return ProblemSpec(
        _build_flowshop,
        (
            instance.processing_times.tolist(),
            instance.name,
            bound,
            pair_strategy,
        ),
    )


def _build_tsp(distances, name) -> Problem:
    from repro.problems.tsp import TSPInstance, TSPProblem

    return TSPProblem(TSPInstance(distances, name=name))


def tsp_spec(instance) -> ProblemSpec:
    """Spec for a :class:`~repro.problems.tsp.TSPInstance`."""
    return ProblemSpec(_build_tsp, (instance.distances.tolist(), instance.name))


# ----------------------------------------------------------------------
# worker -> coordinator
# ----------------------------------------------------------------------
# ``seq`` is a per-worker monotonic sequence number (0 = unsequenced,
# for legacy senders).  A worker reuses the same seq when it *retries*
# an RPC whose reply timed out, so the coordinator can tell a retry or
# a channel-duplicated message from new traffic and answer it
# idempotently from its reply cache.


@dataclass
class Request:
    worker: str
    power: float = 1.0
    seq: int = 0


@dataclass
class Update:
    worker: str
    interval: Tuple[int, int]
    nodes: int  # nodes explored since the previous update
    consumed: int
    seq: int = 0


@dataclass
class Push:
    worker: str
    cost: float
    solution: Any
    seq: int = 0


@dataclass
class Bye:
    """Graceful exit after a terminate reply; carries final stats.

    Acknowledged with an :class:`Ack` and routed through the worker's
    RPC retry helper (best effort): a dropped Bye under a lossy channel
    is re-sent with the same seq instead of stalling the run until the
    process sentinel notices the exit.  ``seq == 0`` marks the legacy
    fire-and-forget form, still accepted (no reply is awaited).

    ``stats`` carries integer counters plus the measured
    ``explore_seconds`` / ``rpc_wait_seconds`` breakdown.
    """

    worker: str
    stats: Dict[str, float]
    seq: int = 0


# ----------------------------------------------------------------------
# coordinator -> worker
# ----------------------------------------------------------------------
# Replies echo the request's ``seq`` so a worker draining its reply
# queue can discard stale replies (late duplicates of RPCs it already
# gave up on) instead of mistaking them for the current answer.


@dataclass
class GrantWork:
    interval: Tuple[int, int]
    best_cost: float
    seq: int = 0


@dataclass
class Reconciled:
    interval: Tuple[int, int]
    best_cost: float
    seq: int = 0


@dataclass
class Ack:
    best_cost: float
    seq: int = 0


@dataclass
class Terminate:
    best_cost: float
    seq: int = 0

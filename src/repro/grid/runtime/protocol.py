"""Wire protocol of the multiprocessing runtime.

Messages are small picklable dataclasses; intervals travel as
``(begin, end)`` integer pairs — the paper's two-number work units.
Problems cross the process boundary as a :class:`ProblemSpec` (a
module-level factory plus arguments) so workers rebuild their own
problem object instead of pickling caches and NumPy views.

Every message carries an explicit ``version`` field — the message's
wire-format version, serialized by the network transports
(:mod:`repro.grid.net.framing`).  Renaming or retyping a field within
a version is forbidden; additions must bump it.  Decoders refuse
versions from the future, so a mixed fleet fails loudly at the frame
boundary instead of silently misreading fields.

:func:`spec_to_wire` / :func:`spec_from_wire` translate a
:class:`ProblemSpec` to and from a JSON-able form (the factory as a
``module:qualname`` reference) so a coordinator can hand the problem
definition to standalone workers over the network, not just over fork.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # import-free at runtime: keep the wire module light
    from repro.problems.flowshop import FlowShopInstance
    from repro.problems.tsp import TSPInstance

from repro.core.problem import Problem

__all__ = [
    "PROTOCOL_VERSION",
    "ProblemSpec",
    "flowshop_spec",
    "tsp_spec",
    "spec_to_wire",
    "spec_from_wire",
    "Request",
    "Update",
    "Push",
    "Bye",
    "GrantWork",
    "Reconciled",
    "Ack",
    "Terminate",
]

#: Wire-format version stamped on every message.
PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class ProblemSpec:
    """Recipe for building the same Problem in every process."""

    factory: Callable[..., Problem]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> Problem:
        return self.factory(*self.args, **dict(self.kwargs))


def _build_flowshop(
    processing_times: List[List[int]],
    name: str,
    bound: str,
    pair_strategy: str,
) -> Problem:
    from repro.problems.flowshop import FlowShopInstance, FlowShopProblem

    return FlowShopProblem(
        FlowShopInstance(processing_times, name=name),
        bound=bound,
        pair_strategy=pair_strategy,
    )


def flowshop_spec(
    instance: "FlowShopInstance",
    bound: str = "combined",
    pair_strategy: str = "adjacent+ends",
) -> ProblemSpec:
    """Spec for a :class:`~repro.problems.flowshop.FlowShopInstance`."""
    return ProblemSpec(
        _build_flowshop,
        (
            instance.processing_times.tolist(),
            instance.name,
            bound,
            pair_strategy,
        ),
    )


def _build_tsp(distances: List[List[int]], name: str) -> Problem:
    from repro.problems.tsp import TSPInstance, TSPProblem

    return TSPProblem(TSPInstance(distances, name=name))


def tsp_spec(instance: "TSPInstance") -> ProblemSpec:
    """Spec for a :class:`~repro.problems.tsp.TSPInstance`."""
    return ProblemSpec(_build_tsp, (instance.distances.tolist(), instance.name))


def spec_to_wire(spec: ProblemSpec) -> Dict[str, Any]:
    """JSON-able form of ``spec``: the factory as ``module:qualname``.

    Only module-level factories with JSON-able arguments survive the
    trip — which is exactly what :func:`flowshop_spec` and
    :func:`tsp_spec` construct.
    """
    factory = spec.factory
    module = getattr(factory, "__module__", None)
    qualname = getattr(factory, "__qualname__", "")
    if not module or "." in qualname or "<" in qualname:
        raise ValueError(
            f"spec factory {factory!r} is not a module-level callable; "
            f"it cannot be named on the wire"
        )
    return {
        "factory": f"{module}:{qualname}",
        "args": list(spec.args),
        "kwargs": dict(spec.kwargs),
    }


def spec_from_wire(wire: Dict[str, Any]) -> ProblemSpec:
    """Rebuild the :class:`ProblemSpec` named by :func:`spec_to_wire`."""
    ref = wire.get("factory")
    if not isinstance(ref, str) or ":" not in ref:
        raise ValueError(f"bad factory reference {ref!r}")
    module_name, _, qualname = ref.partition(":")
    module = importlib.import_module(module_name)
    factory = getattr(module, qualname, None)
    if not callable(factory):
        raise ValueError(f"{ref} does not name a callable")
    return ProblemSpec(
        factory,
        tuple(wire.get("args", ())),
        dict(wire.get("kwargs", {})),
    )


# ----------------------------------------------------------------------
# worker -> coordinator
# ----------------------------------------------------------------------
# ``seq`` is a per-worker monotonic sequence number (0 = unsequenced,
# for legacy senders).  A worker reuses the same seq when it *retries*
# an RPC whose reply timed out, so the coordinator can tell a retry or
# a channel-duplicated message from new traffic and answer it
# idempotently from its reply cache.


@dataclass
class Request:
    worker: str
    power: float = 1.0
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class Update:
    worker: str
    interval: Tuple[int, int]
    nodes: int  # nodes explored since the previous update
    consumed: int
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class Push:
    worker: str
    cost: float
    solution: Any
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class Bye:
    """Graceful exit after a terminate reply; carries final stats.

    Acknowledged with an :class:`Ack` and routed through the worker's
    RPC retry helper (best effort): a dropped Bye under a lossy channel
    is re-sent with the same seq instead of stalling the run until the
    process sentinel notices the exit.  ``seq == 0`` marks the legacy
    fire-and-forget form, still accepted (no reply is awaited).

    ``stats`` carries integer counters plus the measured
    ``explore_seconds`` / ``rpc_wait_seconds`` breakdown.
    """

    worker: str
    stats: Dict[str, float]
    seq: int = 0
    version: int = PROTOCOL_VERSION


# ----------------------------------------------------------------------
# coordinator -> worker
# ----------------------------------------------------------------------
# Replies echo the request's ``seq`` so a worker draining its reply
# queue can discard stale replies (late duplicates of RPCs it already
# gave up on) instead of mistaking them for the current answer.


@dataclass
class GrantWork:
    interval: Tuple[int, int]
    best_cost: float
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class Reconciled:
    interval: Tuple[int, int]
    best_cost: float
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class Ack:
    best_cost: float
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class Terminate:
    best_cost: float
    seq: int = 0
    version: int = PROTOCOL_VERSION

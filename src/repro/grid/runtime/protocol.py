"""Wire protocol of the multiprocessing runtime.

Messages are small picklable dataclasses; intervals travel as
``(begin, end)`` integer pairs — the paper's two-number work units.
Problems cross the process boundary as a :class:`ProblemSpec` (a
module-level factory plus arguments) so workers rebuild their own
problem object instead of pickling caches and NumPy views.

Every message carries an explicit ``version`` field — the message's
wire-format version, serialized by the network transports
(:mod:`repro.grid.net.framing`).  Renaming or retyping a field within
a version is forbidden; additions must bump it.  Decoders refuse
versions from the future, so a mixed fleet fails loudly at the frame
boundary instead of silently misreading fields.  The contract is
machine-enforced: ``repro check`` diffs every registered dataclass
against the golden schemas in ``repro/tools/check/schemas/wire.json``
(rule RC12) and fails when a field changes without a version bump;
after bumping, refresh the snapshot with
``repro check --update-schemas``.

:func:`spec_to_wire` / :func:`spec_from_wire` translate a
:class:`ProblemSpec` to and from a JSON-able form (the factory as a
``module:qualname`` reference) so a coordinator can hand the problem
definition to standalone workers over the network, not just over fork.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # import-free at runtime: keep the wire module light
    from repro.problems.flowshop import FlowShopInstance
    from repro.problems.tsp import TSPInstance

from repro.core.problem import Problem

__all__ = [
    "PROTOCOL_VERSION",
    "ProblemSpec",
    "flowshop_spec",
    "tsp_spec",
    "spec_to_wire",
    "spec_from_wire",
    "Request",
    "Update",
    "Push",
    "Bye",
    "GrantWork",
    "Reconciled",
    "Ack",
    "Terminate",
    "JobGrant",
    "JobUpdate",
    "JobPush",
    "Idle",
    "SubmitJob",
    "JobAccepted",
    "JobRefused",
    "JobStatusRequest",
    "JobStatus",
    "CancelJob",
    "ListJobs",
    "JobList",
]

#: Wire-format version stamped on every message.
PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class ProblemSpec:
    """Recipe for building the same Problem in every process."""

    factory: Callable[..., Problem]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> Problem:
        return self.factory(*self.args, **dict(self.kwargs))


def _build_flowshop(
    processing_times: List[List[int]],
    name: str,
    bound: str,
    pair_strategy: str,
) -> Problem:
    from repro.problems.flowshop import FlowShopInstance, FlowShopProblem

    return FlowShopProblem(
        FlowShopInstance(processing_times, name=name),
        bound=bound,
        pair_strategy=pair_strategy,
    )


def flowshop_spec(
    instance: "FlowShopInstance",
    bound: str = "combined",
    pair_strategy: str = "adjacent+ends",
) -> ProblemSpec:
    """Spec for a :class:`~repro.problems.flowshop.FlowShopInstance`."""
    return ProblemSpec(
        _build_flowshop,
        (
            instance.processing_times.tolist(),
            instance.name,
            bound,
            pair_strategy,
        ),
    )


def _build_tsp(distances: List[List[int]], name: str) -> Problem:
    from repro.problems.tsp import TSPInstance, TSPProblem

    return TSPProblem(TSPInstance(distances, name=name))


def tsp_spec(instance: "TSPInstance") -> ProblemSpec:
    """Spec for a :class:`~repro.problems.tsp.TSPInstance`."""
    return ProblemSpec(_build_tsp, (instance.distances.tolist(), instance.name))


def spec_to_wire(spec: ProblemSpec) -> Dict[str, Any]:
    """JSON-able form of ``spec``: the factory as ``module:qualname``.

    Only module-level factories with JSON-able arguments survive the
    trip — which is exactly what :func:`flowshop_spec` and
    :func:`tsp_spec` construct.
    """
    factory = spec.factory
    module = getattr(factory, "__module__", None)
    qualname = getattr(factory, "__qualname__", "")
    if not module or "." in qualname or "<" in qualname:
        raise ValueError(
            f"spec factory {factory!r} is not a module-level callable; "
            f"it cannot be named on the wire"
        )
    return {
        "factory": f"{module}:{qualname}",
        "args": list(spec.args),
        "kwargs": dict(spec.kwargs),
    }


def spec_from_wire(wire: Dict[str, Any]) -> ProblemSpec:
    """Rebuild the :class:`ProblemSpec` named by :func:`spec_to_wire`."""
    ref = wire.get("factory")
    if not isinstance(ref, str) or ":" not in ref:
        raise ValueError(f"bad factory reference {ref!r}")
    module_name, _, qualname = ref.partition(":")
    module = importlib.import_module(module_name)
    factory = getattr(module, qualname, None)
    if not callable(factory):
        raise ValueError(f"{ref} does not name a callable")
    return ProblemSpec(
        factory,
        tuple(wire.get("args", ())),
        dict(wire.get("kwargs", {})),
    )


# ----------------------------------------------------------------------
# worker -> coordinator
# ----------------------------------------------------------------------
# ``seq`` is a per-worker monotonic sequence number (0 = unsequenced,
# for legacy senders).  A worker reuses the same seq when it *retries*
# an RPC whose reply timed out, so the coordinator can tell a retry or
# a channel-duplicated message from new traffic and answer it
# idempotently from its reply cache.


@dataclass
class Request:
    worker: str
    power: float = 1.0
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class Update:
    worker: str
    interval: Tuple[int, int]
    nodes: int  # nodes explored since the previous update
    consumed: int
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class Push:
    worker: str
    cost: float
    solution: Any
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class Bye:
    """Graceful exit after a terminate reply; carries final stats.

    Acknowledged with an :class:`Ack` and routed through the worker's
    RPC retry helper (best effort): a dropped Bye under a lossy channel
    is re-sent with the same seq instead of stalling the run until the
    process sentinel notices the exit.  ``seq == 0`` marks the legacy
    fire-and-forget form, still accepted (no reply is awaited).

    ``stats`` carries integer counters plus the measured
    ``explore_seconds`` / ``rpc_wait_seconds`` breakdown.
    """

    worker: str
    stats: Dict[str, float]
    seq: int = 0
    version: int = PROTOCOL_VERSION


# ----------------------------------------------------------------------
# coordinator -> worker
# ----------------------------------------------------------------------
# Replies echo the request's ``seq`` so a worker draining its reply
# queue can discard stale replies (late duplicates of RPCs it already
# gave up on) instead of mistaking them for the current answer.


@dataclass
class GrantWork:
    interval: Tuple[int, int]
    best_cost: float
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class Reconciled:
    interval: Tuple[int, int]
    best_cost: float
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class Ack:
    best_cost: float
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class Terminate:
    best_cost: float
    seq: int = 0
    version: int = PROTOCOL_VERSION


# ----------------------------------------------------------------------
# multi-tenant service: job-tagged worker traffic
# ----------------------------------------------------------------------
# The solve service multiplexes many jobs over one worker fleet.  A
# worker stays a dumb interval-explorer: it sends the same Request it
# always sent, but the service answers with a :class:`JobGrant` — a
# GrantWork stamped with an opaque job id plus the job's problem spec
# in wire form — and the worker tags its Update/Push traffic for that
# slice with the same id so the service can route each message to the
# right job ledger.  Job ids are *opaque strings* (rule RC11): equality
# only, never arithmetic or ordering.


@dataclass
class JobGrant:
    """A work slice from one job of many.

    ``spec`` repeats the job's problem recipe on every grant so the
    exchange stays stateless: a worker that has never seen the job (or
    that restarted since) can rebuild the problem without a second
    round trip.  Workers cache built problems per job id.
    """

    job: str
    interval: Tuple[int, int]
    best_cost: float
    spec: Optional[Dict[str, Any]] = None
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class JobUpdate:
    """An :class:`Update` tagged with the job the slice belongs to."""

    worker: str
    job: str
    interval: Tuple[int, int]
    nodes: int
    consumed: int
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class JobPush:
    """A :class:`Push` tagged with the job the solution belongs to."""

    worker: str
    job: str
    cost: float
    solution: Any
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class Idle:
    """Reply to a Request when no job currently has work to hand out.

    Unlike :class:`Terminate` this does not end the worker: the fleet
    outlives any single job, so the worker sleeps ``retry_after``
    seconds and asks again.
    """

    retry_after: float = 0.5
    seq: int = 0
    version: int = PROTOCOL_VERSION


# ----------------------------------------------------------------------
# multi-tenant service: client traffic
# ----------------------------------------------------------------------
# Clients speak the same framed transport as workers (Hello/Welcome,
# then sequenced RPCs).  ``worker`` on a client request is the sender's
# connection id — the field keeps its transport name so the service
# routes replies through the same ``send(message.worker, reply)`` path
# used for workers.


@dataclass
class SubmitJob:
    worker: str
    spec: Dict[str, Any]
    priority: int = 1
    owner: str = "anonymous"
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class JobAccepted:
    job: str
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class JobRefused:
    """Admission control said no (queue full, per-owner cap, bad spec)."""

    reason: str
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class JobStatusRequest:
    worker: str
    job: str
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class JobStatus:
    """Snapshot of one job's ledger.

    ``status`` ∈ {queued, running, done, cancelled, failed, unknown};
    ``solution`` is only populated once the job is done (it can be
    large), and ``error`` only when it failed.
    """

    job: str
    status: str
    best_cost: float = float("inf")
    solution: Any = None
    owner: str = ""
    priority: int = 1
    nodes: int = 0
    error: str = ""
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class CancelJob:
    worker: str
    job: str
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class ListJobs:
    worker: str
    owner: str = ""
    seq: int = 0
    version: int = PROTOCOL_VERSION


@dataclass
class JobList:
    """Summaries (dicts mirroring :class:`JobStatus` sans solution)."""

    jobs: List[Dict[str, Any]] = field(default_factory=list)
    seq: int = 0
    version: int = PROTOCOL_VERSION

"""The worker process entry point of the multiprocessing runtime.

Mirrors the simulated worker's session loop (pull work, explore in
slices, push improvements, update the interval) but against real OS
queues and a real clock.  Three mechanisms keep exploration — not
coordination — on the critical path:

* **Adaptive slicing** (:class:`AdaptiveSlicer`): the slice between
  interval updates is counted in nodes (so tiny test instances stay
  deterministic) but *sized* toward a wall-clock update period.  Each
  worker measures its own nodes/sec and grows or shrinks the next
  slice toward ``update_period`` seconds of exploration — the paper's
  time-based update done per-worker, so heterogeneous workers all
  report at the same cadence instead of the fast ones flooding the
  farmer and the slow ones going silent.
* **Pipelined interval updates**: the worker sends its ``Update`` and
  immediately keeps exploring the remainder it just reported (which
  the coordinator can only *shrink*, never grow — eq. 14), collecting
  the ``Reconciled`` reply at the next slice boundary.  The update
  round-trip overlaps a whole slice of exploration; the only work at
  risk is the tail the farmer gave away meanwhile, which the §4.1
  invariant makes redundant, never wrong.  At most one RPC is ever in
  flight, so the PR 1 at-least-once machinery (same-seq retries, the
  coordinator's per-worker reply cache) carries over unchanged.
* **Shared incumbent** (:class:`~repro.grid.runtime.shared.SharedBound`):
  the engine polls a shared-memory cost cell mid-slice, so a bound
  pushed by any worker tightens pruning in every worker within
  ``bound_poll_nodes`` nodes of the launcher broadcasting it — no
  round-trip, no slice boundary.  Workers are strictly *readers*: only
  the launcher writes the cell, and only with costs whose solutions
  the coordinator already holds.  A worker must never offer its own
  improvement before the Push is secured — if it crashed in between,
  the cost would keep pruning the equal-cost optimum everywhere while
  the solution itself was lost, turning a crash into a wrong answer.

Every exchange is an at-least-once RPC: the worker stamps a monotonic
sequence number on the message, waits ``reply_timeout`` for a reply
carrying that seq (discarding stale replies left over from earlier
retries), and on timeout re-sends the same message — same seq, so the
coordinator dedups — up to ``max_retries`` times.  Successive waits
back off with decorrelated jitter (capped at ``_BACKOFF_CAP`` times
the base timeout), so a fleet of workers that lost the farmer together
does not retry in lock step against the recovering farmer.  Only when
every retry times out does the worker give up and die silently,
exactly like a crash.

The worker talks to the coordinator through a
:class:`~repro.grid.net.transport.Connection` obtained from the
:class:`~repro.grid.net.transport.Connector` it was handed — the same
``worker_main`` runs over fork-inherited queues and over TCP.
"""

from __future__ import annotations

import itertools
import math
import random
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.engine import IntervalExplorer
from repro.core.interval import Interval
from repro.core.problem import Problem
from repro.core.stats import Incumbent
from repro.grid.net.backoff import decorrelated_jitter
from repro.grid.net.transport import Connection, Connector, TransportError
from repro.grid.runtime.shared import SharedBound
from repro.grid.runtime.protocol import (
    Ack,
    Bye,
    GrantWork,
    Idle,
    JobGrant,
    JobPush,
    JobUpdate,
    ProblemSpec,
    Push,
    Reconciled,
    Request,
    Terminate,
    Update,
    spec_from_wire,
)

__all__ = ["AdaptiveSlicer", "worker_main"]

_BACKOFF_CAP = 8.0  # max multiplier over reply_timeout per attempt


class AdaptiveSlicer:
    """Size exploration slices (in nodes) toward a wall-clock period.

    The controller keeps an exponential moving average of the worker's
    observed throughput and proposes ``rate × target_period`` nodes for
    the next slice, clamped to ``[min_nodes, max_nodes]`` and never
    changing by more than ``max_growth``× per step (so one noisy slice
    — a pruning burst, a page fault — cannot swing the cadence).  With
    ``target_period=None`` the slicer degrades to exactly the fixed
    ``initial_nodes`` count (the clamp range only constrains adaptive
    steps), which is what the deterministic unit tests use.
    """

    def __init__(
        self,
        initial_nodes: int,
        target_period: Optional[float] = None,
        min_nodes: int = 64,
        max_nodes: int = 1 << 20,
        smoothing: float = 0.5,
        max_growth: float = 2.0,
    ):
        if initial_nodes < 1:
            raise ValueError("initial_nodes must be >= 1")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        if max_growth <= 1.0:
            raise ValueError("max_growth must be > 1")
        if min_nodes < 1 or max_nodes < min_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        self.target_period = target_period
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.smoothing = smoothing
        self.max_growth = max_growth
        if target_period is None:
            # Fixed mode: honor the requested size exactly, even below
            # min_nodes — the clamps only bound adaptive steps.
            self._nodes = initial_nodes
        else:
            self._nodes = max(min(initial_nodes, max_nodes), min_nodes)
        self._rate: Optional[float] = None  # EMA of nodes per second

    @property
    def rate(self) -> Optional[float]:
        """Smoothed throughput estimate (nodes/sec), if any yet."""
        return self._rate

    def next_slice(self) -> int:
        """Node budget for the coming slice."""
        return self._nodes

    def observe(self, nodes: int, seconds: float) -> None:
        """Feed back one slice's measured cost; adapt the next budget."""
        if self.target_period is None or nodes <= 0 or seconds <= 0.0:
            return
        rate = nodes / seconds
        if self._rate is None:
            self._rate = rate
        else:
            s = self.smoothing
            self._rate = s * rate + (1.0 - s) * self._rate
        ideal = self._rate * self.target_period
        lo = self._nodes / self.max_growth
        hi = self._nodes * self.max_growth
        self._nodes = int(
            min(self.max_nodes, max(self.min_nodes, min(hi, max(lo, ideal))))
        )


class _RpcChannel:
    """At-least-once RPC over a Connection, with one-deep pipelining.

    ``call`` is the synchronous shape PR 1 shipped: send, wait, retry
    with the same seq on timeout.  ``send`` + ``collect`` split that
    into halves so the caller can explore between them; the retry loop
    simply runs at collect time.  The discipline is *single
    outstanding*: ``send``/``call`` assert nothing is pending, which
    keeps every coordinator-side assumption (one cached reply per
    worker, strictly increasing seqs) intact.

    Each retry's wait is drawn with decorrelated jitter from
    ``[reply_timeout, 3 × previous]`` (capped at ``_BACKOFF_CAP`` times
    the base), so workers that timed out together spread their resends
    instead of hammering a recovering coordinator in lock step.

    Time spent blocked on the connection is accumulated into
    ``wait_stats["rpc_wait_seconds"]`` so coordination overhead is a
    measured number, not an inference.
    """

    def __init__(
        self,
        connection: Connection,
        reply_timeout: float,
        max_retries: int,
        wait_stats: Dict[str, float],
        rng: Optional[random.Random] = None,
    ):
        self._connection = connection
        self._reply_timeout = reply_timeout
        self._max_retries = max_retries
        self._wait_stats = wait_stats
        self._rng = rng if rng is not None else random.Random()
        self._seq_counter = itertools.count(1)
        self._pending = None  # message awaiting its reply, or None
        self.gave_up = False  # a full retry budget expired: farmer gone

    def has_pending(self) -> bool:
        return self._pending is not None

    def send(self, message: Any) -> None:
        """Fire an RPC without waiting; its reply is due at ``collect``."""
        assert self._pending is None, "only one RPC may be in flight"
        message.seq = next(self._seq_counter)
        self._pending = message
        self._connection.send(message)

    def collect(self) -> Any:
        """Wait for the pending RPC's reply (retrying); None = gave up."""
        message = self._pending
        assert message is not None, "collect() without a pending RPC"
        seq = message.seq
        timeout = self._reply_timeout
        for attempt in range(self._max_retries + 1):
            if attempt:
                self._connection.send(message)  # same seq: dedupable
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                waited_from = time.monotonic()
                try:
                    reply = self._connection.recv(timeout=remaining)
                except TransportError:
                    # Timeout, or the channel broke mid-wait: either
                    # way the reply is missing — same retry recovers.
                    self._wait_stats["rpc_wait_seconds"] += (
                        time.monotonic() - waited_from
                    )
                    break
                self._wait_stats["rpc_wait_seconds"] += (
                    time.monotonic() - waited_from
                )
                reply_seq = getattr(reply, "seq", 0)
                if reply_seq in (0, seq):
                    self._pending = None
                    return reply
                # A stale reply from an RPC we already retried past:
                # discard and keep waiting for the current one.
            timeout = decorrelated_jitter(
                self._rng,
                self._reply_timeout,
                timeout,
                self._reply_timeout * _BACKOFF_CAP,
            )
        self._pending = None
        self.gave_up = True
        return None  # coordinator gone for good: die silently like a crash

    def call(self, message: Any) -> Any:
        """Classic synchronous RPC: send then immediately collect."""
        self.send(message)
        return self.collect()


def worker_main(
    worker_id: str,
    spec: Optional[ProblemSpec],
    connector: Connector,
    update_nodes: int = 2000,
    power: float = 1.0,
    reply_timeout: float = 60.0,
    max_retries: int = 2,
    crash_after_updates: Optional[int] = None,
    hang_after_updates: Optional[int] = None,
    hang_seconds: float = 0.0,
    update_period: Optional[float] = None,
    min_slice_nodes: int = 64,
    max_slice_nodes: int = 1 << 20,
    pipeline_updates: bool = True,
    shared_bound: Optional[SharedBound] = None,
    bound_poll_nodes: int = 256,
    kernel_backend: Optional[str] = None,
    pool_size: int = 64,
    pool_scan_budget: Optional[int] = None,
    frontier: str = "dfs",
    frontier_width: int = 32768,
) -> str:
    """Run one B&B process until the coordinator says terminate.

    ``connector`` names the coordinator — a picklable
    :class:`~repro.grid.net.transport.Connector` the worker opens into
    its :class:`~repro.grid.net.transport.Connection` (fork-inherited
    queues or a TCP client; the loop is backend-blind).

    ``update_nodes`` is the first slice's node budget; with
    ``update_period`` set, later slices adapt toward that many wall
    seconds of exploration (see :class:`AdaptiveSlicer`).  With
    ``pipeline_updates`` the ``Reconciled`` reply of each interval
    update is collected at the *next* slice boundary instead of
    immediately.  ``shared_bound`` is the run's advisory
    :class:`~repro.grid.runtime.shared.SharedBound` (or None).

    ``kernel_backend`` / ``pool_size`` / ``pool_scan_budget``
    configure the pool-evaluation bound kernels of every explorer
    this worker runs (see :mod:`repro.core.kernels`): ``None``
    auto-selects, ``"off"`` keeps per-family batched bounds only.
    ``frontier`` / ``frontier_width`` select the exploration order
    (``"dfs"`` or ``"wave"`` — see
    :class:`~repro.core.engine.IntervalExplorer`); both orders fold
    to the same two-integer interval at every update boundary, so
    the coordinator protocol is unchanged.

    ``crash_after_updates`` makes the worker exit abruptly (no Bye)
    after that many interval updates; ``hang_after_updates`` makes it
    sleep ``hang_seconds`` instead — alive but silent, so its lease
    expires at the coordinator.  Both are fault-injection hooks used
    by the chaos suite and the examples.

    Returns the loop outcome: ``"terminate"`` (the coordinator proved
    the space empty), ``"gave-up"`` (the retry budget expired against
    an unreachable coordinator) or ``"crash"`` (a fault hook fired).
    Process supervisors respawn anything but a clean ``"terminate"``.

    Against the multi-tenant solve service the same loop serves *many*
    jobs: grants arrive as :class:`JobGrant` (carrying an opaque job id
    plus the job's spec in wire form), the worker keeps one built
    problem and one local incumbent per job id, tags its traffic with
    the grant's id, and sleeps through :class:`Idle` replies when no
    job has work.  ``spec`` may then be ``None`` — the fleet learns
    every problem from its grants.
    """
    connection = connector.connect(worker_id)
    try:
        return _worker_loop(
            worker_id,
            spec,
            connection,
            update_nodes=update_nodes,
            power=power,
            reply_timeout=reply_timeout,
            max_retries=max_retries,
            crash_after_updates=crash_after_updates,
            hang_after_updates=hang_after_updates,
            hang_seconds=hang_seconds,
            update_period=update_period,
            min_slice_nodes=min_slice_nodes,
            max_slice_nodes=max_slice_nodes,
            pipeline_updates=pipeline_updates,
            shared_bound=shared_bound,
            bound_poll_nodes=bound_poll_nodes,
            kernel_backend=kernel_backend,
            pool_size=pool_size,
            pool_scan_budget=pool_scan_budget,
            frontier=frontier,
            frontier_width=frontier_width,
        )
    finally:
        connection.close()


def _worker_loop(
    worker_id: str,
    spec: Optional[ProblemSpec],
    connection: Connection,
    *,
    update_nodes: int,
    power: float,
    reply_timeout: float,
    max_retries: int,
    crash_after_updates: Optional[int],
    hang_after_updates: Optional[int],
    hang_seconds: float,
    update_period: Optional[float],
    min_slice_nodes: int,
    max_slice_nodes: int,
    pipeline_updates: bool,
    shared_bound: Optional[SharedBound],
    bound_poll_nodes: int,
    kernel_backend: Optional[str] = None,
    pool_size: int = 64,
    pool_scan_budget: Optional[int] = None,
    frontier: str = "dfs",
    frontier_width: int = 32768,
) -> str:
    # One built problem per job id; "" is the classic single-job run
    # whose problem came in over ``spec``.  The multi-tenant service
    # repeats a job's spec on every JobGrant, so a fleet worker builds
    # (and caches) each problem the first time it meets the job.
    problems: Dict[str, Problem] = {}
    if spec is not None:
        problems[""] = spec.build()
    stats_total: Dict[str, float] = {
        "nodes": 0,
        "updates": 0,
        "allocations": 0,
        "improvements": 0,
        "idles": 0,
        "epoch_resyncs": 0,
        "explore_seconds": 0.0,
        "rpc_wait_seconds": 0.0,
    }
    updates_sent = 0
    # Per-job local incumbents: a bound proved for one job must never
    # prune another job's tree.
    bests: Dict[str, Dict[str, Any]] = {}

    def best_for(job: str) -> Dict[str, Any]:
        return bests.setdefault(job, {"cost": float("inf"), "solution": None})

    chan = _RpcChannel(
        connection,
        reply_timeout,
        max_retries,
        stats_total,
        rng=random.Random(worker_id),  # deterministic, per-worker jitter
    )
    slicer = AdaptiveSlicer(
        update_nodes,
        target_period=update_period,
        min_nodes=min_slice_nodes,
        max_nodes=max_slice_nodes,
    )
    provider = shared_bound.as_provider() if shared_bound is not None else None

    def shared_cost() -> float:
        return shared_bound.read() if shared_bound is not None else math.inf

    def push_message(job: str, cost: float, solution: Any) -> Any:
        if job:
            return JobPush(worker_id, job, cost, solution)
        return Push(worker_id, cost, solution)

    def update_message(
        job: str, interval: Tuple[int, int], nodes: int, consumed: int
    ) -> Any:
        if job:
            return JobUpdate(
                worker_id, job, interval, nodes=nodes, consumed=consumed
            )
        return Update(worker_id, interval, nodes=nodes, consumed=consumed)

    def reinform_if_stale(job: str, global_best: float) -> None:
        # The coordinator believes something worse than our local best
        # (it recovered from an old checkpoint): push ours again.
        best = best_for(job)
        if best["solution"] is not None and global_best > best["cost"]:
            chan.call(push_message(job, best["cost"], best["solution"]))

    def maybe_inject_fault() -> bool:
        """Apply the per-update fault hooks; True means exit now."""
        if (
            crash_after_updates is not None
            and updates_sent >= crash_after_updates
        ):
            return True  # simulated crash: no Bye, interval left behind
        if (
            hang_after_updates is not None
            and updates_sent == hang_after_updates
            and hang_seconds > 0
        ):
            time.sleep(hang_seconds)  # alive but silent: lease expires
        return False

    while True:
        reply = chan.call(Request(worker_id, power))
        if reply is None:
            # repro-check: ignore[RC04] -- best-effort Bye after the retry budget is exhausted; the launcher's process sentinel covers the exit
            connection.send(Bye(worker_id, dict(stats_total)))
            return "gave-up"
        if isinstance(reply, Terminate):
            break
        if isinstance(reply, Idle):
            # The service has no runnable slice right now; the fleet
            # outlives any one job, so nap and ask again.
            stats_total["idles"] += 1
            time.sleep(min(max(reply.retry_after, 0.01), 30.0))
            continue
        # A Grant claimed from a just-restarted coordinator is already
        # a fresh reconciliation; consume the flag so the first slice
        # boundary is not forced synchronous for nothing.
        connection.take_epoch_change()
        if isinstance(reply, JobGrant):
            job = reply.job
            problem = problems.get(job)
            if problem is None:
                if reply.spec is None:
                    raise TransportError(
                        f"grant for unknown job {job!r} carried no spec"
                    )
                problem = spec_from_wire(reply.spec).build()
                problems[job] = problem
        else:
            assert isinstance(reply, GrantWork)
            job = ""
            problem = problems.get("")
            if problem is None:
                raise TransportError(
                    "coordinator granted work but no problem spec was "
                    "configured (pass one, or use a job-aware server)"
                )
        best = best_for(job)
        stats_total["allocations"] += 1
        reinform_if_stale(job, reply.best_cost)
        interval = Interval.from_tuple(reply.interval)
        improvements: List[Tuple[float, Any]] = []

        def on_improvement(cost: float, solution: Any) -> None:
            # Deliberately NOT offered to shared_bound here: the cell
            # must only ever hold costs the coordinator has a solution
            # for, or a crash before the Push would leave a bound that
            # prunes the optimum everywhere with its solution lost.
            # The launcher broadcasts it once the Push is handled.
            improvements.append((cost, solution))

        explorer = IntervalExplorer(
            problem,
            interval,
            incumbent=Incumbent(
                min(reply.best_cost, best["cost"], shared_cost()), None
            ),
            on_improvement=on_improvement,
            bound_provider=provider,
            bound_poll_nodes=bound_poll_nodes,
            kernel_backend=kernel_backend,
            pool_size=pool_size,
            pool_scan_budget=pool_scan_budget,
            frontier=frontier,
            frontier_width=frontier_width,
        )

        def collect_reconciled() -> str:
            """Retire the in-flight Update; apply its reconciliation.

            Returns ``"ok"``, ``"terminate"``, ``"crash"`` (fault hook
            fired) or ``"dead"`` (coordinator unreachable).
            """
            nonlocal updates_sent
            reconciled = chan.collect()
            if reconciled is None:
                return "dead"
            stats_total["updates"] += 1
            updates_sent += 1
            if maybe_inject_fault():
                return "crash"
            if isinstance(reconciled, Terminate):
                return "terminate"
            assert isinstance(reconciled, Reconciled)
            reinform_if_stale(job, reconciled.best_cost)
            explorer.apply_interval(Interval.from_tuple(reconciled.interval))
            explorer.set_upper_bound(reconciled.best_cost, None)
            return "ok"

        terminate = False
        while not explorer.is_finished():
            before = explorer.remaining_interval()
            explorer.set_upper_bound(shared_cost(), None)
            slice_started = time.monotonic()
            report = explorer.step(slicer.next_slice())
            slice_seconds = time.monotonic() - slice_started
            stats_total["explore_seconds"] += slice_seconds
            slicer.observe(report.nodes_processed, slice_seconds)
            after = explorer.remaining_interval()
            consumed = max(
                0, min(after.begin, before.end) - before.begin
            )
            if report.finished:
                consumed = before.length
            stats_total["nodes"] += report.nodes_processed

            # The previous boundary's Update overlapped this slice;
            # reconcile it before talking to the coordinator again.
            if chan.has_pending():
                outcome = collect_reconciled()
                if outcome in ("dead", "crash"):
                    return "gave-up" if outcome == "dead" else "crash"
                if outcome == "terminate":
                    terminate = True
                    break

            # The transport reconnected to a *new server incarnation*
            # (the epoch in its Welcome changed): whatever interval
            # state it recovered may be stale.  Re-push our best (the
            # snapshot may predate it) and force the next Update to
            # reconcile synchronously so we learn of any reassignment
            # before exploring further on stale assumptions.
            resync = connection.take_epoch_change()
            if resync:
                stats_total["epoch_resyncs"] += 1
                if best["solution"] is not None:
                    ack = chan.call(
                        push_message(job, best["cost"], best["solution"])
                    )
                    if ack is None:
                        return "gave-up"
                    if isinstance(ack, Ack):
                        explorer.set_upper_bound(ack.best_cost, None)

            if improvements:
                cost, solution = improvements[-1]
                improvements.clear()
                stats_total["improvements"] += 1
                if cost < best["cost"]:
                    best["cost"], best["solution"] = cost, solution
                ack = chan.call(push_message(job, cost, solution))
                if ack is None:
                    return "gave-up"
                if isinstance(ack, Ack):
                    explorer.set_upper_bound(ack.best_cost, None)

            chan.send(
                update_message(
                    job,
                    explorer.remaining_interval().as_tuple(),
                    nodes=report.nodes_processed,
                    consumed=consumed,
                )
            )
            if not pipeline_updates or resync:
                outcome = collect_reconciled()
                if outcome in ("dead", "crash"):
                    return "gave-up" if outcome == "dead" else "crash"
                if outcome == "terminate":
                    terminate = True
                    break

        # Exploration (or a cut) ended with one Update still in flight:
        # its reply must be retired before the next RPC goes out.
        if chan.has_pending():
            outcome = collect_reconciled()
            if outcome in ("dead", "crash"):
                return "gave-up" if outcome == "dead" else "crash"
            if outcome == "terminate":
                terminate = True
        if terminate:
            break

    # Best-effort acknowledged goodbye: routed through the retry helper
    # so a dropped Bye under a lossy channel is re-sent (same seq, so
    # the coordinator dedups) instead of stalling the run until the
    # process sentinel notices the exit.  If every retry times out the
    # worker leaves anyway — the sentinel path still covers it.
    chan.call(Bye(worker_id, dict(stats_total)))
    return "terminate"

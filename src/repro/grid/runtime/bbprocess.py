"""The worker process entry point of the multiprocessing runtime.

Mirrors the simulated worker's session loop (pull work, explore in
slices, push improvements, update the interval) but against real OS
queues and a real clock.  The slice is counted in *nodes*, not
seconds, so test runs with tiny instances stay deterministic.

Every exchange is an at-least-once RPC: the worker stamps a monotonic
sequence number on the message, waits ``reply_timeout`` for a reply
carrying that seq (discarding stale replies left over from earlier
retries), and on timeout re-sends the same message — same seq, so the
coordinator dedups — up to ``max_retries`` times with the wait doubling
each attempt (capped).  Only when every retry times out does the worker
give up and die silently, exactly like a crash.
"""

from __future__ import annotations

import itertools
import queue as queue_mod
import time
from typing import Optional

from repro.core.engine import IntervalExplorer
from repro.core.interval import Interval
from repro.core.stats import Incumbent
from repro.grid.runtime.protocol import (
    Ack,
    Bye,
    GrantWork,
    ProblemSpec,
    Push,
    Reconciled,
    Request,
    Terminate,
    Update,
)

__all__ = ["worker_main"]

_BACKOFF_CAP = 8.0  # max multiplier over reply_timeout per attempt


def worker_main(
    worker_id: str,
    spec: ProblemSpec,
    request_queue,
    reply_queue,
    update_nodes: int = 2000,
    power: float = 1.0,
    reply_timeout: float = 60.0,
    max_retries: int = 2,
    crash_after_updates: Optional[int] = None,
    hang_after_updates: Optional[int] = None,
    hang_seconds: float = 0.0,
) -> None:
    """Run one B&B process until the coordinator says terminate.

    ``crash_after_updates`` makes the worker exit abruptly (no Bye)
    after that many interval updates; ``hang_after_updates`` makes it
    sleep ``hang_seconds`` instead — alive but silent, so its lease
    expires at the coordinator.  Both are fault-injection hooks used
    by the chaos suite and the examples.
    """
    problem = spec.build()
    stats_total = {"nodes": 0, "updates": 0, "allocations": 0, "improvements": 0}
    updates_sent = 0
    best = {"cost": float("inf"), "solution": None}
    seq_counter = itertools.count(1)

    def rpc(message):
        seq = next(seq_counter)
        message.seq = seq
        timeout = reply_timeout
        for _attempt in range(max_retries + 1):
            request_queue.put(message)
            deadline = time.monotonic() + timeout
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    reply = reply_queue.get(timeout=remaining)
                except queue_mod.Empty:
                    break
                reply_seq = getattr(reply, "seq", 0)
                if reply_seq in (0, seq):
                    return reply
                # A stale reply from an RPC we already retried past:
                # drain and keep waiting for the current one.
            timeout = min(timeout * 2.0, reply_timeout * _BACKOFF_CAP)
        return None  # coordinator gone for good: die silently like a crash

    def reinform_if_stale(global_best):
        # The coordinator believes something worse than our local best
        # (it recovered from an old checkpoint): push ours again.
        if best["solution"] is not None and global_best > best["cost"]:
            rpc(Push(worker_id, best["cost"], best["solution"]))

    def maybe_inject_fault() -> bool:
        """Apply the per-update fault hooks; True means exit now."""
        if (
            crash_after_updates is not None
            and updates_sent >= crash_after_updates
        ):
            return True  # simulated crash: no Bye, interval left behind
        if (
            hang_after_updates is not None
            and updates_sent == hang_after_updates
            and hang_seconds > 0
        ):
            time.sleep(hang_seconds)  # alive but silent: lease expires
        return False

    while True:
        reply = rpc(Request(worker_id, power))
        if reply is None or isinstance(reply, Terminate):
            break
        assert isinstance(reply, GrantWork)
        stats_total["allocations"] += 1
        reinform_if_stale(reply.best_cost)
        interval = Interval.from_tuple(reply.interval)
        improvements: list = []
        explorer = IntervalExplorer(
            problem,
            interval,
            incumbent=Incumbent(min(reply.best_cost, best["cost"]), None),
            on_improvement=lambda c, s: improvements.append((c, s)),
        )
        terminate = False
        while not explorer.is_finished():
            before = explorer.remaining_interval()
            report = explorer.step(update_nodes)
            after = explorer.remaining_interval()
            consumed = max(
                0, min(after.begin, before.end) - before.begin
            )
            if report.finished:
                consumed = before.length
            stats_total["nodes"] += report.nodes_processed

            if improvements:
                cost, solution = improvements[-1]
                improvements.clear()
                stats_total["improvements"] += 1
                if cost < best["cost"]:
                    best["cost"], best["solution"] = cost, solution
                ack = rpc(Push(worker_id, cost, solution))
                if ack is None:
                    return
                if isinstance(ack, Ack):
                    explorer.set_upper_bound(ack.best_cost, None)

            reconciled = rpc(
                Update(
                    worker_id,
                    explorer.remaining_interval().as_tuple(),
                    nodes=report.nodes_processed,
                    consumed=consumed,
                )
            )
            if reconciled is None:
                return
            stats_total["updates"] += 1
            updates_sent += 1
            if maybe_inject_fault():
                return
            if isinstance(reconciled, Terminate):
                terminate = True
                break
            assert isinstance(reconciled, Reconciled)
            reinform_if_stale(reconciled.best_cost)
            explorer.apply_interval(Interval.from_tuple(reconciled.interval))
            explorer.set_upper_bound(reconciled.best_cost, None)
        if terminate:
            break

    request_queue.put(Bye(worker_id, stats_total))

"""The worker process entry point of the multiprocessing runtime.

Mirrors the simulated worker's session loop (pull work, explore in
slices, push improvements, update the interval) but against real OS
queues and a real clock.  The slice is counted in *nodes*, not
seconds, so test runs with tiny instances stay deterministic.
"""

from __future__ import annotations

import queue as queue_mod
from typing import Optional

from repro.core.engine import IntervalExplorer
from repro.core.interval import Interval
from repro.core.stats import Incumbent
from repro.grid.runtime.protocol import (
    Ack,
    Bye,
    GrantWork,
    ProblemSpec,
    Push,
    Reconciled,
    Request,
    Terminate,
    Update,
)

__all__ = ["worker_main"]


def worker_main(
    worker_id: str,
    spec: ProblemSpec,
    request_queue,
    reply_queue,
    update_nodes: int = 2000,
    power: float = 1.0,
    reply_timeout: float = 60.0,
    crash_after_updates: Optional[int] = None,
) -> None:
    """Run one B&B process until the coordinator says terminate.

    ``crash_after_updates`` makes the worker exit abruptly (no Bye)
    after that many interval updates — the fault-injection hook the
    fault-tolerance tests and example use.
    """
    problem = spec.build()
    stats_total = {"nodes": 0, "updates": 0, "allocations": 0, "improvements": 0}
    updates_sent = 0
    best = {"cost": float("inf"), "solution": None}

    def rpc(message):
        request_queue.put(message)
        try:
            return reply_queue.get(timeout=reply_timeout)
        except queue_mod.Empty:
            return None  # coordinator gone: die silently like a crash

    def reinform_if_stale(global_best):
        # The coordinator believes something worse than our local best
        # (it recovered from an old checkpoint): push ours again.
        if best["solution"] is not None and global_best > best["cost"]:
            rpc(Push(worker_id, best["cost"], best["solution"]))

    while True:
        reply = rpc(Request(worker_id, power))
        if reply is None or isinstance(reply, Terminate):
            break
        assert isinstance(reply, GrantWork)
        stats_total["allocations"] += 1
        reinform_if_stale(reply.best_cost)
        interval = Interval.from_tuple(reply.interval)
        improvements: list = []
        explorer = IntervalExplorer(
            problem,
            interval,
            incumbent=Incumbent(min(reply.best_cost, best["cost"]), None),
            on_improvement=lambda c, s: improvements.append((c, s)),
        )
        terminate = False
        while not explorer.is_finished():
            before = explorer.remaining_interval()
            report = explorer.step(update_nodes)
            after = explorer.remaining_interval()
            consumed = max(
                0, min(after.begin, before.end) - before.begin
            )
            if report.finished:
                consumed = before.length
            stats_total["nodes"] += report.nodes_processed

            if improvements:
                cost, solution = improvements[-1]
                improvements.clear()
                stats_total["improvements"] += 1
                if cost < best["cost"]:
                    best["cost"], best["solution"] = cost, solution
                ack = rpc(Push(worker_id, cost, solution))
                if ack is None:
                    return
                if isinstance(ack, Ack):
                    explorer.set_upper_bound(ack.best_cost, None)

            reconciled = rpc(
                Update(
                    worker_id,
                    explorer.remaining_interval().as_tuple(),
                    nodes=report.nodes_processed,
                    consumed=consumed,
                )
            )
            if reconciled is None:
                return
            stats_total["updates"] += 1
            updates_sent += 1
            if (
                crash_after_updates is not None
                and updates_sent >= crash_after_updates
            ):
                return  # simulated crash: no Bye, interval left behind
            if isinstance(reconciled, Terminate):
                terminate = True
                break
            assert isinstance(reconciled, Reconciled)
            reinform_if_stale(reconciled.best_cost)
            explorer.apply_interval(Interval.from_tuple(reconciled.interval))
            explorer.set_upper_bound(reconciled.best_cost, None)
        if terminate:
            break

    request_queue.put(Bye(worker_id, stats_total))

"""Clients of the solve service: an async library plus a sync facade.

:class:`ServiceClient` speaks the same framed transport as the workers
(:mod:`repro.grid.net.framing`) over ``asyncio`` streams: one Hello /
Welcome handshake, then sequenced client RPCs (SubmitJob,
JobStatusRequest, CancelJob, ListJobs) whose replies are matched by
``seq``.  The service deduplicates client seqs exactly like worker
seqs, so a retried submit cannot enqueue a job twice.

:class:`SyncServiceClient` wraps each call in its own connection and
``asyncio.run`` — the shape a CLI invocation wants (`repro job ...` is
one RPC per process anyway).
"""

from __future__ import annotations

import asyncio
import uuid
from typing import Any, Dict, List, Optional, Union

from repro.grid.net.framing import (
    FrameBuffer,
    Heartbeat,
    Hello,
    Welcome,
    decode_message,
    encode_frame,
)
from repro.grid.net.transport import TransportError, TransportTimeout
from repro.grid.runtime.protocol import (
    CancelJob,
    JobAccepted,
    JobList,
    JobRefused,
    JobStatus,
    JobStatusRequest,
    ListJobs,
    ProblemSpec,
    SubmitJob,
    spec_to_wire,
)
from repro.grid.service.store import TERMINAL

__all__ = ["JobRefusedError", "ServiceClient", "SyncServiceClient"]

_READ_CHUNK = 65536


class JobRefusedError(TransportError):
    """Admission control bounced the submit."""


class ServiceClient:
    """Async client for one :class:`~...server.SolveService`.

    Use as an async context manager, or call :meth:`connect` /
    :meth:`close` explicitly.  Not task-safe: one in-flight RPC at a
    time (the service's per-client dedup assumes exactly that).
    """

    def __init__(
        self,
        host: str,
        port: int,
        client_id: Optional[str] = None,
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.client_id = client_id or f"client-{uuid.uuid4().hex[:8]}"
        self.timeout = timeout
        self.welcome: Optional[Welcome] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._buffer = FrameBuffer()
        self._inbound: List[Any] = []
        self._seq = 0

    async def __aenter__(self) -> "ServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def connect(self) -> None:
        """Open the stream and complete the Hello/Welcome handshake."""
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )
        await self._send(Hello(self.client_id))
        deadline = asyncio.get_running_loop().time() + self.timeout
        while self.welcome is None:
            message = await self._recv(deadline)
            if isinstance(message, Welcome):
                self.welcome = message
            else:
                self._inbound.append(message)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except OSError:
                pass
            self._writer = None
            self._reader = None

    # ------------------------------------------------------------------
    async def _send(self, message: Any) -> None:
        if self._writer is None:
            raise TransportError("client is not connected")
        self._writer.write(encode_frame(message))
        await self._writer.drain()

    async def _recv(self, deadline: float) -> Any:
        if self._reader is None:
            raise TransportError("client is not connected")
        while True:
            if self._inbound:
                return self._inbound.pop(0)
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                raise TransportTimeout("no reply within the client timeout")
            try:
                data = await asyncio.wait_for(
                    self._reader.read(_READ_CHUNK), remaining
                )
            except asyncio.TimeoutError:
                raise TransportTimeout(
                    "no reply within the client timeout"
                ) from None
            if not data:
                raise TransportError("service closed the connection")
            for payload in self._buffer.feed(data):
                message = decode_message(payload)
                if isinstance(message, Heartbeat):
                    continue
                self._inbound.append(message)

    async def _rpc(self, message: Any) -> Any:
        """One sequenced round trip; replies matched by seq."""
        self._seq += 1
        message.seq = self._seq
        await self._send(message)
        deadline = asyncio.get_running_loop().time() + self.timeout
        while True:
            reply = await self._recv(deadline)
            if getattr(reply, "seq", 0) in (0, self._seq):
                return reply
            # Stale reply from an abandoned RPC: drop and keep waiting.

    # ------------------------------------------------------------------
    # the API
    # ------------------------------------------------------------------
    async def submit(
        self,
        spec: Union[ProblemSpec, Dict[str, Any]],
        priority: int = 1,
        owner: str = "anonymous",
    ) -> str:
        """Enqueue one job; returns its opaque id.

        Raises :class:`JobRefusedError` when admission control says no.
        """
        wire = spec_to_wire(spec) if isinstance(spec, ProblemSpec) else spec
        reply = await self._rpc(
            SubmitJob(self.client_id, wire, priority=priority, owner=owner)
        )
        if isinstance(reply, JobRefused):
            raise JobRefusedError(reply.reason)
        if not isinstance(reply, JobAccepted):
            raise TransportError(f"unexpected submit reply {reply!r}")
        return reply.job

    async def status(self, job: str) -> JobStatus:
        reply = await self._rpc(JobStatusRequest(self.client_id, job))
        if not isinstance(reply, JobStatus):
            raise TransportError(f"unexpected status reply {reply!r}")
        return reply

    async def result(
        self,
        job: str,
        poll_interval: float = 0.2,
        timeout: Optional[float] = None,
    ) -> JobStatus:
        """Poll until the job settles; returns its terminal status."""
        deadline = (
            None
            if timeout is None
            else asyncio.get_running_loop().time() + timeout
        )
        while True:
            status = await self.status(job)
            if status.status in TERMINAL or status.status == "unknown":
                return status
            if (
                deadline is not None
                and asyncio.get_running_loop().time() >= deadline
            ):
                raise TransportTimeout(
                    f"job {job} still {status.status} after {timeout}s"
                )
            await asyncio.sleep(poll_interval)

    async def cancel(self, job: str) -> JobStatus:
        reply = await self._rpc(CancelJob(self.client_id, job))
        if not isinstance(reply, JobStatus):
            raise TransportError(f"unexpected cancel reply {reply!r}")
        return reply

    async def list_jobs(self, owner: str = "") -> List[Dict[str, Any]]:
        reply = await self._rpc(ListJobs(self.client_id, owner=owner))
        if not isinstance(reply, JobList):
            raise TransportError(f"unexpected list reply {reply!r}")
        return list(reply.jobs)


class SyncServiceClient:
    """Blocking facade: one connection + event loop per call.

    Exactly what the ``repro job`` CLI needs; library code with an
    event loop of its own should use :class:`ServiceClient` directly.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _run(self, method: str, *args: Any, **kwargs: Any) -> Any:
        async def call() -> Any:
            async with ServiceClient(
                self.host, self.port, timeout=self.timeout
            ) as client:
                return await getattr(client, method)(*args, **kwargs)

        return asyncio.run(call())

    def submit(
        self,
        spec: Union[ProblemSpec, Dict[str, Any]],
        priority: int = 1,
        owner: str = "anonymous",
    ) -> str:
        return self._run("submit", spec, priority=priority, owner=owner)

    def status(self, job: str) -> JobStatus:
        return self._run("status", job)

    def result(
        self,
        job: str,
        poll_interval: float = 0.2,
        timeout: Optional[float] = None,
    ) -> JobStatus:
        return self._run(
            "result", job, poll_interval=poll_interval, timeout=timeout
        )

    def cancel(self, job: str) -> JobStatus:
        return self._run("cancel", job)

    def list_jobs(self, owner: str = "") -> List[Dict[str, Any]]:
        return self._run("list_jobs", owner=owner)

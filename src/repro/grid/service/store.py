"""The service's job ledger: queue state over the durable checkpoint API.

A :class:`JobRecord` is everything the service knows about one job:
its problem spec in wire form, owner, priority, status and — once the
job settles — the proved result.  :class:`JobStore` keeps the records
in memory and mirrors every transition into a
:class:`~repro.core.checkpoint.MultiJobStore` when a checkpoint
directory is configured, so the service is crash-only: a status is
true the moment the meta write returns, and a restarted service
rebuilds its whole queue from ``jobs/*/meta.json`` plus each running
job's INTERVALS/SOLUTION snapshot pair.

Job ids are **opaque strings** (rule RC11): the store mints them from
``uuid4`` and orders jobs by their admission counter (``order``),
never by id.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.checkpoint import CheckpointStore, MultiJobStore

__all__ = [
    "QUEUED",
    "RUNNING",
    "DONE",
    "CANCELLED",
    "FAILED",
    "TERMINAL",
    "JobRecord",
    "JobStore",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"
FAILED = "failed"

#: States a job never leaves.
TERMINAL = frozenset({DONE, CANCELLED, FAILED})


@dataclass
class JobRecord:
    """One job's durable state (mirrors ``jobs/<id>/meta.json``)."""

    job_id: str
    spec_wire: Dict[str, Any]
    owner: str = "anonymous"
    priority: int = 1
    order: int = 0  # admission counter: the FIFO key (never the id)
    status: str = QUEUED
    submitted_at: float = 0.0  # wall clock, for operators reading meta
    queue_wait_seconds: Optional[float] = None
    cost: Optional[float] = None
    solution: Any = None
    error: str = ""
    nodes_explored: int = 0

    def is_terminal(self) -> bool:
        return self.status in TERMINAL

    def meta(self) -> Dict[str, Any]:
        return {
            "owner": self.owner,
            "priority": self.priority,
            "order": self.order,
            "status": self.status,
            "spec": dict(self.spec_wire),
            "submitted_at": self.submitted_at,
            "queue_wait_seconds": self.queue_wait_seconds,
            "cost": self.cost,
            "solution": list(self.solution)
            if isinstance(self.solution, (list, tuple))
            else self.solution,
            "error": self.error,
            "nodes_explored": self.nodes_explored,
        }

    @classmethod
    def from_meta(cls, job_id: str, meta: Dict[str, Any]) -> "JobRecord":
        solution = meta.get("solution")
        if isinstance(solution, list):
            solution = tuple(solution)
        return cls(
            job_id=job_id,
            spec_wire=dict(meta.get("spec", {})),
            owner=str(meta.get("owner", "anonymous")),
            priority=int(meta.get("priority", 1)),
            order=int(meta.get("order", 0)),
            status=str(meta.get("status", QUEUED)),
            submitted_at=float(meta.get("submitted_at", 0.0)),
            queue_wait_seconds=meta.get("queue_wait_seconds"),
            cost=meta.get("cost"),
            solution=solution,
            error=str(meta.get("error", "")),
            nodes_explored=int(meta.get("nodes_explored", 0)),
        )

    def summary(self) -> Dict[str, Any]:
        """The JSON-able shape :class:`~...protocol.JobList` carries."""
        return {
            "job": self.job_id,
            "status": self.status,
            "owner": self.owner,
            "priority": self.priority,
            "cost": self.cost,
            "nodes": self.nodes_explored,
            "error": self.error,
        }


class JobStore:
    """In-memory job table mirrored into the durable multi-job layout.

    With ``directory=None`` the store is purely in-memory (unit tests,
    throwaway services); otherwise every :meth:`persist` is an atomic
    ``meta.json`` write and :meth:`recover` reloads the full table.
    """

    def __init__(self, directory: Optional[Path] = None):
        self.disk: Optional[MultiJobStore] = (
            MultiJobStore(Path(directory)) if directory is not None else None
        )
        self._records: Dict[str, JobRecord] = {}
        self._order_counter = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def create(
        self,
        spec_wire: Dict[str, Any],
        owner: str = "anonymous",
        priority: int = 1,
        job_id: Optional[str] = None,
    ) -> JobRecord:
        """Admit one job (status ``queued``), durably."""
        if job_id is None:
            job_id = uuid.uuid4().hex[:12]
        if job_id in self._records:
            raise ValueError(f"job id {job_id!r} already exists")
        self._order_counter += 1
        record = JobRecord(
            job_id=job_id,
            spec_wire=dict(spec_wire),
            owner=owner,
            priority=priority,
            order=self._order_counter,
            submitted_at=time.time(),
        )
        self._records[job_id] = record
        self.persist(record)
        return record

    def persist(self, record: JobRecord) -> None:
        """Mirror the record's current state into ``meta.json``."""
        if self.disk is not None:
            self.disk.save_meta(record.job_id, record.meta())

    def recover(self) -> List[JobRecord]:
        """Reload every on-disk job; returns the recovered records."""
        if self.disk is None:
            return []
        recovered: List[JobRecord] = []
        for job_id in self.disk.job_ids():
            meta = self.disk.load_meta(job_id)
            if meta is None:
                continue  # a crash between mkdir and the first meta write
            record = JobRecord.from_meta(job_id, meta)
            self._records[job_id] = record
            recovered.append(record)
            if record.order > self._order_counter:
                self._order_counter = record.order
        return recovered

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        return self._records.get(job_id)

    def records(self) -> List[JobRecord]:
        """Every record, in admission order."""
        return sorted(self._records.values(), key=lambda r: r.order)

    def in_status(self, *statuses: str) -> List[JobRecord]:
        wanted = set(statuses)
        return [r for r in self.records() if r.status in wanted]

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # durable plumbing
    # ------------------------------------------------------------------
    def checkpoint_store(self, job_id: str) -> Optional[CheckpointStore]:
        """The job's own INTERVALS/SOLUTION store (None when in-memory)."""
        if self.disk is None:
            return None
        return self.disk.job_store(job_id)

    def bump_epoch(self) -> int:
        """Advance the *service* epoch (0 for an in-memory store)."""
        if self.disk is None:
            return 0
        return self.disk.bump_epoch()

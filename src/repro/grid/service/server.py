"""The multi-tenant solve server: N farmers behind one socket.

:class:`SolveService` pumps one :class:`~repro.grid.net.tcp.TcpListener`
exactly like :class:`~repro.grid.net.serve.GridServer`, but instead of
owning a single coordinator it keeps **one
:class:`~repro.grid.runtime.coordinator.Coordinator` per running job**
and lets the :class:`~repro.grid.service.scheduler.Scheduler` decide
which job feeds each hungry worker.  Workers stay dumb
interval-explorers: a ``Request`` comes in untagged, the service picks
a job, asks that job's coordinator for a slice, and wraps the grant in
a :class:`~repro.grid.runtime.protocol.JobGrant` carrying the job id
and the job's spec; the worker then tags its ``JobUpdate``/``JobPush``
traffic with the same id and the service routes each message to the
right ledger.

Crash-only by construction: job metadata transitions go through the
durable :class:`~repro.grid.service.store.JobStore`, per-job
INTERVALS/SOLUTION pairs checkpoint through each coordinator's own
:class:`~repro.core.checkpoint.CheckpointStore` (journal included),
and a restart with ``resume=True`` rebuilds the queue from
``jobs/*/meta.json``, recovering every job that was mid-flight.  The
service epoch rides the Welcome so surviving workers resync exactly as
they do against a restarted single-job server.

Delivery semantics mirror the single-job design.  Per-job coordinators
keep their own at-least-once dedup caches — a worker's global
sequence counter interleaves across jobs, but each coordinator still
sees a strictly increasing subsequence, so retry detection is intact.
Requests and client RPCs are deduplicated at the service layer
instead, because their replies (grant wrapping, scheduling) are
composed *above* any one coordinator.

A worker that moves between jobs may let an old job's lease expire;
the §4.1 interval invariant turns that into redundant exploration,
never lost work — same guarantee as a worker crash.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.interval import Interval
from repro.core.stats import Incumbent
from repro.exceptions import RuntimeProtocolError
from repro.grid.net.tcp import TcpListener
from repro.grid.net.transport import TransportTimeout
from repro.grid.runtime.coordinator import Coordinator
from repro.grid.runtime.protocol import (
    Ack,
    Bye,
    CancelJob,
    Idle,
    JobAccepted,
    JobGrant,
    JobList,
    JobPush,
    JobRefused,
    JobStatus,
    JobStatusRequest,
    JobUpdate,
    ListJobs,
    Push,
    Reconciled,
    Request,
    SubmitJob,
    Terminate,
    Update,
    spec_from_wire,
)
from repro.grid.service.scheduler import Scheduler, SchedulerConfig
from repro.grid.service.store import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobStore,
)

__all__ = ["ServiceConfig", "ServiceReport", "SolveService"]


@dataclass
class ServiceConfig:
    """Tuning of the multi-tenant solve server."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick; see SolveService.address
    duplication_threshold: int = 64
    checkpoint_dir: Optional[Path] = None
    checkpoint_period: float = 2.0
    deadline: Optional[float] = None  # wall-clock cap; None serves forever
    poll_interval: float = 0.05
    lease_seconds: Optional[float] = 30.0
    peer_timeout: Optional[float] = 30.0
    linger_seconds: float = 10.0  # grace for Byes once draining
    resume: bool = False  # rebuild the job table from checkpoint_dir
    journal: bool = True
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    idle_retry_after: float = 0.25  # worker nap when no job has work
    drain_when_idle: bool = False  # exit once every seen job settled


@dataclass
class ServiceReport:
    """What one service incarnation did before exiting."""

    jobs: Dict[str, Dict[str, Any]]
    wall_seconds: float
    epoch: int
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_cancelled: int = 0
    work_allocations: int = 0
    requests_idled: int = 0
    protocol_errors: int = 0
    worker_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    aborted: bool = False


class SolveService:
    """A job-queue front door over the shared worker fleet."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        if self.config.resume and self.config.checkpoint_dir is None:
            raise RuntimeProtocolError(
                "--resume requires a checkpoint directory"
            )
        self.jobs = JobStore(self.config.checkpoint_dir)
        self.scheduler = Scheduler(self.config.scheduler)
        self._coordinators: Dict[str, Coordinator] = {}
        if self.config.resume:
            self.jobs.recover()
        self.epoch = self.jobs.bump_epoch()
        if self.config.resume:
            # Jobs that were mid-flight when the previous incarnation
            # died resume from their own snapshot+journal; queued jobs
            # just wait for promotion again.
            for record in self.jobs.in_status(RUNNING):
                self._start_job(record, recover=True)
        self.listener = TcpListener(
            self.config.host,
            self.config.port,
            spec_wire=None,  # specs travel per JobGrant, not per Welcome
            peer_timeout=self.config.peer_timeout,
            epoch=self.epoch,
        )
        # Service-layer at-least-once caches (Requests + client RPCs);
        # Update/Push dedup stays inside each job's coordinator.
        self._last_seq: Dict[str, int] = {}
        self._last_reply: Dict[str, Any] = {}
        self._clients: Set[str] = set()
        self.byes: Dict[str, Dict[str, float]] = {}
        self.work_allocations = 0
        self.requests_idled = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.protocol_errors = 0
        self._jobs_seen = len(self.jobs)
        self._draining = False
        self._shutdown = False
        self._abort = False

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        return self.listener.address

    def shutdown(self) -> None:
        """Ask ``serve_forever`` to return after its current iteration."""
        self._shutdown = True

    def abort(self) -> None:
        """Stop without final checkpoints — the in-process ``kill -9``."""
        self._abort = True
        self._shutdown = True

    # ------------------------------------------------------------------
    # job lifecycle
    # ------------------------------------------------------------------
    def _start_job(self, record: JobRecord, recover: bool = False) -> bool:
        """Promote ``record`` to running (or fail it durably)."""
        try:
            problem = spec_from_wire(record.spec_wire).build()
            root = Interval(0, problem.total_leaves())
        except Exception as exc:  # noqa: BLE001 - tenant input, not ours
            record.status = FAILED
            record.error = f"spec failed to build: {exc}"
            self.jobs.persist(record)
            self.jobs_failed += 1
            return False
        store = self.jobs.checkpoint_store(record.job_id)
        config = self.config
        if recover and store is not None:
            coordinator = Coordinator.recover(
                store,
                root,
                duplication_threshold=config.duplication_threshold,
                checkpoint_period=config.checkpoint_period,
                lease_seconds=config.lease_seconds,
                journal=config.journal,
            )
        else:
            coordinator = Coordinator(
                root,
                duplication_threshold=config.duplication_threshold,
                store=store,
                checkpoint_period=config.checkpoint_period,
                initial_best=Incumbent(),
                lease_seconds=config.lease_seconds,
                journal=config.journal,
            )
        # A problem-supplied warm start seeds the job's incumbent; the
        # incumbent is monotonic, so this can only tighten pruning and
        # never changes the proved optimum.
        warm = problem.warm_start()
        if warm is not None:
            coordinator.solution.update(*warm)
        self._coordinators[record.job_id] = coordinator
        if record.status != RUNNING:
            record.status = RUNNING
            if record.submitted_at:
                record.queue_wait_seconds = max(
                    0.0, time.time() - record.submitted_at
                )
            self.jobs.persist(record)
        return True

    def _finalize_job(self, record: JobRecord) -> None:
        """A job's interval set emptied: persist the proof, free the slot."""
        coordinator = self._coordinators.pop(record.job_id, None)
        if coordinator is None:
            return
        record.status = DONE
        record.cost = coordinator.solution.cost
        record.solution = coordinator.solution.solution
        record.nodes_explored = coordinator.nodes_explored
        if not self._abort:
            coordinator.maybe_checkpoint(force=True)
        self.jobs.persist(record)
        self.jobs_completed += 1

    def _cancel_job(self, record: JobRecord) -> None:
        coordinator = self._coordinators.pop(record.job_id, None)
        record.status = CANCELLED
        if coordinator is not None:
            record.cost = coordinator.solution.cost
            record.solution = coordinator.solution.solution
            record.nodes_explored = coordinator.nodes_explored
        self.jobs.persist(record)
        self.jobs_cancelled += 1

    def _sweep_finished(self) -> None:
        for job_id in list(self._coordinators):
            if self._coordinators[job_id].intervals.is_empty():
                record = self.jobs.get(job_id)
                if record is not None:
                    self._finalize_job(record)
                else:  # pragma: no cover - records outlive coordinators
                    self._coordinators.pop(job_id, None)

    def _promote(self) -> None:
        while True:
            candidate = self.scheduler.next_promotion(
                self.jobs.in_status(QUEUED), self.jobs.in_status(RUNNING)
            )
            if candidate is None:
                return
            self._start_job(candidate)

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    def _dedup(self, sender: str, seq: int) -> Tuple[bool, Any]:
        """Service-layer retry cache (same discipline as the coordinator)."""
        if seq > 0:
            last = self._last_seq.get(sender, 0)
            if seq == last:
                return True, self._last_reply.get(sender)
            if seq < last:
                return True, None
        return False, None

    def _remember(self, sender: str, seq: int, reply: Any) -> Any:
        if seq > 0:
            if reply is not None:
                reply.seq = seq
            self._last_seq[sender] = seq
            self._last_reply[sender] = reply
        return reply

    def _handle(self, message: Any) -> Optional[Any]:
        if isinstance(message, Request):
            return self._on_request(message)
        if isinstance(message, JobUpdate):
            return self._on_job_update(message)
        if isinstance(message, JobPush):
            return self._on_job_push(message)
        if isinstance(message, Bye):
            return self._on_bye(message)
        if isinstance(message, SubmitJob):
            return self._on_client(message, self._on_submit)
        if isinstance(message, JobStatusRequest):
            return self._on_client(message, self._on_status)
        if isinstance(message, CancelJob):
            return self._on_client(message, self._on_cancel)
        if isinstance(message, ListJobs):
            return self._on_client(message, self._on_list)
        if isinstance(message, (Update, Push)):
            # Untagged worker traffic means a legacy single-job worker
            # got a grant it should not have; refuse loudly.
            raise RuntimeProtocolError(
                f"service received untagged {type(message).__name__}; "
                f"workers must speak the job-tagged protocol"
            )
        raise RuntimeProtocolError(
            f"service cannot handle {type(message).__name__}"
        )

    # -- workers -------------------------------------------------------
    def _on_request(self, msg: Request) -> Any:
        cached, reply = self._dedup(msg.worker, msg.seq)
        if cached:
            return reply
        reply = self._grant_for(msg)
        return self._remember(msg.worker, msg.seq, reply)

    def _grant_for(self, msg: Request) -> Any:
        if self._draining:
            return Terminate(float("inf"))
        while True:
            runnable: List[Tuple[JobRecord, int]] = []
            for record in self.jobs.in_status(RUNNING):
                coordinator = self._coordinators.get(record.job_id)
                if coordinator is None or coordinator.intervals.is_empty():
                    continue
                runnable.append((record, self._active_workers(coordinator)))
            record = self.scheduler.pick_grant(runnable)
            if record is None:
                self.requests_idled += 1
                return Idle(self.config.idle_retry_after)
            coordinator = self._coordinators[record.job_id]
            # The coordinator's own handle() would cache this reply
            # under the worker's seq; harmless, but the authoritative
            # cache for Requests is the service layer's (the wrapped
            # JobGrant), so dispatch below it.
            inner = coordinator.handle(
                Request(msg.worker, msg.power, seq=msg.seq)
            )
            if isinstance(inner, Terminate):
                # That job just proved empty; settle it and pick again.
                self._finalize_job(record)
                continue
            if inner is None:  # pragma: no cover - seq cached upstream
                return None
            self.work_allocations += 1
            return JobGrant(
                record.job_id,
                inner.interval,
                inner.best_cost,
                spec=dict(record.spec_wire),
            )

    def _on_job_update(self, msg: JobUpdate) -> Any:
        coordinator = self._coordinators.get(msg.job)
        if coordinator is None:
            # The job settled (done/cancelled/failed) while the worker
            # explored: report its slice as withdrawn so the explorer
            # folds immediately and asks for new work.
            record = self.jobs.get(msg.job)
            cost = (
                record.cost
                if record is not None and record.cost is not None
                else float("inf")
            )
            begin = msg.interval[0]
            reply: Any = Reconciled((begin, begin), cost)
            reply.seq = msg.seq
            return reply
        return coordinator.handle(
            Update(
                msg.worker,
                msg.interval,
                nodes=msg.nodes,
                consumed=msg.consumed,
                seq=msg.seq,
            )
        )

    def _on_job_push(self, msg: JobPush) -> Any:
        coordinator = self._coordinators.get(msg.job)
        if coordinator is None:
            reply: Any = Ack(float("inf"))
            reply.seq = msg.seq
            return reply
        return coordinator.handle(
            Push(msg.worker, msg.cost, msg.solution, seq=msg.seq)
        )

    def _on_bye(self, msg: Bye) -> Any:
        self.byes[msg.worker] = msg.stats
        for coordinator in self._coordinators.values():
            coordinator.release_worker(msg.worker)
        reply: Any = Ack(float("inf"))
        reply.seq = msg.seq
        return reply

    @staticmethod
    def _active_workers(coordinator: Coordinator) -> int:
        owners: Set[str] = set()
        for rec in coordinator.intervals.records().values():
            owners |= rec.owners
        return len(owners)

    # -- clients -------------------------------------------------------
    def _on_client(self, msg: Any, handler: Any) -> Any:
        self._clients.add(msg.worker)
        cached, reply = self._dedup(msg.worker, msg.seq)
        if cached:
            return reply
        reply = handler(msg)
        return self._remember(msg.worker, msg.seq, reply)

    def _on_submit(self, msg: SubmitJob) -> Any:
        if self._draining:
            return JobRefused("service is draining")
        refusal = self.scheduler.admission_error(
            self.jobs.in_status(QUEUED), msg.priority
        )
        if refusal is not None:
            return JobRefused(refusal)
        try:
            # Build once to validate: a spec that cannot produce a
            # problem must bounce at the front door, not fail the job
            # minutes later in the scheduler.
            spec_from_wire(msg.spec).build()
        except Exception as exc:  # noqa: BLE001 - tenant input
            return JobRefused(f"spec rejected: {exc}")
        record = self.jobs.create(
            msg.spec, owner=msg.owner, priority=msg.priority
        )
        self._jobs_seen += 1
        return JobAccepted(record.job_id)

    def _job_status(self, record: JobRecord) -> JobStatus:
        coordinator = self._coordinators.get(record.job_id)
        if coordinator is not None:
            best_cost = coordinator.solution.cost
            nodes = coordinator.nodes_explored
        else:
            best_cost = (
                record.cost if record.cost is not None else float("inf")
            )
            nodes = record.nodes_explored
        return JobStatus(
            job=record.job_id,
            status=record.status,
            best_cost=best_cost,
            solution=record.solution if record.status == DONE else None,
            owner=record.owner,
            priority=record.priority,
            nodes=nodes,
            error=record.error,
        )

    def _on_status(self, msg: JobStatusRequest) -> Any:
        record = self.jobs.get(msg.job)
        if record is None:
            return JobStatus(job=msg.job, status="unknown")
        return self._job_status(record)

    def _on_cancel(self, msg: CancelJob) -> Any:
        record = self.jobs.get(msg.job)
        if record is None:
            return JobStatus(job=msg.job, status="unknown")
        if record.status in (QUEUED, RUNNING):
            self._cancel_job(record)
        return self._job_status(record)

    def _on_list(self, msg: ListJobs) -> Any:
        summaries = [
            record.summary()
            for record in self.jobs.records()
            if not msg.owner or record.owner == msg.owner
        ]
        return JobList(summaries)

    # ------------------------------------------------------------------
    # the pump
    # ------------------------------------------------------------------
    def serve_forever(self) -> ServiceReport:
        """Serve until shutdown (or, when draining, until the fleet left)."""
        config = self.config
        listener = self.listener
        started = time.monotonic()
        drained_since: Optional[float] = None
        try:
            while not self._shutdown:
                now = time.monotonic()
                if (
                    config.deadline is not None
                    and now - started > config.deadline
                ):
                    raise RuntimeProtocolError(
                        f"service exceeded the {config.deadline}s deadline"
                    )
                self._sweep_finished()
                self._promote()
                if (
                    config.drain_when_idle
                    and self._jobs_seen > 0
                    and not self.jobs.in_status(QUEUED, RUNNING)
                ):
                    self._draining = True
                if self._draining:
                    if drained_since is None:
                        drained_since = now
                    remaining = (
                        set(listener.connected_workers()) - self._clients
                    )
                    if remaining <= set(self.byes):
                        break
                    if now - drained_since > config.linger_seconds:
                        break
                else:
                    drained_since = None
                for coordinator in self._coordinators.values():
                    coordinator.maybe_checkpoint()
                try:
                    message = listener.recv(timeout=config.poll_interval)
                except TransportTimeout:
                    self._check_leases()
                    continue
                try:
                    reply = self._handle(message)
                except RuntimeProtocolError:
                    # One bad peer must not take the service down.
                    self.protocol_errors += 1
                    continue
                if reply is not None:
                    listener.send(message.worker, reply)
                self._check_leases()
        finally:
            if not self._abort:
                for coordinator in self._coordinators.values():
                    coordinator.maybe_checkpoint(force=True)
            listener.close()
        return self._report(time.monotonic() - started)

    def _check_leases(self) -> None:
        for coordinator in self._coordinators.values():
            coordinator.check_leases()

    def _report(self, wall_seconds: float) -> ServiceReport:
        jobs: Dict[str, Dict[str, Any]] = {}
        for record in self.jobs.records():
            doc = record.summary()
            doc["queue_wait_seconds"] = record.queue_wait_seconds
            doc["solution"] = (
                list(record.solution)
                if isinstance(record.solution, (list, tuple))
                else record.solution
            )
            jobs[record.job_id] = doc
        return ServiceReport(
            jobs=jobs,
            wall_seconds=wall_seconds,
            epoch=self.epoch,
            jobs_completed=self.jobs_completed,
            jobs_failed=self.jobs_failed,
            jobs_cancelled=self.jobs_cancelled,
            work_allocations=self.work_allocations,
            requests_idled=self.requests_idled,
            protocol_errors=self.protocol_errors,
            worker_stats=dict(self.byes),
            aborted=self._abort,
        )

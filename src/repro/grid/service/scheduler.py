"""Slice scheduling and admission control across concurrent jobs.

Two decisions live here, both pure functions over job records so they
unit-test without a server:

* **Admission / promotion** — whether a submit is accepted at all
  (queue depth cap) and which queued job fills a freed running slot
  (always oldest-first, skipping owners already at their running cap).
* **Grant allocation** — which *running* job feeds the next hungry
  worker.  ``"fifo"`` drains jobs strictly in admission order (the
  whole fleet grinds one job, then the next); ``"fair"`` hands the
  slice to the job with the smallest ``active_workers / priority``
  share, so a priority-2 job holds twice the fleet of a priority-1
  job at equilibrium and a newly promoted job (0 workers) always gets
  fed first — weighted fair sharing without starvation.

Job ids are opaque strings (rule RC11): every ordering in this module
keys on the admission counter ``order`` or on worker counts, never on
the id itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.grid.service.store import JobRecord

__all__ = ["SchedulerConfig", "Scheduler", "POLICIES"]

POLICIES = ("fifo", "fair")


@dataclass
class SchedulerConfig:
    """Knobs of the multi-job allocator.

    ``max_running_jobs`` bounds how many coordinators the service keeps
    hot at once; ``max_queued_jobs`` bounds the backlog admission will
    accept; ``max_running_per_owner`` keeps one tenant from occupying
    every running slot.
    """

    policy: str = "fair"
    max_running_jobs: int = 4
    max_queued_jobs: int = 64
    max_running_per_owner: int = 2

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown scheduling policy {self.policy!r} "
                f"(expected one of {POLICIES})"
            )
        if self.max_running_jobs < 1:
            raise ValueError("max_running_jobs must be >= 1")
        if self.max_queued_jobs < 1:
            raise ValueError("max_queued_jobs must be >= 1")
        if self.max_running_per_owner < 1:
            raise ValueError("max_running_per_owner must be >= 1")


class Scheduler:
    """Stateless policy object: all inputs arrive per call."""

    def __init__(self, config: Optional[SchedulerConfig] = None):
        self.config = config or SchedulerConfig()

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def admission_error(
        self, queued: Sequence[JobRecord], priority: int
    ) -> Optional[str]:
        """Why a submit must be refused, or ``None`` to accept it."""
        if priority < 1:
            return f"priority must be >= 1 (got {priority})"
        if len(queued) >= self.config.max_queued_jobs:
            return (
                f"queue is full "
                f"({len(queued)}/{self.config.max_queued_jobs} jobs)"
            )
        return None

    def next_promotion(
        self,
        queued: Sequence[JobRecord],
        running: Sequence[JobRecord],
    ) -> Optional[JobRecord]:
        """The queued job to promote into a free running slot, if any.

        Promotion is always oldest-first regardless of grant policy —
        fairness is applied at slice-grant time, where it is cheap to
        revisit every pump tick; reordering the queue itself would
        starve old submissions outright.
        """
        if len(running) >= self.config.max_running_jobs:
            return None
        owner_running: Dict[str, int] = {}
        for record in running:
            owner_running[record.owner] = owner_running.get(record.owner, 0) + 1
        for record in sorted(queued, key=lambda r: r.order):
            if (
                owner_running.get(record.owner, 0)
                < self.config.max_running_per_owner
            ):
                return record
        return None

    # ------------------------------------------------------------------
    # grant allocation
    # ------------------------------------------------------------------
    def pick_grant(
        self, runnable: Sequence[Tuple[JobRecord, int]]
    ) -> Optional[JobRecord]:
        """Which running job serves the next worker Request.

        ``runnable`` pairs each candidate record with its current
        count of distinct active workers.  Returns ``None`` when no
        job can take a worker (the server then answers ``Idle``).
        """
        if not runnable:
            return None
        if self.config.policy == "fifo":
            return min(runnable, key=lambda item: item[0].order)[0]
        # Weighted fair share: feed the job holding the smallest
        # fraction of the fleet relative to its priority; admission
        # order breaks ties so equal-share jobs drain oldest-first.
        return min(
            runnable,
            key=lambda item: (item[1] / item[0].priority, item[0].order),
        )[0]

    def describe(self) -> str:
        c = self.config
        return (
            f"{c.policy} (max_running={c.max_running_jobs}, "
            f"max_queued={c.max_queued_jobs}, "
            f"per_owner={c.max_running_per_owner})"
        )

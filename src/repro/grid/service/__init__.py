"""Multi-tenant solve service: many B&B jobs over one worker fleet.

The paper's farmer–worker design (§4) dedicates the whole grid to a
single resolution.  This package is the front door that lifts that
restriction: a job queue (:mod:`store`), a slice scheduler
(:mod:`scheduler`), a network server multiplexing per-job coordinators
over the PR 4 transport (:mod:`server`), and an async client
(:mod:`client`).  Interval coding (§3, eq. 7–9) makes the sharding
natural — a job is exactly one INTERVALS/SOLUTION pair, so the service
is N independent farmers behind one socket and one fleet.

Submodules are imported lazily by the CLI; importing the package does
not pull the server (and its transport thread machinery) in.
"""

from repro.grid.service.scheduler import Scheduler, SchedulerConfig
from repro.grid.service.store import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL,
    JobRecord,
    JobStore,
)

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "TERMINAL",
    "JobRecord",
    "JobStore",
    "Scheduler",
    "SchedulerConfig",
]

"""Metrics collection: everything Table 2 and Figure 7 report.

The paper's execution statistics (Table 2) are:

    Running wall clock time | Total cpu time | Average number of
    workers | Maximum number of workers | Worker CPU exploitation |
    Coordinator CPU exploitation | Checkpoint operations | Work
    allocations | Explored nodes | Redundant nodes

plus Figure 7's time series of exploited processors.  The collector
accumulates the raw events; :meth:`MetricsCollector.table2` reduces
them with the same definitions the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Table2Stats", "MetricsCollector"]


@dataclass
class Table2Stats:
    """One row set of the paper's Table 2 (plus the optimum found)."""

    wall_clock_seconds: float
    total_cpu_seconds: float
    average_workers: float
    maximum_workers: int
    worker_exploitation: float  # 0..1
    coordinator_exploitation: float  # 0..1
    checkpoint_operations: int
    work_allocations: int
    explored_nodes: int
    redundant_node_rate: float  # 0..1
    best_cost: float
    optimum_proved: bool

    def rows(self) -> List[Tuple[str, str]]:
        """(label, value) pairs in the paper's Table 2 order."""
        days = self.wall_clock_seconds / 86_400
        years = self.total_cpu_seconds / (365.25 * 86_400)
        return [
            ("Running wall clock time", f"{days:.2f} days"),
            ("Total cpu time", f"{years:.2f} years"),
            ("Average number of workers", f"{self.average_workers:.0f}"),
            ("Maximum number of workers", f"{self.maximum_workers:,}"),
            ("Worker CPU exploitation", f"{self.worker_exploitation:.0%}"),
            ("Coordinator CPU exploitation", f"{self.coordinator_exploitation:.1%}"),
            ("Checkpoint operations", f"{self.checkpoint_operations:,}"),
            ("Work allocations", f"{self.work_allocations:,}"),
            ("Explored nodes", f"{self.explored_nodes:.4e}"),
            ("Redundant nodes", f"{self.redundant_node_rate:.2%}"),
        ]


class MetricsCollector:
    """Accumulates simulator events into the paper's statistics."""

    def __init__(self, total_leaves: int):
        self.total_leaves = total_leaves
        # worker accounting
        self.worker_busy: Dict[str, float] = {}
        self.worker_available: Dict[str, float] = {}
        self.nodes_explored = 0
        self.leaves_consumed = 0
        # farmer accounting
        self.farmer_busy = 0.0
        self.farmer_span = 0.0
        self.farmer_checkpoints = 0
        # protocol counters (mirrors of IntervalSet counters + messages)
        self.worker_checkpoint_ops = 0
        self.work_allocations = 0
        self.messages = 0
        self.message_bytes = 0
        # availability time series for Figure 7
        self._active = 0
        self.series: List[Tuple[float, int]] = [(0.0, 0)]
        # solution trajectory
        self.improvements: List[Tuple[float, float]] = []  # (time, cost)

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------
    def worker_joined(self, t: float) -> None:
        self._active += 1
        self.series.append((t, self._active))

    def worker_left(self, t: float) -> None:
        self._active -= 1
        self.series.append((t, self._active))

    def add_busy(self, worker: str, seconds: float) -> None:
        self.worker_busy[worker] = self.worker_busy.get(worker, 0.0) + seconds

    def add_available(self, worker: str, seconds: float) -> None:
        self.worker_available[worker] = (
            self.worker_available.get(worker, 0.0) + seconds
        )

    def add_exploration(self, nodes: int, consumed: int) -> None:
        self.nodes_explored += nodes
        self.leaves_consumed += consumed

    def add_farmer_busy(self, seconds: float) -> None:
        self.farmer_busy += seconds

    def message_sent(self, size_bytes: int) -> None:
        self.messages += 1
        self.message_bytes += size_bytes

    def solution_improved(self, t: float, cost: float) -> None:
        self.improvements.append((t, cost))

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def availability_series(
        self, sample_period: Optional[float] = None, horizon: Optional[float] = None
    ) -> List[Tuple[float, int]]:
        """Figure 7's series; optionally resampled on a regular grid."""
        if sample_period is None:
            return list(self.series)
        horizon = horizon if horizon is not None else self.series[-1][0]
        out: List[Tuple[float, int]] = []
        idx = 0
        current = 0
        t = 0.0
        while t <= horizon:
            while idx < len(self.series) and self.series[idx][0] <= t:
                current = self.series[idx][1]
                idx += 1
            out.append((t, current))
            t += sample_period
        return out

    def average_and_peak_workers(self, horizon: float) -> Tuple[float, int]:
        """Time-weighted average and max of the active-worker count."""
        if horizon <= 0:
            return 0.0, 0
        total = 0.0
        peak = 0
        for (t0, n), (t1, _) in zip(self.series, self.series[1:] + [(horizon, 0)]):
            span = max(0.0, min(t1, horizon) - min(t0, horizon))
            total += n * span
            peak = max(peak, n)
        return total / horizon, peak

    def table2(
        self, wall_clock: float, best_cost: float, optimum_proved: bool
    ) -> Table2Stats:
        avg, peak = self.average_and_peak_workers(wall_clock)
        busy = sum(self.worker_busy.values())
        available = sum(self.worker_available.values())
        overlap = max(0, self.leaves_consumed - self.total_leaves)
        return Table2Stats(
            wall_clock_seconds=wall_clock,
            total_cpu_seconds=busy,
            average_workers=avg,
            maximum_workers=peak,
            worker_exploitation=busy / available if available > 0 else 0.0,
            coordinator_exploitation=(
                self.farmer_busy / wall_clock if wall_clock > 0 else 0.0
            ),
            checkpoint_operations=self.worker_checkpoint_ops,
            work_allocations=self.work_allocations,
            explored_nodes=self.nodes_explored,
            redundant_node_rate=(
                # repro-check: ignore[RC01] -- reporting ratio for Table 2, not interval state
                overlap / self.leaves_consumed if self.leaves_consumed else 0.0
            ),
            best_cost=best_cost,
            optimum_proved=optimum_proved,
        )

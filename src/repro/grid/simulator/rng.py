"""Named deterministic random streams for the simulator.

Every stochastic component (availability of host 17, the synthetic
workload's cost field, failure times...) draws from its own stream,
derived from the run seed and a stable name.  Adding a new component
therefore never perturbs the draws of existing ones — simulation runs
stay comparable across code versions.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "stable_seed"]


def stable_seed(*parts: object) -> int:
    """A 64-bit seed derived from the parts, stable across processes
    (unlike ``hash``, which Python salts per process)."""
    digest = hashlib.sha256("/".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory of named, independent ``numpy`` generators."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, *name_parts: object) -> np.random.Generator:
        """The generator for a named stream (created on first use)."""
        key = tuple(repr(p) for p in name_parts)
        if key not in self._streams:
            self._streams[key] = np.random.default_rng(
                np.random.SeedSequence([self.seed, stable_seed(*name_parts)])
            )
        return self._streams[key]

"""The simulated B&B process (worker) — paper §4.

Lifecycle follows the cycle-stealing availability trace of its host:
each up-period is a *session*.  Inside a session the worker pulls work
(WorkRequest), explores its interval in slices of ``update_period``
virtual seconds, pushes solution improvements immediately, and reports
its remaining interval at each slice boundary (the worker-side
checkpoint of §4.1).  A down-transition is a crash: no goodbye, the
unit is dropped, the coordinator's copy lingers until reassigned.

Every exchange blocks the worker for one round trip (pull model); the
time spent waiting counts against the 97 % exploitation figure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.exceptions import SimulationError
from repro.grid.simulator.availability import AvailabilityTrace
from repro.grid.simulator.events import SimClock
from repro.grid.simulator.farmer import SimFarmer
from repro.grid.simulator.messages import (
    IntervalUpdate,
    SolutionAck,
    SolutionPush,
    UpdateReply,
    WorkReply,
    WorkRequest,
)
from repro.grid.simulator.metrics import MetricsCollector
from repro.grid.simulator.network import NetworkModel
from repro.grid.simulator.platform import HostSpec
from repro.grid.simulator.workload import Workload, WorkUnit

__all__ = ["WorkerConfig", "SimWorker"]


@dataclass
class WorkerConfig:
    """Knobs of a B&B process."""

    update_period: float = 30.0  # seconds between interval updates
    retry_timeout: Optional[float] = None  # resend if no reply (farmer down)


class SimWorker:
    """One B&B process bound to one (volatile) host."""

    def __init__(
        self,
        clock: SimClock,
        host: HostSpec,
        trace: AvailabilityTrace,
        farmer: SimFarmer,
        farmer_cluster: str,
        network: NetworkModel,
        workload: Workload,
        metrics: MetricsCollector,
        config: Optional[WorkerConfig] = None,
    ):
        self.clock = clock
        self.host = host
        self.trace = trace
        self.farmer = farmer
        self.farmer_cluster = farmer_cluster
        self.network = network
        self.workload = workload
        self.metrics = metrics
        self.config = config or WorkerConfig()
        self.id = host.host_id
        self.power = host.relative_power
        self._epoch = 0  # bumped at session end; stale callbacks no-op
        self._in_session = False
        self._session_started = 0.0
        self._leave_time = 0.0
        self._unit: Optional[WorkUnit] = None
        self._terminated = False
        self._seq = itertools.count()
        self.sessions = 0
        self.crash_count = 0
        # Local best (sharing rules 1-3, §4.4).  Kept so a worker that
        # observes a *stale* global SOLUTION — the farmer recovered
        # from a checkpoint taken before our push — re-informs the
        # coordinator instead of silently letting the value be lost.
        self._best_cost = float("inf")
        self._best_solution = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule all join/leave transitions from the trace."""
        for join, leave in self.trace.periods:
            self.clock.schedule_at(join, self._join, leave)

    def _join(self, leave_time: float) -> None:
        if self._terminated:
            return
        self._epoch += 1
        self._in_session = True
        self._session_started = self.clock.now
        self._leave_time = leave_time
        self.sessions += 1
        self.metrics.worker_joined(self.clock.now)
        self.clock.schedule_at(leave_time, self._leave, self._epoch)
        self._request_work()

    def _leave(self, epoch: int) -> None:
        if epoch != self._epoch or not self._in_session:
            return
        self._close_session()
        if self._unit is not None and not self._unit.is_finished():
            self.crash_count += 1
        self._unit = None

    def _close_session(self) -> None:
        self._in_session = False
        self._epoch += 1
        self.metrics.worker_left(self.clock.now)
        self.metrics.add_available(
            self.id, self.clock.now - self._session_started
        )

    def flush_accounting(self) -> None:
        """Account the in-progress session (simulation ended mid-run)."""
        if self._in_session:
            self.metrics.add_available(
                self.id, self.clock.now - self._session_started
            )
            self._session_started = self.clock.now

    # ------------------------------------------------------------------
    # messaging (pull model with optional retry)
    # ------------------------------------------------------------------
    def _send(self, message: Any, on_reply: Callable[[Any], None]) -> None:
        epoch = self._epoch
        seq = next(self._seq)
        pending = {"done": False}
        size = message.wire_size()
        self.metrics.message_sent(size)
        out_delay = self.network.delay(
            self.host.cluster, self.farmer_cluster, size
        )

        def respond(reply: Any) -> None:
            back_delay = self.network.delay(
                self.farmer_cluster, self.host.cluster, reply.wire_size()
            )
            self.clock.schedule(back_delay, receive, reply)

        def receive(reply: Any) -> None:
            if epoch != self._epoch or pending["done"]:
                return  # session ended, or a retry already won
            pending["done"] = True
            on_reply(reply)

        def retry() -> None:
            if epoch != self._epoch or pending["done"]:
                return
            pending["done"] = True  # kill this attempt; resend fresh
            self._send(message, on_reply)

        self.clock.schedule(
            out_delay, self.farmer.deliver, message, respond
        )
        if self.config.retry_timeout is not None:
            self.clock.schedule(self.config.retry_timeout, retry)

    # ------------------------------------------------------------------
    # protocol: request -> explore slices -> update -> ...
    # ------------------------------------------------------------------
    def _request_work(self) -> None:
        if not self._in_session:
            return
        self._send(
            WorkRequest(self.id, self.power), self._on_work_reply
        )

    def _on_work_reply(self, reply: WorkReply) -> None:
        if reply.terminate or reply.interval is None:
            self._terminated = True
            self._close_session()
            return
        self._reinform_if_stale(reply.best_cost)
        self._unit = self.workload.create_unit(
            reply.interval, min(reply.best_cost, self._best_cost)
        )
        self._explore_slice()

    def _explore_slice(self) -> None:
        if not self._in_session or self._unit is None:
            return
        budget = min(
            self.config.update_period, self._leave_time - self.clock.now
        )
        if budget <= 0:
            return  # the leave event will fire at this instant
        report = self._unit.advance(budget, self.power)
        self.metrics.add_busy(self.id, report.elapsed)
        self.metrics.add_exploration(report.nodes, report.consumed)
        # The slice conceptually occupies [now, now + elapsed].
        self.clock.schedule(report.elapsed, self._after_slice, report, self._epoch)

    def _after_slice(self, report, epoch: int) -> None:
        if epoch != self._epoch or self._unit is None:
            return
        if report.improvements:
            cost, solution = report.improvements[-1]  # best of the slice
            if cost < self._best_cost:
                self._best_cost = cost
                self._best_solution = solution

            def after_push(ack: SolutionAck) -> None:
                if self._unit is not None:
                    self._unit.set_upper_bound(ack.best_cost)
                self._send_update()

            self._send(SolutionPush(self.id, cost, solution), after_push)
        else:
            self._send_update()

    def _reinform_if_stale(self, global_best: float) -> None:
        """Sharing repair: the coordinator believes something worse
        than our local best (it recovered from an old checkpoint) —
        push our solution again."""
        if self._best_solution is not None and global_best > self._best_cost:
            self._send(
                SolutionPush(self.id, self._best_cost, self._best_solution),
                lambda ack: None,
            )

    def _send_update(self) -> None:
        if self._unit is None:
            return
        remaining = self._unit.remaining_interval()
        msg = IntervalUpdate(
            self.id, remaining, consumed=0, nodes=0
        )
        self._send(msg, self._on_update_reply)

    def _on_update_reply(self, reply: UpdateReply) -> None:
        if self._unit is None:
            return
        self._reinform_if_stale(reply.best_cost)
        self._unit.apply_interval(reply.interval)
        self._unit.set_upper_bound(reply.best_cost)
        if self._unit.is_finished():
            self._unit = None
            self._request_work()
        else:
            self._explore_slice()

    # ------------------------------------------------------------------
    @property
    def terminated(self) -> bool:
        return self._terminated

"""Cycle-stealing availability traces (drives Figure 7).

The paper deployed workers "according to the cycle stealing model" on
non-dedicated educational machines: a host computes only while idle,
disappears when a student sits down or the machine reboots, and comes
back later.  Figure 7 shows the resulting churn — the exploited
processor count oscillating between a few tens and ~1195 with a mean
of 328 over 25 days.

A trace is an alternating sequence of up/down periods.  Durations are
exponential with configurable means; non-dedicated hosts additionally
get a diurnal modulation (machines are free at night, busy during
teaching hours), which reproduces Figure 7's banded look.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import SimulationError
from repro.grid.simulator.platform import HostSpec

__all__ = ["AvailabilityModel", "AvailabilityTrace", "paper_availability_model"]

DAY = 86_400.0


@dataclass
class AvailabilityTrace:
    """Up-intervals ``[(join, leave), ...]`` of one host, sorted."""

    host_id: str
    periods: List[Tuple[float, float]]

    def available_at(self, t: float) -> bool:
        return any(a <= t < b for a, b in self.periods)

    def total_up(self, horizon: float) -> float:
        return sum(min(b, horizon) - a for a, b in self.periods if a < horizon)


@dataclass
class AvailabilityModel:
    """Parameters of the churn process.

    ``mean_up``/``mean_down`` are the exponential means (seconds) for
    *non-dedicated* hosts; dedicated hosts use the ``dedicated_*``
    means (long up, short down — cluster reservations still end).
    ``diurnal_amplitude`` in [0, 1) scales how strongly daytime
    shortens the up periods of non-dedicated hosts.
    """

    mean_up: float = 6 * 3600.0
    mean_down: float = 2 * 3600.0
    dedicated_mean_up: float = 72 * 3600.0
    dedicated_mean_down: float = 1 * 3600.0
    diurnal_amplitude: float = 0.6
    initial_up_probability: float = 0.5

    def __post_init__(self) -> None:
        for label, v in (
            ("mean_up", self.mean_up),
            ("mean_down", self.mean_down),
            ("dedicated_mean_up", self.dedicated_mean_up),
            ("dedicated_mean_down", self.dedicated_mean_down),
        ):
            if v <= 0:
                raise SimulationError(f"{label} must be positive, got {v}")
        if not 0 <= self.diurnal_amplitude < 1:
            raise SimulationError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )

    # ------------------------------------------------------------------
    def _day_factor(self, t: float) -> float:
        """< 1 during the day (shorter up periods), > 1 at night."""
        phase = math.sin(2 * math.pi * ((t % DAY) / DAY - 0.25))
        # phase = +1 at 12h (midday), -1 at 0h (midnight)
        return 1.0 - self.diurnal_amplitude * phase

    def trace(
        self, host: HostSpec, horizon: float, rng: np.random.Generator
    ) -> AvailabilityTrace:
        """Sample the availability trace of one host up to ``horizon``."""
        if host.dedicated:
            mean_up, mean_down = self.dedicated_mean_up, self.dedicated_mean_down
            diurnal = False
        else:
            mean_up, mean_down = self.mean_up, self.mean_down
            diurnal = True

        periods: List[Tuple[float, float]] = []
        t = 0.0
        up = bool(rng.random() < self.initial_up_probability)
        while t < horizon:
            if up:
                mean = mean_up * (self._day_factor(t) if diurnal else 1.0)
                duration = float(rng.exponential(mean))
                up_until = min(t + duration, horizon)
                periods.append((t, up_until))
                t = up_until
                up = False
            else:
                mean = mean_down / (self._day_factor(t) if diurnal else 1.0)
                t += float(rng.exponential(mean))
                up = True
        return AvailabilityTrace(host.host_id, periods)

    def traces(
        self,
        hosts: List[HostSpec],
        horizon: float,
        rng_for_host,
    ) -> List[AvailabilityTrace]:
        """Traces for a host list; ``rng_for_host(host_id)`` supplies the
        per-host stream so traces are independent and reproducible."""
        return [self.trace(h, horizon, rng_for_host(h.host_id)) for h in hosts]


def paper_availability_model() -> AvailabilityModel:
    """Churn calibrated to the paper's Figure 7 / Table 2 pool usage.

    Over the Table 1 platform and a 25-day horizon this yields an
    average of ~350 exploited processors with a peak near 1000 (the
    paper measured 328 and 1195): campus desktops are stolen for short
    idle windows, Grid'5000 nodes come and go with batch reservations.
    """
    return AvailabilityModel(
        mean_up=2.5 * 3600.0,
        mean_down=10 * 3600.0,
        dedicated_mean_up=8 * 3600.0,
        dedicated_mean_down=30 * 3600.0,
        diurnal_amplitude=0.9,
        # start at the stationary availability (~20 %) so short
        # calibrated runs see the same average pool as long ones
        initial_up_probability=0.2,
    )

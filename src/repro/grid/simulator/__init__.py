"""Discrete-event simulator of the paper's computational grid.

Public surface::

    from repro.grid.simulator import (
        GridSimulation, SimulationConfig, SimulationReport,
        SimClock, RngRegistry,
        PlatformSpec, paper_platform, small_platform,
        NetworkModel, AvailabilityModel, FarmerFailurePlan,
        FarmerConfig, WorkerConfig,
        RealBBWorkload, SyntheticWorkload,
        MetricsCollector, Table2Stats,
    )
"""

from repro.grid.simulator.availability import (
    AvailabilityModel,
    AvailabilityTrace,
    paper_availability_model,
)
from repro.grid.simulator.events import SimClock
from repro.grid.simulator.failures import FarmerFailurePlan
from repro.grid.simulator.farmer import FarmerConfig, SimFarmer
from repro.grid.simulator.metrics import MetricsCollector, Table2Stats
from repro.grid.simulator.network import LinkSpec, NetworkModel
from repro.grid.simulator.platform import (
    PAPER_POOL_ROWS,
    ClusterSpec,
    HostSpec,
    PlatformSpec,
    paper_platform,
    small_platform,
)
from repro.grid.simulator.rng import RngRegistry, stable_seed
from repro.grid.simulator.run import (
    GridSimulation,
    SimulationConfig,
    SimulationReport,
)
from repro.grid.simulator.worker import SimWorker, WorkerConfig
from repro.grid.simulator.workload import (
    AdvanceReport,
    RealBBWorkload,
    SyntheticWorkload,
    Workload,
    WorkUnit,
)

__all__ = [
    "AdvanceReport",
    "AvailabilityModel",
    "AvailabilityTrace",
    "ClusterSpec",
    "FarmerConfig",
    "FarmerFailurePlan",
    "GridSimulation",
    "HostSpec",
    "LinkSpec",
    "MetricsCollector",
    "NetworkModel",
    "PAPER_POOL_ROWS",
    "PlatformSpec",
    "RealBBWorkload",
    "RngRegistry",
    "SimClock",
    "SimFarmer",
    "SimWorker",
    "SimulationConfig",
    "SimulationReport",
    "SyntheticWorkload",
    "Table2Stats",
    "WorkUnit",
    "WorkerConfig",
    "Workload",
    "paper_availability_model",
    "paper_platform",
    "small_platform",
    "stable_seed",
]

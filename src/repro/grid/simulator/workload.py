"""Tree-exploration workload models for simulated B&B processes.

Two fidelity levels share one interface:

* :class:`RealBBWorkload` runs the genuine
  :class:`~repro.core.engine.IntervalExplorer` on a real problem
  instance, converting virtual CPU time into node budgets — the
  highest-fidelity mode, used to validate the protocol end to end
  (the simulated grid must find the true optimum with proof).
* :class:`SyntheticWorkload` models the exploration of Ta056-sized
  trees abstractly: a worker consumes leaf numbers at a rate given by
  an *irregular* piecewise cost field (the paper stresses the tree's
  irregularity), visits tree nodes at a fixed CPU rate, and hits
  pre-sampled improvement points.  Crucially the field is a pure
  function of the position, so two processes exploring the same
  numbers redo the same work — exactly how duplicated intervals behave
  in the real algorithm.

A *work unit* is one assigned interval being explored; ``advance``
moves it forward by a CPU-time budget and reports what happened.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.engine import IntervalExplorer
from repro.core.interval import Interval
from repro.core.problem import Problem
from repro.core.stats import Incumbent
from repro.exceptions import SimulationError
from repro.grid.simulator.rng import stable_seed

import numpy as np

__all__ = [
    "AdvanceReport",
    "WorkUnit",
    "Workload",
    "RealBBWorkload",
    "SyntheticWorkload",
]


@dataclass
class AdvanceReport:
    """What one exploration slice did."""

    elapsed: float  # CPU seconds actually spent (<= budget)
    nodes: int  # tree nodes visited
    consumed: int  # leaf numbers consumed (interval length explored)
    improvements: List[Tuple[float, Any]] = field(default_factory=list)
    finished: bool = False


class WorkUnit(ABC):
    """One interval being explored by one process."""

    @abstractmethod
    def advance(self, budget_seconds: float, power: float) -> AdvanceReport:
        """Explore for up to ``budget_seconds`` of CPU at ``power``."""

    @abstractmethod
    def remaining_interval(self) -> Interval:
        """Fold of the current frontier (what an update reports)."""

    @abstractmethod
    def apply_interval(self, interval: Interval) -> None:
        """Adopt the coordinator's reconciled interval (eq. 14)."""

    @abstractmethod
    def set_upper_bound(self, cost: float) -> None:
        """Adopt a shared global best (sharing rule 3)."""

    @abstractmethod
    def is_finished(self) -> bool: ...


class Workload(ABC):
    """Problem-side factory the simulated workers draw units from."""

    @abstractmethod
    def total_leaves(self) -> int: ...

    @abstractmethod
    def create_unit(self, interval: Interval, best_cost: float) -> WorkUnit: ...

    def initial_best(self) -> Incumbent:
        """Starting SOLUTION (the paper seeded Ta056 with cost 3681)."""
        return Incumbent()

    def optimum(self) -> Optional[float]:
        """Known optimum for validation, when available."""
        return None


# ----------------------------------------------------------------------
# real mode
# ----------------------------------------------------------------------
class _RealUnit(WorkUnit):
    def __init__(self, problem: Problem, interval: Interval, best_cost: float,
                 nodes_per_second: float):
        self._improvements: List[Tuple[float, Any]] = []
        self.explorer = IntervalExplorer(
            problem,
            interval,
            incumbent=Incumbent(best_cost, None),
            on_improvement=lambda c, s: self._improvements.append((c, s)),
        )
        self.nodes_per_second = nodes_per_second

    def advance(self, budget_seconds: float, power: float) -> AdvanceReport:
        budget_nodes = max(1, int(budget_seconds * self.nodes_per_second * power))
        before = self.explorer.remaining_interval()
        report = self.explorer.step(budget_nodes)
        after = self.explorer.remaining_interval()
        consumed = max(0, min(after.begin, before.end) - before.begin)
        if report.finished:
            consumed = max(0, before.end - before.begin)
        improvements, self._improvements = self._improvements, []
        elapsed = report.nodes_processed / (self.nodes_per_second * power)
        return AdvanceReport(
            elapsed=min(elapsed, budget_seconds),
            nodes=report.nodes_processed,
            consumed=consumed,
            improvements=improvements,
            finished=report.finished,
        )

    def remaining_interval(self) -> Interval:
        return self.explorer.remaining_interval()

    def apply_interval(self, interval: Interval) -> None:
        self.explorer.apply_interval(interval)

    def set_upper_bound(self, cost: float) -> None:
        self.explorer.set_upper_bound(cost, None)

    def is_finished(self) -> bool:
        return self.explorer.is_finished()


class RealBBWorkload(Workload):
    """Drive the actual B&B engine inside the simulation.

    ``nodes_per_second`` is the throughput of a power-1.0 (1 GHz)
    processor; the authors' C++ workers did ~10^6, our NumPy bound
    does ~10^4 — the virtual clock makes the difference irrelevant.
    """

    def __init__(
        self,
        problem: Problem,
        nodes_per_second: float = 1e4,
        initial: Optional[Incumbent] = None,
    ):
        if nodes_per_second <= 0:
            raise SimulationError("nodes_per_second must be positive")
        self.problem = problem
        self.nodes_per_second = nodes_per_second
        self._initial = initial if initial is not None else Incumbent()

    def total_leaves(self) -> int:
        return self.problem.total_leaves()

    def initial_best(self) -> Incumbent:
        return self._initial.copy()

    def create_unit(self, interval: Interval, best_cost: float) -> WorkUnit:
        return _RealUnit(self.problem, interval, best_cost, self.nodes_per_second)


# ----------------------------------------------------------------------
# synthetic mode
# ----------------------------------------------------------------------
class SyntheticWorkload(Workload):
    """Abstract irregular-tree exploration at Ta056 scale.

    Parameters
    ----------
    leaves:
        Size of the solution space (50! for Ta056).
    seed:
        Seed of the cost field and improvement points.
    mean_leaf_rate:
        Average leaf numbers consumed per CPU-second at power 1.0.
        Calibrated so a target pool finishes in a target wall time:
        ``leaves / (workers * power * wall_seconds)``.
    irregularity:
        Sigma of the lognormal per-segment rate multipliers: 0 is a
        uniform tree, 1.5+ is strongly irregular (B&B trees are).
    segments:
        Number of piecewise-constant rate segments.
    nodes_per_second:
        Tree nodes visited per CPU-second at power 1.0 (sets Table 2's
        explored-node count; the paper's pool did ~9.4k/s on average).
    optimum / initial_gap / improvement_count:
        The cost trajectory: improvement points scattered over the
        space step the best cost down from ``optimum + initial_gap``
        to ``optimum``.
    """

    def __init__(
        self,
        leaves: int,
        seed: int = 0,
        mean_leaf_rate: float = 1e9,
        irregularity: float = 1.0,
        segments: int = 4096,
        nodes_per_second: float = 1e4,
        optimum: float = 3679.0,
        initial_gap: float = 2.0,
        improvement_count: int = 12,
    ):
        if leaves <= 0 or mean_leaf_rate <= 0 or nodes_per_second <= 0:
            raise SimulationError("leaves and rates must be positive")
        if segments < 1:
            raise SimulationError("need at least one segment")
        self.leaves = int(leaves)
        self.seed = seed
        self.segments = segments
        self.nodes_per_second = nodes_per_second
        self._optimum = optimum
        self._initial = Incumbent(optimum + initial_gap, None)

        rng = np.random.default_rng(stable_seed("synthetic", seed))
        multipliers = rng.lognormal(mean=0.0, sigma=irregularity, size=segments)
        multipliers /= multipliers.mean()
        self._rates = multipliers * mean_leaf_rate  # leaves/sec at power 1
        self._segment_length = -(-self.leaves // segments)  # ceil div

        # Improvement points: positions where a better solution hides.
        # positions via floats: numpy integers cannot span 50!-sized
        # ranges; 53-bit precision is plenty for scatter points.
        positions = sorted(
            min(self.leaves - 1, int(x * self.leaves))
            for x in rng.random(improvement_count)
        )
        costs = np.sort(
            rng.uniform(optimum, optimum + initial_gap, size=improvement_count)
        )[::-1]
        costs[-1] = optimum  # the global optimum is out there
        self._improvement_points: List[Tuple[int, float]] = list(
            zip(positions, costs.tolist())
        )

    def total_leaves(self) -> int:
        return self.leaves

    def initial_best(self) -> Incumbent:
        return self._initial.copy()

    def optimum(self) -> Optional[float]:
        return self._optimum

    def rate_at(self, position: int) -> float:
        seg = min(position // self._segment_length, self.segments - 1)
        return float(self._rates[seg])

    def improvements_in(
        self, begin: int, end: int, below: float
    ) -> List[Tuple[float, Any]]:
        found = [
            (cost, ("synthetic-solution", pos))
            for pos, cost in self._improvement_points
            if begin <= pos < end and cost < below
        ]
        found.sort(key=lambda t: -t[0])
        # keep only the strictly-improving ones in discovery order
        out: List[Tuple[float, Any]] = []
        best = below
        for cost, sol in sorted(found, key=lambda t: t[1][1]):
            if cost < best:
                best = cost
                out.append((cost, sol))
        return out

    def create_unit(self, interval: Interval, best_cost: float) -> WorkUnit:
        return _SyntheticUnit(self, interval, best_cost)


class _SyntheticUnit(WorkUnit):
    def __init__(self, workload: SyntheticWorkload, interval: Interval,
                 best_cost: float):
        full = Interval(0, workload.total_leaves())
        interval = interval.intersect(full)
        self.workload = workload
        self.position = max(0, interval.begin)
        self.end = max(self.position, interval.end)
        self.best_cost = best_cost

    def advance(self, budget_seconds: float, power: float) -> AdvanceReport:
        w = self.workload
        time_left = budget_seconds
        start_position = self.position
        elapsed = 0.0
        # repro-check: ignore[RC01] -- time_left is simulated seconds (derived via the node->time conversion below), not interval state
        while time_left > 1e-12 and self.position < self.end:
            seg_len = w._segment_length
            seg_end = min(((self.position // seg_len) + 1) * seg_len, self.end)
            rate = w.rate_at(self.position) * power
            # repro-check: ignore[RC01] -- node-count to simulated-seconds conversion; the quotient is time, not interval state
            needed = (seg_end - self.position) / rate
            if needed <= time_left:
                elapsed += needed
                time_left -= needed
                self.position = seg_end
            else:
                self.position += int(rate * time_left)
                self.position = min(self.position, seg_end)
                elapsed += time_left
                time_left = 0.0
        consumed = self.position - start_position
        improvements = w.improvements_in(start_position, self.position, self.best_cost)
        if improvements:
            self.best_cost = improvements[-1][0]
        nodes = int(elapsed * w.nodes_per_second * power)
        return AdvanceReport(
            elapsed=elapsed,
            nodes=nodes,
            consumed=consumed,
            improvements=improvements,
            finished=self.position >= self.end,
        )

    def remaining_interval(self) -> Interval:
        return Interval(self.position, self.end)

    def apply_interval(self, interval: Interval) -> None:
        merged = self.remaining_interval().intersect(interval)
        if merged.is_empty():
            self.end = self.position
        else:
            self.position = merged.begin
            self.end = merged.end

    def set_upper_bound(self, cost: float) -> None:
        if cost < self.best_cost:
            self.best_cost = cost

    def is_finished(self) -> bool:
        return self.position >= self.end

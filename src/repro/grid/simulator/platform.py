"""Platform descriptions: hosts, clusters, and the paper's Table 1 pool.

The paper's grid (§5.2, Table 1) counts 1889 processors over nine
administrative domains: three Université de Lille campus clusters of
heterogeneous mono-processor desktops (cycle stealing on educational
machines) and six Grid'5000 clusters of dedicated bi-processor nodes.
:func:`paper_platform` rebuilds that pool row by row;
:func:`small_platform` is the scaled-down variant tests and quick
benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.grid.simulator.network import NetworkModel

__all__ = ["HostSpec", "ClusterSpec", "PlatformSpec", "paper_platform", "small_platform", "PAPER_POOL_ROWS"]


@dataclass(frozen=True)
class HostSpec:
    """One processor of the pool."""

    host_id: str
    cluster: str
    speed_ghz: float
    dedicated: bool  # Grid'5000 nodes are reserved; campus ones stolen

    @property
    def relative_power(self) -> float:
        """Processing power relative to a 1 GHz reference processor."""
        return self.speed_ghz


@dataclass
class ClusterSpec:
    name: str
    domain: str
    hosts: List[HostSpec] = field(default_factory=list)

    @property
    def processors(self) -> int:
        return len(self.hosts)


@dataclass
class PlatformSpec:
    """A full grid: clusters plus the network tying them together."""

    clusters: List[ClusterSpec]
    network: NetworkModel = field(default_factory=NetworkModel)
    farmer_cluster: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.clusters:
            raise SimulationError("a platform needs at least one cluster")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise SimulationError(f"duplicate cluster names: {names}")
        if self.farmer_cluster is None:
            self.farmer_cluster = self.clusters[0].name
        elif self.farmer_cluster not in names:
            raise SimulationError(
                f"farmer cluster {self.farmer_cluster!r} not in {names}"
            )

    @property
    def total_processors(self) -> int:
        return sum(c.processors for c in self.clusters)

    def all_hosts(self) -> List[HostSpec]:
        return [h for c in self.clusters for h in c.hosts]

    def cluster_table(self) -> List[Tuple[str, str, int]]:
        """(cluster, domain, processor count) rows, Table 1 style."""
        return [(c.name, c.domain, c.processors) for c in self.clusters]


# ----------------------------------------------------------------------
# The paper's pool (Table 1), row by row:
# (cpu description, GHz, cluster, domain, count, processors-per-machine)
# ----------------------------------------------------------------------
PAPER_POOL_ROWS: List[Tuple[str, float, str, str, int, int]] = [
    ("P4 1.70", 1.70, "IEEA-FIL", "Lille1", 24, 1),
    ("P4 2.40", 2.40, "IEEA-FIL", "Lille1", 48, 1),
    ("P4 2.80", 2.80, "IEEA-FIL", "Lille1", 59, 1),
    ("P4 3.00", 3.00, "IEEA-FIL", "Lille1", 27, 1),
    ("AMD 1.30", 1.30, "Polytech'Lille", "Lille1", 14, 1),
    ("Celeron 2.40", 2.40, "Polytech'Lille", "Lille1", 35, 1),
    ("Celeron 0.80", 0.80, "Polytech'Lille", "Lille1", 14, 1),
    ("Celeron 2.00", 2.00, "Polytech'Lille", "Lille1", 13, 1),
    ("Celeron 2.20", 2.20, "Polytech'Lille", "Lille1", 28, 1),
    ("P3 1.20", 1.20, "Polytech'Lille", "Lille1", 12, 1),
    ("P4 3.20", 3.20, "Polytech'Lille", "Lille1", 12, 1),
    ("P4 1.60", 1.60, "IUT-A", "Lille1", 22, 1),
    ("P4 2.00", 2.00, "IUT-A", "Lille1", 18, 1),
    ("P4 2.80", 2.80, "IUT-A", "Lille1", 45, 1),
    ("P4 2.66", 2.66, "IUT-A", "Lille1", 57, 1),
    ("P4 3.00", 3.00, "IUT-A", "Lille1", 41, 1),
    ("AMD 2.2", 2.20, "Bordeaux", "Grid5000", 47, 2),
    ("AMD 2.2", 2.20, "Lille", "Grid5000", 54, 2),
    ("Xeon 2.4", 2.40, "Rennes", "Grid5000", 64, 2),
    ("AMD 2.2", 2.20, "Rennes", "Grid5000", 64, 2),
    ("AMD 2.0", 2.00, "Rennes", "Grid5000", 100, 2),
    ("AMD 2.0", 2.00, "Sophia", "Grid5000", 107, 2),
    ("AMD 2.2", 2.20, "Toulouse", "Grid5000", 58, 2),
    ("AMD 2", 2.00, "Orsay", "Grid5000", 216, 2),
]

CAMPUS_CLUSTERS = ("IEEA-FIL", "Polytech'Lille", "IUT-A")


def paper_platform() -> PlatformSpec:
    """The Table 1 grid: 1889 processors in 9 clusters, 2 domains.

    Grid'5000 machines are bi-processor, so each machine contributes
    two host entries; campus machines are dedicated=False (cycle
    stealing on educational desktops).
    """
    clusters: Dict[str, ClusterSpec] = {}
    counters: Dict[str, int] = {}
    for cpu, ghz, cluster_name, domain, count, procs in PAPER_POOL_ROWS:
        cluster = clusters.setdefault(
            cluster_name, ClusterSpec(cluster_name, domain)
        )
        dedicated = domain == "Grid5000"
        for _ in range(count * procs):
            idx = counters.get(cluster_name, 0)
            counters[cluster_name] = idx + 1
            cluster.hosts.append(
                HostSpec(
                    host_id=f"{cluster_name}/{idx:04d}",
                    cluster=cluster_name,
                    speed_ghz=ghz,
                    dedicated=dedicated,
                )
            )
    network = NetworkModel(campus_clusters=CAMPUS_CLUSTERS)
    # The farmer ran at LIFL (Lille campus side).
    return PlatformSpec(
        clusters=list(clusters.values()),
        network=network,
        farmer_cluster="IEEA-FIL",
    )


def small_platform(
    workers: int = 8,
    clusters: int = 2,
    speed_ghz: float = 2.0,
    dedicated: bool = True,
) -> PlatformSpec:
    """A tiny uniform platform for tests and fast benchmarks."""
    if workers < 1 or clusters < 1:
        raise SimulationError("need >= 1 worker and cluster")
    specs = []
    for c in range(clusters):
        name = f"cluster{c}"
        count = workers // clusters + (1 if c < workers % clusters else 0)
        specs.append(
            ClusterSpec(
                name,
                "test",
                [
                    HostSpec(f"{name}/{i:04d}", name, speed_ghz, dedicated)
                    for i in range(count)
                ],
            )
        )
    return PlatformSpec(clusters=specs)

"""Failure models (paper §4.1).

Worker failures need no model of their own: the cycle-stealing
availability traces already make hosts vanish without warning, which
is indistinguishable from a crash for the protocol (no goodbye
message, interval copy left behind at the coordinator).

The farmer, however, fails explicitly: the coordinator process crashes
and restarts after a downtime, losing its in-memory ``INTERVALS`` and
``SOLUTION`` and recovering both from the two checkpoint files.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.exceptions import SimulationError

__all__ = ["FarmerFailurePlan"]


@dataclass
class FarmerFailurePlan:
    """When the farmer crashes and for how long it stays down.

    ``outages`` is a sorted list of ``(crash_time, downtime_seconds)``.
    """

    outages: List[Tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        last_end = -1.0
        for crash, downtime in self.outages:
            if downtime < 0:
                raise SimulationError(f"negative downtime at t={crash}")
            if crash <= last_end:
                raise SimulationError(
                    "farmer outages must be sorted and non-overlapping"
                )
            last_end = crash + downtime
        # Sortedness is validated above, so membership queries can
        # bisect over the crash times instead of scanning every outage.
        self._starts = [crash for crash, _ in self.outages]

    @classmethod
    def poisson(
        cls,
        horizon: float,
        mean_interval: float,
        mean_downtime: float,
        rng: np.random.Generator,
    ) -> "FarmerFailurePlan":
        """Random plan: exponential inter-crash times and downtimes."""
        outages: List[Tuple[float, float]] = []
        t = float(rng.exponential(mean_interval))
        while t < horizon:
            downtime = float(rng.exponential(mean_downtime))
            outages.append((t, downtime))
            t += downtime + float(rng.exponential(mean_interval))
        return cls(outages)

    def is_down(self, t: float) -> bool:
        # Outages are sorted and non-overlapping: only the last one
        # starting at or before ``t`` can contain it — O(log n).
        i = bisect_right(self._starts, t) - 1
        if i < 0:
            return False
        crash, downtime = self.outages[i]
        return t < crash + downtime

"""Simulation orchestrator: wire platform + workload + protocol, run, report.

``GridSimulation`` builds the farmer, one worker per processor (with
its availability trace), runs the virtual clock until the termination
condition of §4.3 (``INTERVALS`` empty) or the horizon, and reduces
the metrics into the paper's Table 2 statistics plus the Figure 7
series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.interval import Interval
from repro.exceptions import SimulationError
from repro.grid.simulator.availability import AvailabilityModel
from repro.grid.simulator.events import SimClock
from repro.grid.simulator.failures import FarmerFailurePlan
from repro.grid.simulator.farmer import FarmerConfig, SimFarmer
from repro.grid.simulator.metrics import MetricsCollector, Table2Stats
from repro.grid.simulator.platform import PlatformSpec
from repro.grid.simulator.rng import RngRegistry
from repro.grid.simulator.worker import SimWorker, WorkerConfig
from repro.grid.simulator.workload import Workload

__all__ = ["SimulationConfig", "SimulationReport", "GridSimulation"]


@dataclass
class SimulationConfig:
    """Everything one run needs."""

    platform: PlatformSpec
    workload: Workload
    horizon: float  # virtual seconds to give up after
    seed: int = 0
    availability: AvailabilityModel = field(default_factory=AvailabilityModel)
    farmer: FarmerConfig = field(default_factory=FarmerConfig)
    worker: WorkerConfig = field(default_factory=WorkerConfig)
    farmer_failures: FarmerFailurePlan = field(default_factory=FarmerFailurePlan)
    always_on: bool = False  # skip churn: every host up for the horizon
    max_events: Optional[int] = None  # livelock guard


@dataclass
class SimulationReport:
    """Outcome of a run."""

    table2: Table2Stats
    series: List[Tuple[float, int]]  # Figure 7
    finished: bool  # INTERVALS drained before the horizon
    best_cost: float
    best_solution: object
    wall_clock: float
    farmer_checkpoints: int
    farmer_recoveries: int
    messages: int
    message_bytes: int
    worker_crashes: int
    improvements: List[Tuple[float, float]]


class GridSimulation:
    """Build and run one simulated resolution."""

    def __init__(self, config: SimulationConfig):
        if config.horizon <= 0:
            raise SimulationError("horizon must be positive")
        self.config = config
        self.clock = SimClock()
        self.rng = RngRegistry(config.seed)
        self.metrics = MetricsCollector(config.workload.total_leaves())
        root = Interval(0, config.workload.total_leaves())
        self.farmer = SimFarmer(
            self.clock,
            root,
            self.metrics,
            config.farmer,
            config.farmer_failures,
            initial_best=config.workload.initial_best(),
        )
        if config.worker.retry_timeout is None and config.farmer_failures.outages:
            # Messages are dropped while the farmer is down; without a
            # retry the whole grid would stall on the first outage.
            config.worker.retry_timeout = max(
                60.0, 2 * config.farmer.service_time + 1.0
            )
        self.workers = self._build_workers(root)

    def _build_workers(self, root: Interval) -> List[SimWorker]:
        cfg = self.config
        workers = []
        from repro.grid.simulator.availability import AvailabilityTrace

        for host in cfg.platform.all_hosts():
            if cfg.always_on:
                trace = AvailabilityTrace(host.host_id, [(0.0, cfg.horizon)])
            else:
                trace = cfg.availability.trace(
                    host, cfg.horizon, self.rng.stream("availability", host.host_id)
                )
            worker = SimWorker(
                clock=self.clock,
                host=host,
                trace=trace,
                farmer=self.farmer,
                farmer_cluster=cfg.platform.farmer_cluster,
                network=cfg.platform.network,
                workload=cfg.workload,
                metrics=self.metrics,
                config=cfg.worker,
            )
            workers.append(worker)
        return workers

    def run(self) -> SimulationReport:
        for worker in self.workers:
            worker.start()
        self.clock.run(
            until=self.config.horizon,
            stop_when=lambda: self.farmer.terminated,
            max_events=self.config.max_events,
        )
        for worker in self.workers:
            worker.flush_accounting()
        wall = self.clock.now
        finished = self.farmer.terminated or self.farmer.intervals.is_empty()
        best = self.farmer.solution
        table2 = self.metrics.table2(wall, best.cost, finished)
        return SimulationReport(
            table2=table2,
            series=self.metrics.series,
            finished=finished,
            best_cost=best.cost,
            best_solution=best.solution,
            wall_clock=wall,
            farmer_checkpoints=self.farmer.checkpoints_taken,
            farmer_recoveries=self.farmer.recoveries,
            messages=self.metrics.messages,
            message_bytes=self.metrics.message_bytes,
            worker_crashes=sum(w.crash_count for w in self.workers),
            improvements=list(self.metrics.improvements),
        )

"""Network model: message latencies across the multi-cluster grid.

The paper's platform (§5.2) wires machines inside a cluster with
Gigabit Ethernet (100 Mb for IUT-A), the three campus clusters
together with a Gigabit link, and everything else over the 2.5 Gb/s
RENATER national backbone.  The simulator reduces this to a
per-message delay ``base_latency(src, dst) + size / bandwidth(src,
dst)`` — enough to make WAN chatter visibly more expensive than LAN
chatter, which is what the interval coding optimises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["LinkSpec", "NetworkModel"]

GIGABIT = 125_000_000.0  # bytes/second
MEGABIT_100 = 12_500_000.0
RENATER = 312_500_000.0  # 2.5 Gb/s


@dataclass
class LinkSpec:
    """One directed-pair link description."""

    latency: float  # seconds, one way
    bandwidth: float  # bytes per second


@dataclass
class NetworkModel:
    """Latency/bandwidth lookup between cluster names.

    ``intra`` is used when src == dst, ``campus`` between clusters that
    both appear in ``campus_clusters`` (the Lille campus Gigabit link),
    ``wan`` otherwise (RENATER).  Explicit overrides win.
    """

    intra: LinkSpec = field(default_factory=lambda: LinkSpec(100e-6, GIGABIT))
    campus: LinkSpec = field(default_factory=lambda: LinkSpec(500e-6, GIGABIT))
    wan: LinkSpec = field(default_factory=lambda: LinkSpec(10e-3, RENATER))
    campus_clusters: Tuple[str, ...] = ()
    overrides: Dict[Tuple[str, str], LinkSpec] = field(default_factory=dict)

    def link(self, src: str, dst: str) -> LinkSpec:
        if (src, dst) in self.overrides:
            return self.overrides[(src, dst)]
        if (dst, src) in self.overrides:
            return self.overrides[(dst, src)]
        if src == dst:
            return self.intra
        if src in self.campus_clusters and dst in self.campus_clusters:
            return self.campus
        return self.wan

    def delay(self, src: str, dst: str, size_bytes: int) -> float:
        """One-way delivery delay for a message of ``size_bytes``."""
        spec = self.link(src, dst)
        return spec.latency + size_bytes / spec.bandwidth

"""Discrete-event simulation kernel.

A minimal, deterministic event queue: events fire in (time, sequence)
order, callbacks may schedule or cancel further events.  Ties break on
insertion order so two runs with the same seeds replay identically —
the property every reproducibility test of the simulator leans on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.exceptions import SimulationError

__all__ = ["EventHandle", "SimClock"]


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("time", "cancelled")

    def __init__(self, time: float):
        self.time = time
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class SimClock:
    """The virtual clock and its pending-event heap."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle, Callable, tuple]] = []
        self._seq = itertools.count()
        self._fired = 0

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        handle = EventHandle(self.now + delay)
        heapq.heappush(
            self._heap, (handle.time, next(self._seq), handle, callback, args)
        )
        return handle

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule at an absolute virtual time (>= now)."""
        return self.schedule(time - self.now, callback, *args)

    @property
    def events_fired(self) -> int:
        return self._fired

    def pending(self) -> int:
        return sum(1 for _, _, h, _, _ in self._heap if not h.cancelled)

    def step(self) -> bool:
        """Fire the next event; False when the queue is empty."""
        while self._heap:
            time, _, handle, callback, args = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = time
            self._fired += 1
            callback(*args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drain events until the horizon / predicate / budget.

        ``until`` advances the clock to exactly that time when the
        queue drains or the next event lies beyond it.
        """
        fired = 0
        while True:
            if stop_when is not None and stop_when():
                return
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events — "
                    f"likely a livelock (e.g. duplication threshold 0 "
                    f"with dead workers holding intervals)"
                )
            nxt = self._next_time()
            if nxt is None:
                if until is not None:
                    self.now = max(self.now, until)
                return
            if until is not None and nxt > until:
                self.now = until
                return
            self.step()
            fired += 1

    def _next_time(self) -> Optional[float]:
        while self._heap:
            time, _, handle, _, _ = self._heap[0]
            if handle.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None

"""Protocol messages between B&B processes and the coordinator (§4).

Workers pull: every exchange is worker-initiated (the paper's workers
may sit behind firewalls, §4).  The coordinator only ever *replies*.

Message sizes matter — the paper's headline claim is that interval
coding makes them tiny and constant.  ``wire_size`` therefore models a
realistic serialisation: a few integers for interval messages versus
per-node payloads if one shipped explicit active lists (the
``bench_encoding_cost`` benchmark quantifies the difference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.core.interval import Interval

__all__ = [
    "WorkRequest",
    "WorkReply",
    "IntervalUpdate",
    "UpdateReply",
    "SolutionPush",
    "SolutionAck",
    "wire_size",
    "interval_wire_size",
    "active_list_wire_size",
]

_HEADER = 16  # message type + ids + framing
_INT_BYTES = 32  # one arbitrary-precision node number (covers 50! ~ 2^214)
_COST_BYTES = 8


def interval_wire_size(interval: Optional[Interval]) -> int:
    """Bytes to ship one interval: two big integers."""
    return 2 * _INT_BYTES if interval is not None else 0


def active_list_wire_size(cardinality: int, depth: int) -> int:
    """Bytes to ship an explicit active list (the coding the paper
    replaces): each node needs its rank path (~depth small ints)."""
    return cardinality * (4 * depth + 8)


@dataclass
class WorkRequest:
    """Worker has no work: first join or exhausted interval (§4.2)."""

    worker: str
    power: float

    def wire_size(self) -> int:
        return _HEADER + 8


@dataclass
class WorkReply:
    """Coordinator's answer: an interval, or terminate=True (§4.3)."""

    interval: Optional[Interval]
    best_cost: float
    terminate: bool = False

    def wire_size(self) -> int:
        return _HEADER + interval_wire_size(self.interval) + _COST_BYTES


@dataclass
class IntervalUpdate:
    """Periodic checkpoint push: the worker's remaining interval (§4.1).

    ``consumed`` is the interval length explored since the previous
    update (for the redundancy accounting); ``nodes`` the tree nodes
    visited in the same window (Table 2's explored-node count).
    """

    worker: str
    interval: Interval
    consumed: int
    nodes: int

    def wire_size(self) -> int:
        return _HEADER + interval_wire_size(self.interval) + 2 * _INT_BYTES


@dataclass
class UpdateReply:
    """Reconciled interval (eq. 14 result) + current global best."""

    interval: Interval
    best_cost: float

    def wire_size(self) -> int:
        return _HEADER + interval_wire_size(self.interval) + _COST_BYTES


@dataclass
class SolutionPush:
    """Immediate improvement notification (sharing rule 2, §4.4)."""

    worker: str
    cost: float
    solution: Any

    def wire_size(self) -> int:
        payload = len(self.solution) * 2 if hasattr(self.solution, "__len__") else 8
        return _HEADER + _COST_BYTES + payload


@dataclass
class SolutionAck:
    """Reply to a push: the (possibly better) global best."""

    best_cost: float

    def wire_size(self) -> int:
        return _HEADER + _COST_BYTES


def wire_size(message: Any) -> int:
    return message.wire_size()

"""The simulated coordinator (farmer) — paper §4.

A single-server message processor: requests queue FIFO, each takes a
configurable service time (that is what the 1.7 % coordinator CPU
exploitation of Table 2 measures), and every reply goes back over the
network to the pulling worker.

State: ``INTERVALS`` (an :class:`~repro.core.interval_set.IntervalSet`)
and ``SOLUTION`` (an :class:`~repro.core.stats.Incumbent`), checkpointed
every ``checkpoint_period`` into in-memory snapshots standing in for
the two files of §4.1.  A crash (from the
:class:`~repro.grid.simulator.failures.FarmerFailurePlan`) drops the
live state and all queued messages; recovery restores the snapshots —
losing the ownership map, which the protocol tolerates by design
(workers re-claim their intervals at the next update).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.core.interval import Interval
from repro.core.interval_set import IntervalSet
from repro.core.stats import Incumbent
from repro.exceptions import SimulationError
from repro.grid.simulator.events import SimClock
from repro.grid.simulator.failures import FarmerFailurePlan
from repro.grid.simulator.messages import (
    IntervalUpdate,
    SolutionAck,
    SolutionPush,
    UpdateReply,
    WorkReply,
    WorkRequest,
)
from repro.grid.simulator.metrics import MetricsCollector

__all__ = ["FarmerConfig", "SimFarmer"]


@dataclass
class FarmerConfig:
    """Knobs of the coordinator."""

    service_time: float = 1e-3  # seconds of farmer CPU per message
    checkpoint_period: float = 1800.0  # "every 30 minutes" (§5.3)
    checkpoint_service_time: float = 0.2
    duplication_threshold: int = 1
    death_timeout: Optional[float] = None  # None: rely on duplication


class SimFarmer:
    """Coordinator state machine under the virtual clock."""

    def __init__(
        self,
        clock: SimClock,
        root_interval: Interval,
        metrics: MetricsCollector,
        config: Optional[FarmerConfig] = None,
        failure_plan: Optional[FarmerFailurePlan] = None,
        initial_best: Optional[Incumbent] = None,
    ):
        self.clock = clock
        self.metrics = metrics
        self.config = config or FarmerConfig()
        self.failure_plan = failure_plan or FarmerFailurePlan()
        self.intervals = IntervalSet.initial(
            root_interval, self.config.duplication_threshold
        )
        self.solution = (initial_best or Incumbent()).copy()
        self.terminated = False
        self.down = False
        self._epoch = 0  # bumped on crash: stale queued work is dropped
        self._next_free = 0.0
        self._worker_powers: Dict[str, float] = {}
        self._last_contact: Dict[str, float] = {}
        # checkpoint snapshots: the "two files"
        self._intervals_snapshot = self.intervals.to_payload()
        self._solution_snapshot = self.solution.copy()
        self.checkpoints_taken = 0
        self.recoveries = 0
        self.messages_dropped = 0
        self._schedule_failures()
        self._checkpoint_timer()

    # ------------------------------------------------------------------
    # failure machinery
    # ------------------------------------------------------------------
    def _schedule_failures(self) -> None:
        for crash, downtime in self.failure_plan.outages:
            self.clock.schedule_at(crash, self._crash)
            self.clock.schedule_at(crash + downtime, self._recover)

    def _crash(self) -> None:
        self.down = True
        self._epoch += 1  # queued-but-unserved messages die with us

    def _recover(self) -> None:
        """Restart: reload INTERVALS and SOLUTION from the files."""
        self.down = False
        self.recoveries += 1
        self.intervals = IntervalSet.from_payload(
            self._intervals_snapshot, self.config.duplication_threshold
        )
        self.solution = self._solution_snapshot.copy()
        self._worker_powers.clear()
        self._last_contact.clear()
        self._next_free = self.clock.now

    def _checkpoint_timer(self) -> None:
        if self.terminated:
            return
        self.clock.schedule(self.config.checkpoint_period, self._do_checkpoint)

    def _do_checkpoint(self) -> None:
        if not self.down and not self.terminated:
            self._intervals_snapshot = self.intervals.to_payload()
            self._solution_snapshot = self.solution.copy()
            self.checkpoints_taken += 1
            self.metrics.add_farmer_busy(self.config.checkpoint_service_time)
            self._cull_dead_workers()
        self._checkpoint_timer()

    def _cull_dead_workers(self) -> None:
        timeout = self.config.death_timeout
        if timeout is None:
            return
        deadline = self.clock.now - timeout
        for worker, last in list(self._last_contact.items()):
            if last < deadline:
                self.intervals.release(worker)
                del self._last_contact[worker]

    # ------------------------------------------------------------------
    # message intake (single-server queue)
    # ------------------------------------------------------------------
    def deliver(self, message: Any, respond: Callable[[Any], None]) -> None:
        """A message arrives (network delay already elapsed).

        ``respond(reply)`` is invoked at service completion time; the
        caller adds the return-path network delay.
        """
        if self.down:
            self.messages_dropped += 1
            return
        start = max(self.clock.now, self._next_free)
        finish = start + self.config.service_time
        self._next_free = finish
        self.metrics.add_farmer_busy(self.config.service_time)
        self.clock.schedule_at(finish, self._process, message, respond, self._epoch)

    def _process(
        self, message: Any, respond: Callable[[Any], None], epoch: int
    ) -> None:
        if epoch != self._epoch or self.down:
            self.messages_dropped += 1
            return
        reply = self._handle(message)
        if reply is not None:
            respond(reply)

    # ------------------------------------------------------------------
    # protocol handlers
    # ------------------------------------------------------------------
    def _handle(self, message: Any) -> Any:
        if isinstance(message, WorkRequest):
            return self._on_work_request(message)
        if isinstance(message, IntervalUpdate):
            return self._on_update(message)
        if isinstance(message, SolutionPush):
            return self._on_solution(message)
        raise SimulationError(f"farmer cannot handle {type(message).__name__}")

    def _mark_terminated(self) -> None:
        """Record termination and checkpoint the final (empty) state.

        Without this a farmer crash *after* termination would recover
        a stale non-empty INTERVALS while every worker has already
        been dismissed — resurrecting finished work with nobody left
        to do it.  Persisting the terminal state first closes that
        window.
        """
        self.terminated = True
        self._intervals_snapshot = self.intervals.to_payload()
        self._solution_snapshot = self.solution.copy()

    def _on_work_request(self, msg: WorkRequest) -> WorkReply:
        self._worker_powers[msg.worker] = msg.power
        self._last_contact[msg.worker] = self.clock.now
        if self.intervals.is_empty():
            self._mark_terminated()
            return WorkReply(None, self.solution.cost, terminate=True)
        assignment = self.intervals.assign(
            msg.worker, msg.power, self._worker_powers
        )
        if assignment is None:
            self._mark_terminated()
            return WorkReply(None, self.solution.cost, terminate=True)
        self.metrics.work_allocations += 1
        return WorkReply(assignment.interval, self.solution.cost)

    def _on_update(self, msg: IntervalUpdate) -> UpdateReply:
        self._last_contact[msg.worker] = self.clock.now
        merged = self.intervals.update(msg.worker, msg.interval)
        self.metrics.worker_checkpoint_ops += 1
        if self.intervals.is_empty():
            self._mark_terminated()
        return UpdateReply(merged, self.solution.cost)

    def _on_solution(self, msg: SolutionPush) -> SolutionAck:
        self._last_contact[msg.worker] = self.clock.now
        if self.solution.update(msg.cost, msg.solution):
            self.metrics.solution_improved(self.clock.now, msg.cost)
        return SolutionAck(self.solution.cost)

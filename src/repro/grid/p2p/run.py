"""P2P simulation orchestrator.

Builds ``N`` peers on a platform, seeds peer 0 with the whole root
interval, and runs until Safra's token ring detects global
termination.  Hosts are always-on (the P2P prototype, like the paper's
future-work sketch, targets scalability rather than volatility; the
farmer-worker simulator owns the fault-tolerance story).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.interval import Interval
from repro.exceptions import SimulationError
from repro.grid.simulator.events import SimClock
from repro.grid.simulator.metrics import MetricsCollector
from repro.grid.simulator.platform import PlatformSpec, small_platform
from repro.grid.simulator.rng import RngRegistry
from repro.grid.simulator.workload import Workload
from repro.grid.p2p.peer import Peer

__all__ = ["P2PConfig", "P2PReport", "P2PSimulation"]


@dataclass
class P2PConfig:
    """Parameters of a peer-to-peer run."""

    platform: PlatformSpec
    workload: Workload
    horizon: float
    seed: int = 0
    update_period: float = 30.0
    steal_backoff: float = 5.0
    gossip_fanout: int = 2
    max_events: Optional[int] = None


@dataclass
class P2PReport:
    """Outcome of a P2P run."""

    finished: bool
    best_cost: float
    best_solution: Any
    wall_clock: float
    peers: int
    steals_attempted: int
    steals_succeeded: int
    messages: int
    message_bytes: int
    total_busy: float
    peer_exploitation: float
    max_peer_message_share: float  # hot-spot measure vs the farmer
    nodes_explored: int
    redundant_rate: float


class P2PSimulation:
    """Build and run one peer-to-peer resolution."""

    def __init__(self, config: P2PConfig):
        if config.horizon <= 0:
            raise SimulationError("horizon must be positive")
        self.config = config
        self.clock = SimClock()
        self.rng = RngRegistry(config.seed)
        self.metrics = MetricsCollector(config.workload.total_leaves())
        self._terminated = False
        self._victim_rng = self.rng.stream("p2p", "victims")
        self._message_load: List[int] = []

        hosts = config.platform.all_hosts()
        self.peers: List[Peer] = []
        for index, host in enumerate(hosts):
            peer = Peer(
                index,
                host,
                self.clock,
                config.platform.network,
                config.workload,
                self.metrics,
                num_peers=len(hosts),
                update_period=config.update_period,
                steal_backoff=config.steal_backoff,
                gossip_fanout=config.gossip_fanout,
                pick_victim=self._pick_victim,
                on_termination=self._on_termination,
            )
            self.peers.append(peer)
        for peer in self.peers:
            peer.peers = self.peers
        self._message_load = [0] * len(self.peers)
        self._wrap_message_accounting()
        root = Interval(0, config.workload.total_leaves())
        self.peers[0].give_initial_work(root)

    def _wrap_message_accounting(self) -> None:
        """Count messages *received* per peer to find hot spots."""
        for peer in self.peers:
            for name in ("on_steal_request", "on_steal_reply", "on_gossip",
                         "on_token"):
                original = getattr(peer, name)

                def wrapped(sender, msg, _orig=original, _idx=peer.index):
                    self._message_load[_idx] += 1
                    return _orig(sender, msg)

                setattr(peer, name, wrapped)

    def _pick_victim(self, thief: int) -> Optional[int]:
        if len(self.peers) == 1:
            return None
        victim = int(self._victim_rng.integers(0, len(self.peers) - 1))
        if victim >= thief:
            victim += 1
        return victim

    def _on_termination(self) -> None:
        self._terminated = True
        for peer in self.peers:
            peer.shutdown()

    def run(self) -> P2PReport:
        for peer in self.peers:
            peer.start()
        self.clock.run(
            until=self.config.horizon,
            stop_when=lambda: self._terminated,
            max_events=self.config.max_events,
        )
        wall = self.clock.now
        best = min(self.peers, key=lambda p: p.best_cost)
        total_busy = sum(p.busy for p in self.peers)
        available = wall * len(self.peers)
        total_messages = max(1, sum(self._message_load))
        overlap = max(
            0, self.metrics.leaves_consumed - self.metrics.total_leaves
        )
        return P2PReport(
            finished=self._terminated,
            best_cost=best.best_cost,
            best_solution=best.best_solution,
            wall_clock=wall,
            peers=len(self.peers),
            steals_attempted=sum(p.steals_attempted for p in self.peers),
            steals_succeeded=sum(p.steals_succeeded for p in self.peers),
            messages=self.metrics.messages,
            message_bytes=self.metrics.message_bytes,
            total_busy=total_busy,
            peer_exploitation=total_busy / available if available else 0.0,
            max_peer_message_share=max(self._message_load) / total_messages,
            nodes_explored=self.metrics.nodes_explored,
            redundant_rate=(
                # repro-check: ignore[RC01] -- reporting ratio for Table 2, not interval state
                overlap / self.metrics.leaves_consumed
                if self.metrics.leaves_consumed
                else 0.0
            ),
        )

"""The peer state machine of the P2P paradigm.

Each peer owns at most one interval work unit (the same
:class:`~repro.grid.simulator.workload.WorkUnit` objects the
farmer–worker simulator explores) and plays three roles at once:

* **explorer** — advances its unit in slices, like a worker;
* **victim** — answers steal requests by splitting its remaining
  interval (the §4.2 partitioning operator, applied peer-side);
* **Safra participant** — maintains the black/white colour and message
  counter of the counting-token termination detector.

Solution sharing is epidemic: an improvement is pushed to
``gossip_fanout`` random peers, each of which re-forwards while the
value keeps improving its local best; steal replies also piggyback the
sender's best, so costs diffuse even without improvements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.core.interval import Interval
from repro.exceptions import SimulationError
from repro.grid.simulator.events import SimClock
from repro.grid.simulator.metrics import MetricsCollector
from repro.grid.simulator.network import NetworkModel
from repro.grid.simulator.platform import HostSpec
from repro.grid.simulator.workload import Workload, WorkUnit

__all__ = [
    "StealRequest",
    "StealReply",
    "Gossip",
    "SafraToken",
    "Peer",
]

_INT_BYTES = 32
_HEADER = 16


@dataclass
class StealRequest:
    thief: int
    thief_power: float

    def wire_size(self) -> int:
        return _HEADER + 8


@dataclass
class StealReply:
    interval: Optional[Interval]  # None: victim had nothing to give
    best_cost: float

    def wire_size(self) -> int:
        return _HEADER + (2 * _INT_BYTES if self.interval else 0) + 8


@dataclass
class Gossip:
    cost: float
    solution: Any
    hops_left: int

    def wire_size(self) -> int:
        payload = len(self.solution) * 2 if hasattr(self.solution, "__len__") else 8
        return _HEADER + 8 + payload


@dataclass
class SafraToken:
    """The counting token of Safra's termination-detection algorithm."""

    count: int = 0
    black: bool = False

    def wire_size(self) -> int:
        return _HEADER + 9


class Peer:
    """One P2P node: explorer + steal victim + Safra participant."""

    def __init__(
        self,
        index: int,
        host: HostSpec,
        clock: SimClock,
        network: NetworkModel,
        workload: Workload,
        metrics: MetricsCollector,
        *,
        num_peers: int,
        update_period: float,
        steal_backoff: float,
        gossip_fanout: int,
        pick_victim,  # callable(thief_index) -> victim index
        on_termination,  # callable() fired by peer 0 when Safra says done
    ):
        if num_peers < 1:
            raise SimulationError("need at least one peer")
        self.index = index
        self.host = host
        self.clock = clock
        self.network = network
        self.workload = workload
        self.metrics = metrics
        self.num_peers = num_peers
        self.update_period = update_period
        self.steal_backoff = steal_backoff
        self.gossip_fanout = gossip_fanout
        self.pick_victim = pick_victim
        self.on_termination = on_termination
        self.peers: List["Peer"] = []  # filled by the orchestrator

        self.unit: Optional[WorkUnit] = None
        self.best_cost = workload.initial_best().cost
        self.best_solution = workload.initial_best().solution
        self.exploring = False
        self.terminated = False

        # Safra state (EWD 998): the counter tracks basic messages
        # sent minus received — *every* basic message counts (steal
        # requests, replies, gossip), because any of them can make a
        # passive peer active; counting only work transfers admits a
        # false-termination race where a probe completes while a work
        # grant is in flight.  A peer blackens on receipt.
        self.safra_count = 0
        self.safra_black = False
        self.holds_token = index == 0
        self._pending_token: Optional[SafraToken] = None
        # Steal retries back off exponentially so the chatter of idle
        # peers dies out and a quiescent window exists for the probe.
        self._backoff = steal_backoff

        # stats
        self.steals_attempted = 0
        self.steals_succeeded = 0
        self.busy = 0.0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def give_initial_work(self, interval: Interval) -> None:
        self.unit = self.workload.create_unit(interval, self.best_cost)

    def start(self) -> None:
        self.metrics.worker_joined(self.clock.now)
        if self.unit is not None:
            self._explore_slice()
        else:
            self._try_steal()
        if self.holds_token:
            # bootstrap the termination probe
            self.clock.schedule(self.update_period, self._maybe_launch_token)

    # ------------------------------------------------------------------
    # message transport (in-process: direct delivery with network delay)
    # ------------------------------------------------------------------
    def _send(self, target: int, message: Any, handler_name: str) -> None:
        self.metrics.message_sent(message.wire_size())
        if not isinstance(message, SafraToken):
            self.safra_count += 1  # Safra: one more basic message out
        delay = self.network.delay(
            self.host.cluster, self.peers[target].host.cluster,
            message.wire_size(),
        )
        self.clock.schedule(
            delay, self.peers[target]._receive, self.index, message, handler_name
        )

    def _receive(self, sender: int, message: Any, handler_name: str) -> None:
        if not isinstance(message, SafraToken):
            # Safra: receipt of a basic message blackens the receiver.
            self.safra_count -= 1
            self.safra_black = True
        getattr(self, handler_name)(sender, message)

    # ------------------------------------------------------------------
    # exploration
    # ------------------------------------------------------------------
    def _explore_slice(self) -> None:
        if self.terminated or self.unit is None:
            return
        self.exploring = True
        report = self.unit.advance(self.update_period, self.host.relative_power)
        self.busy += report.elapsed
        self.metrics.add_busy(f"peer-{self.index}", report.elapsed)
        self.metrics.add_exploration(report.nodes, report.consumed)
        self.clock.schedule(report.elapsed, self._after_slice, report)

    def _after_slice(self, report) -> None:
        if self.terminated:
            return
        for cost, solution in report.improvements:
            if cost < self.best_cost:
                self._adopt(cost, solution, gossip=True)
        if self.unit is not None and not self.unit.is_finished():
            self._explore_slice()
            return
        self.unit = None
        self.exploring = False
        self._release_token_if_held()
        self._try_steal()

    # ------------------------------------------------------------------
    # stealing
    # ------------------------------------------------------------------
    def _try_steal(self) -> None:
        if self.terminated or self.unit is not None:
            return
        victim = self.pick_victim(self.index)
        if victim is None:
            return
        self.steals_attempted += 1
        self._send(
            victim,
            StealRequest(self.index, self.host.relative_power),
            "on_steal_request",
        )

    def on_steal_request(self, sender: int, msg: StealRequest) -> None:
        if self.terminated:
            return
        interval = None
        if self.unit is not None and not self.unit.is_finished():
            remaining = self.unit.remaining_interval()
            if remaining.length > 1:
                mid = remaining.begin + remaining.length // 2
                self.unit.apply_interval(Interval(remaining.begin, mid))
                interval = Interval(mid, remaining.end)
        self._send(msg.thief, StealReply(interval, self.best_cost), "on_steal_reply")

    def on_steal_reply(self, sender: int, msg: StealReply) -> None:
        if self.terminated:
            return
        if msg.best_cost < self.best_cost:
            self._adopt(msg.best_cost, None, gossip=False)
        if msg.interval is not None:
            self.steals_succeeded += 1
            self._backoff = self.steal_backoff  # reset on success
            self.unit = self.workload.create_unit(msg.interval, self.best_cost)
            self._explore_slice()
        else:
            self._release_token_if_held()
            self.clock.schedule(self._backoff, self._try_steal)
            self._backoff = min(self._backoff * 2, 256 * self.steal_backoff)

    # ------------------------------------------------------------------
    # solution gossip
    # ------------------------------------------------------------------
    def _adopt(self, cost: float, solution: Any, gossip: bool) -> None:
        if cost >= self.best_cost:
            return
        self.best_cost = cost
        if solution is not None:
            self.best_solution = solution
            self.metrics.solution_improved(self.clock.now, cost)
        if self.unit is not None:
            self.unit.set_upper_bound(cost)
        if gossip and solution is not None:
            self._gossip(Gossip(cost, solution, hops_left=4))

    def _gossip(self, msg: Gossip) -> None:
        if msg.hops_left <= 0 or self.num_peers == 1:
            return
        for _ in range(min(self.gossip_fanout, self.num_peers - 1)):
            target = self.pick_victim(self.index)
            if target is not None:
                self._send(target, msg, "on_gossip")

    def on_gossip(self, sender: int, msg: Gossip) -> None:
        if self.terminated or msg.cost >= self.best_cost:
            return
        self.best_cost = msg.cost
        self.best_solution = msg.solution
        if self.unit is not None:
            self.unit.set_upper_bound(msg.cost)
        self._gossip(Gossip(msg.cost, msg.solution, msg.hops_left - 1))

    # ------------------------------------------------------------------
    # Safra's termination detection
    # ------------------------------------------------------------------
    def _maybe_launch_token(self) -> None:
        """Peer 0 launches a probe whenever it is passive."""
        if self.terminated:
            return
        if self.index == 0 and self.holds_token and not self.exploring:
            # Safra: the initiator launches a CLEAN white token; its own
            # counter and colour are folded in only at the conclusion
            # check (folding them here too would double-count and make
            # the zero test unsatisfiable).
            token = SafraToken(count=0, black=False)
            self.safra_black = False
            self.holds_token = False
            self._send(
                (self.index + 1) % self.num_peers, token, "on_token"
            )
        if self.index == 0:
            self.clock.schedule(self.update_period, self._maybe_launch_token)

    def on_token(self, sender: int, token: SafraToken) -> None:
        if self.terminated:
            return
        self.holds_token = True
        self._pending_token = token
        self._release_token_if_held()

    def _release_token_if_held(self) -> None:
        """Forward (or conclude) the token once this peer is passive."""
        if not self.holds_token or self._pending_token is None:
            return
        if self.exploring and self.unit is not None:
            return  # hold the token until passive
        token = self._pending_token
        if self.index == 0:
            # Probe completed a full round.
            if (
                not token.black
                and not self.safra_black
                and token.count + self.safra_count == 0
                and self.unit is None
            ):
                self._conclude_termination()
                return
            # Inconclusive: relaunch promptly.  Steal chatter blackens
            # peers continuously, so a probe only succeeds if the ring
            # pass fits inside a quiet window — waiting a full
            # update_period between probes would practically never
            # catch one (probes are cheap: tokens are not counted).
            self._pending_token = None
            self.clock.schedule(
                min(1.0, self.update_period), self._maybe_launch_token
            )
            return
        token = SafraToken(
            count=token.count + self.safra_count,
            black=token.black or self.safra_black,
        )
        self.safra_black = False
        self.holds_token = False
        self._pending_token = None
        self._send((self.index + 1) % self.num_peers, token, "on_token")

    def _conclude_termination(self) -> None:
        self.on_termination()

    def shutdown(self) -> None:
        self.terminated = True
        self.metrics.worker_left(self.clock.now)

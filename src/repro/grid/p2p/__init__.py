"""Peer-to-peer B&B on interval work units — the paper's future work.

§6 of the paper: "It is also planned to use the approach with a peer
to peer paradigm.  This paradigm makes it possible to push far the
scalability limits of the method."  This package prototypes exactly
that on the same substrate as the farmer–worker simulator: no
coordinator; idle peers steal interval halves directly from random
victims, improvements spread epidemically, and global termination is
detected with a Safra-style counting token ring — the classic
distributed-termination algorithm the farmer's INTERVALS-empty test
replaces in the centralised design.

Public surface::

    from repro.grid.p2p import P2PConfig, P2PSimulation, P2PReport
"""

from repro.grid.p2p.run import P2PConfig, P2PReport, P2PSimulation

__all__ = ["P2PConfig", "P2PReport", "P2PSimulation"]

"""Length-prefixed binary framing + versioned message (de)serialization.

Wire format
-----------
Every message travels as one *frame*::

    +----------------+---------------------------+
    | length: u32 BE | payload: UTF-8 JSON bytes |
    +----------------+---------------------------+

The payload is a JSON object with two envelope keys and the message's
fields::

    {"t": "Update", "version": 1, "worker": "w0",
     "interval": [128, 4096], "nodes": 311, "consumed": 128, "seq": 7}

* ``t`` names the message type (the dataclass name);
* ``version`` is the message's wire version (every protocol dataclass
  carries an explicit ``version`` field).  A decoder refuses frames
  from the *future* (``version > WIRE_VERSION``) and refuses unknown
  types — framing can evolve without silent breakage: old fields keep
  their meaning within a version, new fields must bump it.  The
  ``repro check`` RC12 gate enforces exactly this: each registered
  message is diffed against its golden schema
  (``repro/tools/check/schemas/wire.json``), and shape drift without a
  bump fails the build (``--update-schemas`` refreshes the snapshot
  once the bump is in place).

Numbers round-trip exactly (Python's ``json`` preserves ints and
``repr``-exact floats, including ``inf`` for the initial bound).  JSON
has no tuples, so sequence-typed fields (``interval``, ``solution``)
decode as tuples again — the encode/decode round trip is the identity
on every protocol message, which ``tests/test_net_framing.py`` pins
with an exhaustive hypothesis property.

Besides the runtime and job-service protocol messages, three transport-level
messages ride the same framing: :class:`Hello` (a client identifies
its worker id when (re)connecting), :class:`Welcome` (the server's
answer, optionally carrying the run's :class:`ProblemSpec` in wire
form so standalone workers need nothing but ``--connect``), and
:class:`Heartbeat` (an idle keepalive that lets the server detect
half-open peers).  Transports swallow these; the coordinator never
sees them.
"""

from __future__ import annotations

import dataclasses
import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.grid.runtime.protocol import (
    Ack,
    Bye,
    CancelJob,
    GrantWork,
    Idle,
    JobAccepted,
    JobGrant,
    JobList,
    JobPush,
    JobRefused,
    JobStatus,
    JobStatusRequest,
    JobUpdate,
    ListJobs,
    Push,
    Reconciled,
    Request,
    SubmitJob,
    Terminate,
    Update,
)

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "FrameError",
    "MessageDecodeError",
    "Hello",
    "Welcome",
    "Heartbeat",
    "encode_message",
    "decode_message",
    "encode_frame",
    "FrameBuffer",
]

#: Highest wire version this build understands.  v2 added the server
#: ``epoch`` to the Hello/Welcome handshake (crash-only recovery).
WIRE_VERSION = 2

#: Upper bound on a single frame; anything larger is a protocol error
#: (or garbage on the port), not a message worth buffering.
MAX_FRAME_BYTES = 16 << 20

_HEADER = struct.Struct("!I")


class FrameError(RuntimeError):
    """The byte stream does not contain a well-formed frame."""


class MessageDecodeError(FrameError):
    """A frame's payload is not a decodable protocol message."""


# ----------------------------------------------------------------------
# transport-level messages (never reach the coordinator)
# ----------------------------------------------------------------------


@dataclass
class Hello:
    """First frame of every (re)connection: who is calling.

    ``epoch`` is the last server epoch the client saw (0 on a first
    connection): the server can tell a reconnecting survivor of a
    previous incarnation from a fresh worker.
    """

    worker: str
    power: float = 1.0
    epoch: int = 0
    version: int = WIRE_VERSION


@dataclass
class Welcome:
    """The server's reply to :class:`Hello`.

    ``spec`` is the run's problem in wire form
    (:func:`repro.grid.runtime.protocol.spec_to_wire`) when the server
    distributes work definitions, ``None`` when workers are configured
    out of band.  ``epoch`` counts server incarnations over one
    checkpoint directory (0 when the server keeps no checkpoints): a
    client that sees it change knows the coordinator restarted from a
    snapshot and must re-reconcile its interval copy (eq. 14) instead
    of trusting the recovered state.
    """

    spec: Optional[Dict[str, Any]] = None
    best_cost: float = float("inf")
    epoch: int = 0
    version: int = WIRE_VERSION


@dataclass
class Heartbeat:
    """Idle keepalive so a silent-but-connected peer stays detectable."""

    worker: str = ""
    version: int = WIRE_VERSION


_WIRE_TYPES = {
    cls.__name__: cls
    for cls in (
        Request,
        Update,
        Push,
        Bye,
        GrantWork,
        Reconciled,
        Ack,
        Terminate,
        JobGrant,
        JobUpdate,
        JobPush,
        Idle,
        SubmitJob,
        JobAccepted,
        JobRefused,
        JobStatusRequest,
        JobStatus,
        CancelJob,
        ListJobs,
        JobList,
        Hello,
        Welcome,
        Heartbeat,
    )
}

_FIELDS = {
    name: [f.name for f in dataclasses.fields(cls)]
    for name, cls in _WIRE_TYPES.items()
}

#: Sequence-typed fields: JSON turns tuples into lists; decode restores.
_TUPLE_FIELDS = frozenset({"interval", "solution"})


def _tuplify(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


def encode_message(message: Any) -> bytes:
    """Serialize one protocol/transport message to a frame payload."""
    cls_name = type(message).__name__
    if cls_name not in _WIRE_TYPES:
        raise MessageDecodeError(f"{cls_name} is not a wire message")
    body: Dict[str, Any] = {"t": cls_name}
    for field in _FIELDS[cls_name]:
        body[field] = getattr(message, field)
    try:
        return json.dumps(body, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise MessageDecodeError(
            f"{cls_name} carries a non-serializable field: {exc}"
        ) from exc


def decode_message(payload: bytes) -> Any:
    """Rebuild the message a frame payload encodes.

    Raises :class:`MessageDecodeError` for malformed JSON, unknown
    types, versions from the future, and missing fields.
    """
    try:
        body = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise MessageDecodeError(f"payload is not JSON: {exc}") from exc
    if not isinstance(body, dict) or "t" not in body:
        raise MessageDecodeError("payload lacks a message type")
    cls_name = body.pop("t")
    cls = _WIRE_TYPES.get(cls_name)
    if cls is None:
        raise MessageDecodeError(f"unknown message type {cls_name!r}")
    version = body.get("version", 1)
    if not isinstance(version, int) or version < 1:
        raise MessageDecodeError(f"bad wire version {version!r}")
    if version > WIRE_VERSION:
        raise MessageDecodeError(
            f"{cls_name} v{version} is from the future "
            f"(this build speaks <= v{WIRE_VERSION})"
        )
    known = _FIELDS[cls_name]
    kwargs = {}
    for field in known:
        if field in body:
            value = body[field]
            if field in _TUPLE_FIELDS:
                value = _tuplify(value)
            kwargs[field] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise MessageDecodeError(f"{cls_name}: {exc}") from exc


def encode_frame(message: Any) -> bytes:
    """One complete frame (header + payload) for ``message``."""
    payload = encode_message(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"{type(message).__name__} frame of {len(payload)} bytes "
            f"exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return _HEADER.pack(len(payload)) + payload


class FrameBuffer:
    """Incremental frame parser for a byte stream.

    Feed it whatever ``recv`` returned; it yields the complete frame
    payloads and keeps partial ones buffered.  Raises
    :class:`FrameError` on an oversized length prefix — the stream is
    then unrecoverable and the connection should be dropped.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        self._buffer.extend(data)
        payloads: List[bytes] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return payloads
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"frame of {length} bytes exceeds the "
                    f"{MAX_FRAME_BYTES}-byte cap"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return payloads
            payloads.append(bytes(self._buffer[_HEADER.size:end]))
            del self._buffer[:end]

    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

"""Standalone network coordinator and worker — ``repro grid serve/worker``.

:class:`GridServer` is the farmer as a network service: it owns the
:class:`~repro.grid.runtime.coordinator.Coordinator` and a
:class:`~repro.grid.net.tcp.TcpListener`, pumps messages until the
search space is exhausted, and hands the run's problem definition to
every connecting worker inside the :class:`Welcome` (via
:func:`~repro.grid.runtime.protocol.spec_to_wire`), so a worker needs
nothing but ``--connect HOST:PORT``.

:func:`run_worker` is the matching client: connect, take the problem
spec from the Welcome, and run the exact same
:func:`~repro.grid.runtime.bbprocess.worker_main` loop the forked
workers use — the two-terminal loopback walkthrough in the README is
literally ``solve_parallel`` with the fork replaced by a shell.

Compared to :func:`~repro.grid.runtime.launcher.solve_parallel`, the
server does not manage worker processes (no sentinels — lease expiry
is the only death detector, as on a real grid) and does not know how
many workers will ever show up: it serves until the interval set is
empty and the connected workers have said goodbye (or drained away),
then reports the proved optimum.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.checkpoint import CheckpointStore
from repro.core.interval import Interval
from repro.core.stats import Incumbent
from repro.exceptions import RuntimeProtocolError
from repro.grid.net.tcp import TcpClientConnection, TcpListener
from repro.grid.net.transport import (
    Connection,
    Connector,
    TransportTimeout,
)
from repro.grid.runtime.bbprocess import worker_main
from repro.grid.runtime.coordinator import Coordinator
from repro.grid.runtime.protocol import (
    ProblemSpec,
    spec_from_wire,
    spec_to_wire,
)

__all__ = ["ServeConfig", "ServeResult", "GridServer", "run_worker"]


@dataclass
class ServeConfig:
    """Tuning of a standalone coordinator server."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick; see GridServer.address
    duplication_threshold: int = 64
    checkpoint_dir: Optional[Path] = None
    checkpoint_period: float = 2.0
    initial_upper_bound: float = float("inf")
    initial_solution: Any = None
    deadline: Optional[float] = None  # wall-clock cap; None serves forever
    poll_interval: float = 0.05
    lease_seconds: Optional[float] = 30.0  # sole death detector here
    peer_timeout: Optional[float] = 30.0  # half-open connection reaper
    root_interval: Optional[Tuple[int, int]] = None
    linger_seconds: float = 10.0  # grace for Byes after the space empties
    resume: bool = False  # restore INTERVALS+SOLUTION from checkpoint_dir
    journal: bool = True  # append reconciliations between snapshots


@dataclass
class ServeResult:
    """Outcome of one served run."""

    cost: float
    solution: Any
    optimal: bool
    wall_seconds: float
    nodes_explored: int
    work_allocations: int
    checkpoint_operations: int
    redundant_rate: float
    worker_stats: Dict[str, Dict[str, float]]
    leases_expired: List[str] = field(default_factory=list)
    duplicates_ignored: int = 0
    epoch: int = 0
    journal_replayed: int = 0
    aborted: bool = False


class GridServer:
    """A coordinator listening on TCP, serving one exact resolution."""

    def __init__(self, spec: ProblemSpec, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.spec = spec
        problem = spec.build()
        self._total_leaves = problem.total_leaves()
        root = Interval(0, self._total_leaves)
        if self.config.root_interval is not None:
            root = Interval.from_tuple(self.config.root_interval).intersect(root)
            if root.is_empty():
                raise RuntimeProtocolError(
                    f"root_interval {self.config.root_interval} does not "
                    f"overlap [0, {self._total_leaves})"
                )
            self._total_leaves = root.length
        store = (
            CheckpointStore(Path(self.config.checkpoint_dir))
            if self.config.checkpoint_dir is not None
            else None
        )
        if self.config.resume and store is None:
            raise RuntimeProtocolError(
                "--resume requires a checkpoint directory"
            )
        # Every incarnation over one checkpoint directory gets a fresh
        # epoch: the Welcome carries it, so workers that survive us can
        # tell our successor they hold pre-crash state.
        self.epoch = store.bump_epoch() if store is not None else 0
        if self.config.resume:
            assert store is not None
            self.coordinator = Coordinator.recover(
                store,
                root,
                duplication_threshold=self.config.duplication_threshold,
                checkpoint_period=self.config.checkpoint_period,
                lease_seconds=self.config.lease_seconds,
                journal=self.config.journal,
            )
            # A warm start passed on the command line may still beat
            # what the snapshot knew; the incumbent is monotonic.
            self.coordinator.solution.update(
                self.config.initial_upper_bound, self.config.initial_solution
            )
        else:
            self.coordinator = Coordinator(
                root,
                duplication_threshold=self.config.duplication_threshold,
                store=store,
                checkpoint_period=self.config.checkpoint_period,
                initial_best=Incumbent(
                    self.config.initial_upper_bound,
                    self.config.initial_solution,
                ),
                lease_seconds=self.config.lease_seconds,
                journal=self.config.journal,
            )
        self.listener = TcpListener(
            self.config.host,
            self.config.port,
            spec_wire=spec_to_wire(spec),
            peer_timeout=self.config.peer_timeout,
            epoch=self.epoch,
        )
        self._shutdown = False
        self._abort = False

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        return self.listener.address

    def shutdown(self) -> None:
        """Ask ``serve_forever`` to return after its current iteration."""
        self._shutdown = True

    def abort(self) -> None:
        """Stop *without* the final forced checkpoint.

        The in-process stand-in for ``kill -9``: whatever the periodic
        checkpoint and journal last persisted is all a successor gets.
        Tests use it to exercise the recovery path deterministically
        without spawning a subprocess.
        """
        self._abort = True
        self._shutdown = True

    def serve_forever(self) -> ServeResult:
        """Pump until the search space is exhausted; return the optimum.

        "Forever" in the socketserver sense: no fixed worker count.
        Workers come and go; the run ends when INTERVALS is empty and
        every still-connected worker has said Bye (or
        ``linger_seconds`` passed — a worker that vanished between its
        last Update and its Bye must not hold the result hostage).
        """
        config = self.config
        coordinator = self.coordinator
        listener = self.listener
        started = time.monotonic()
        empty_since: Optional[float] = None
        try:
            while not self._shutdown:
                now = time.monotonic()
                if (
                    config.deadline is not None
                    and now - started > config.deadline
                ):
                    raise RuntimeProtocolError(
                        f"serve exceeded the {config.deadline}s deadline"
                    )
                if coordinator.intervals.is_empty():
                    if empty_since is None:
                        empty_since = now
                    remaining = set(listener.connected_workers())
                    if remaining <= set(coordinator.byes):
                        break
                    if now - empty_since > config.linger_seconds:
                        break
                else:
                    empty_since = None
                coordinator.maybe_checkpoint()
                try:
                    message = listener.recv(timeout=config.poll_interval)
                except TransportTimeout:
                    coordinator.check_leases()
                    continue
                reply = coordinator.handle(message)
                if reply is not None:
                    listener.send(message.worker, reply)
                coordinator.check_leases()
        finally:
            if not self._abort:
                coordinator.maybe_checkpoint(force=True)
            listener.close()
        return ServeResult(
            cost=coordinator.solution.cost,
            solution=coordinator.solution.solution,
            optimal=coordinator.intervals.is_empty() and not self._abort,
            wall_seconds=time.monotonic() - started,
            nodes_explored=coordinator.nodes_explored,
            work_allocations=coordinator.work_allocations,
            checkpoint_operations=coordinator.worker_checkpoint_ops,
            redundant_rate=coordinator.redundant_rate(self._total_leaves),
            worker_stats=dict(coordinator.byes),
            leases_expired=list(coordinator.leases_expired),
            duplicates_ignored=coordinator.duplicates_ignored,
            epoch=self.epoch,
            journal_replayed=coordinator.journal_replayed,
            aborted=self._abort,
        )


class _PreopenedConnector(Connector):
    """Hand ``worker_main`` a connection that already exists."""

    def __init__(self, connection: Connection):
        self._connection = connection

    def connect(self, worker_id: str) -> Connection:
        return self._connection


def run_worker(
    host: str,
    port: int,
    worker_id: str,
    *,
    power: float = 1.0,
    update_nodes: int = 2000,
    update_period: Optional[float] = 0.25,
    min_slice_nodes: int = 64,
    max_slice_nodes: int = 1 << 20,
    pipeline_updates: bool = True,
    reply_timeout: float = 60.0,
    max_retries: int = 2,
    connect_timeout: float = 10.0,
    heartbeat_interval: Optional[float] = 2.0,
    spec: Optional[ProblemSpec] = None,
    peer_timeout: Optional[float] = None,
    max_reconnect_attempts: Optional[int] = None,
    reconnect_base: float = 0.05,
    backoff_cap: float = 2.0,
    kernel_backend: Optional[str] = None,
    pool_size: int = 64,
    pool_scan_budget: Optional[int] = None,
    frontier: str = "dfs",
    frontier_width: int = 32768,
) -> str:
    """Connect to a :class:`GridServer` and work until terminated.

    The problem definition comes from the server's Welcome unless an
    explicit ``spec`` overrides it.  Runs the same loop as the forked
    workers — adaptive slicing, pipelined updates, at-least-once RPC —
    just over a socket the caller could point at another machine.

    Returns the loop's outcome: ``"terminate"`` when the coordinator
    proved the space empty, ``"gave-up"`` when the RPC layer exhausted
    its retries against an unreachable coordinator.  Supervisors map
    the difference to exit codes (a gave-up worker is respawned).
    """
    connection = TcpClientConnection(
        host,
        port,
        worker_id,
        power=power,
        connect_timeout=connect_timeout,
        heartbeat_interval=heartbeat_interval,
        peer_timeout=peer_timeout,
        max_reconnect_attempts=max_reconnect_attempts,
        reconnect_base=reconnect_base,
        reconnect_cap=backoff_cap,
    )
    try:
        connection.open(timeout=connect_timeout)
        if spec is None:
            welcome = connection.welcome
            if welcome is not None and welcome.spec is not None:
                spec = spec_from_wire(welcome.spec)
            # A spec-less Welcome is the multi-tenant service: every
            # JobGrant carries its job's spec, so the worker starts
            # with none and learns problems per grant.
    except Exception:
        connection.close()
        raise
    # worker_main closes the connection it gets from the connector.
    return worker_main(
        worker_id,
        spec,
        _PreopenedConnector(connection),
        update_nodes=update_nodes,
        power=power,
        reply_timeout=reply_timeout,
        max_retries=max_retries,
        update_period=update_period,
        min_slice_nodes=min_slice_nodes,
        max_slice_nodes=max_slice_nodes,
        pipeline_updates=pipeline_updates,
        kernel_backend=kernel_backend,
        pool_size=pool_size,
        pool_scan_budget=pool_scan_budget,
        frontier=frontier,
        frontier_width=frontier_width,
    )

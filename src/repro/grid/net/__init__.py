"""Pluggable network transports for the farmer–worker runtime.

The multiprocessing runtime of :mod:`repro.grid.runtime` speaks a
transport *interface* rather than a concrete channel:

* :class:`~repro.grid.net.transport.Listener` — the coordinator side:
  one inbox of worker messages plus reply routing by worker id;
* :class:`~repro.grid.net.transport.Connection` — the worker side: a
  bidirectional message channel to the coordinator;
* :class:`~repro.grid.net.transport.Connector` — a picklable recipe a
  forked/spawned worker uses to open its connection.

Two backends implement it:

* :class:`~repro.grid.net.inprocess.InProcessTransport` — the original
  ``multiprocessing`` queues, for single-host runs;
* :class:`~repro.grid.net.tcp.TcpTransport` — length-prefixed frames
  over TCP (asyncio coordinator server, blocking worker client with
  heartbeats and jittered reconnect), for multi-machine runs.

Both deliver *at-least-once* message semantics on top of an unreliable
channel: a dropped connection is indistinguishable from a dropped
message, and the runtime's seq/reply-cache retry machinery (PR 1)
recovers either the same way.

:mod:`repro.grid.net.framing` defines the versioned wire encoding;
:mod:`repro.grid.net.serve` runs a standalone coordinator server and
standalone workers (the ``repro grid serve`` / ``repro grid worker``
CLI entry points).
"""

from repro.grid.net.backoff import decorrelated_jitter
from repro.grid.net.framing import (
    WIRE_VERSION,
    FrameBuffer,
    FrameError,
    Heartbeat,
    Hello,
    MessageDecodeError,
    Welcome,
    decode_message,
    encode_frame,
    encode_message,
)
from repro.grid.net.inprocess import InProcessTransport
from repro.grid.net.tcp import SocketFaults, TcpConnector, TcpListener, TcpTransport
from repro.grid.net.transport import (
    Connection,
    Connector,
    Listener,
    Transport,
    TransportClosed,
    TransportError,
    TransportTimeout,
)

__all__ = [
    "Connection",
    "Connector",
    "FrameBuffer",
    "FrameError",
    "Heartbeat",
    "Hello",
    "InProcessTransport",
    "Listener",
    "MessageDecodeError",
    "SocketFaults",
    "TcpConnector",
    "TcpListener",
    "TcpTransport",
    "Transport",
    "TransportClosed",
    "TransportError",
    "TransportTimeout",
    "WIRE_VERSION",
    "Welcome",
    "decode_message",
    "decorrelated_jitter",
    "encode_frame",
    "encode_message",
]

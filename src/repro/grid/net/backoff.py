"""Decorrelated-jitter backoff (the AWS "decorrelated jitter" scheme).

Plain capped-doubling backoff synchronizes clients: every worker that
lost the coordinator at the same moment retries at the same moments,
so a crash/recover is followed by periodic thundering herds exactly
when the coordinator is weakest.  Decorrelated jitter breaks the lock
step — each next delay is drawn uniformly from ``[base, prev * 3]``
(capped), so retry times spread out while still backing off roughly
exponentially in expectation.

Used by the worker RPC retry loop (``bbprocess._RpcChannel``) and by
the TCP client's reconnect loop.
"""

from __future__ import annotations

import random

__all__ = ["decorrelated_jitter"]


def decorrelated_jitter(
    rng: random.Random, base: float, previous: float, cap: float
) -> float:
    """Next backoff delay after ``previous``; in ``[base, cap]``.

    ``base`` is the smallest useful wait (the first attempt's delay),
    ``cap`` bounds the growth.  Drawing from ``[base, previous * 3]``
    rather than doubling keeps concurrent clients decorrelated even
    when they start in sync.
    """
    if base <= 0.0:
        raise ValueError("base must be positive")
    if cap < base:
        raise ValueError("cap must be >= base")
    upper = max(base, previous * 3.0)
    return min(cap, rng.uniform(base, upper))
